// Golden schedule snapshot for the paper's Figure 7 shape: Jacobi-style
// heat diffusion with the stencil kernel extracted into a pure
// function. Compiled by tests/schedule_golden.rs with default chain
// options; `expect:` lines are matched in order against the region
// lines of the schedule dump.

float **cur, **nxt;

pure float stencil_avg(pure float* up, pure float* row, pure float* down, int j) {
    return 0.25f * (up[j] + down[j] + row[j - 1] + row[j + 1]);
}

int main() {
    cur = (float**) malloc(16 * sizeof(float*));
    nxt = (float**) malloc(16 * sizeof(float*));
    // Allocation nest: rejected (malloc calls), inner init nest kept.
    // expect: skipped
    for (int i = 0; i < 16; i++) {
        cur[i] = (float*) malloc(16 * sizeof(float));
        nxt[i] = (float*) malloc(16 * sizeof(float));
        // expect: depth=1 band=1 parallel
        for (int j = 0; j < 16; j++) {
            cur[i][j] = 0.0f;
            nxt[i][j] = 0.0f;
        }
    }
    cur[8][0] = 100.0f;
    // The time loop carries the boundary reset (a non-assignment
    // region boundary): reported as its own skipped region...
    // expect: skipped
    for (int t = 0; t < 2; t++) {
        // ...while both sweeps inside it are clean 2-d parallel bands:
        // the stencil writes nxt from cur, the copy writes cur back.
        // expect: depth=2 band=2 parallel
        for (int i = 1; i < 15; i++)
            for (int j = 1; j < 15; j++)
                nxt[i][j] = stencil_avg((pure float*)cur[i - 1], (pure float*)cur[i], (pure float*)cur[i + 1], j);
        // expect: depth=2 band=2 parallel
        for (int i = 1; i < 15; i++)
            for (int j = 1; j < 15; j++)
                cur[i][j] = nxt[i][j];
        cur[8][0] = 100.0f;
    }
    float total = 0.0f;
    // Accumulation into a scalar: a 2-d band whose innermost dependence
    // keeps it sequential.
    // expect: depth=2 band=1 sequential
    for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
            total += cur[i][j];
    printf("heat=%.3f\n", total);
    return 0;
}
