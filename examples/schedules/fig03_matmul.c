// Golden schedule snapshot for the paper's Figure 3/Listing 7 shape:
// matrix-matrix multiplication with the dot kernel extracted into a
// pure function. Compiled by tests/schedule_golden.rs with the option
// line below; each `expect:` line is matched, in order, against one
// `region N:` line of the chain's --dump-schedule output (every token
// must appear in the line).
// options: tile=8

float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

// The reduction loop inside dot is a one-dimensional band with a
// loop-carried dependence on `res`: legal to tile, never parallel.
// expect: depth=1 band=1 sequential tiled
pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

int main() {
    A = (float**) malloc(64 * sizeof(float*));
    Bt = (float**) malloc(64 * sizeof(float*));
    C = (float**) malloc(64 * sizeof(float*));
    // Allocation nest: malloc is not an assignment statement, so the
    // outer loop is rejected as a scop...
    // expect: skipped
    for (int i = 0; i < 64; ++i) {
        A[i] = (float*) malloc(64 * sizeof(float*));
        Bt[i] = (float*) malloc(64 * sizeof(float));
        C[i] = (float*) malloc(64 * sizeof(float));
        // ...but the inner initialization nest is a valid region of
        // its own: fully parallel, one-dimensional.
        // expect: depth=1 band=1 parallel tiled
        for (int j = 0; j < 64; ++j) {
            A[i][j] = (float)(i + 2 * j + 1);
            Bt[i][j] = (float)(i - j + 3);
        }
    }
    // The product nest is the paper's headline result: opaque to a
    // plain polyhedral tool, but once PC-CC verifies dot pure the
    // whole 2-d band is parallel and tileable.
    // expect: depth=2 band=2 parallel tiled
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 64; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 64);
    float checksum = 0.0f;
    // The checksum walk subscripts with (i * 7) % 64 - non-affine, so
    // the region is reported and skipped.
    // expect: skipped
    for (int i = 0; i < 64; ++i)
        checksum += C[i][(i * 7) % 64];
    printf("checksum=%.1f\n", checksum);
    return 0;
}
