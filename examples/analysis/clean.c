/* Provably independent parallel loop: affine subscripts, disjoint
 * writes, private iterator. Zero diagnostics — and the engines skip the
 * dynamic race check for this loop (verdict: Independent). */
int main() {
    int a[64];
    int b[64];
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = i;
    }
#pragma omp parallel for
    for (i = 0; i < 64; i++) {
        b[i] = a[i] * 2;
    }
    return b[63] - 126;
}
