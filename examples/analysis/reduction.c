/* A reduction-shaped update of a shared scalar: not provably racy the
 * way a plain shared write is (the dynamic check stays on), so this is
 * a warning and `purec check` exits 0. */
int main() {
    int a[64];
    int sum = 0;
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = i;
    }
#pragma omp parallel for
    for (i = 0; i < 64; i++) {
        sum = sum + a[i]; // expect: RaceSharedReduction
    }
    return sum;
}
