/* Two definite races: a loop-carried array dependence and a shared
 * scalar written without a private clause. `purec check` exits 1. */
int main() {
    int a[100];
    int i;
    int t;
    for (i = 0; i < 100; i++) {
        a[i] = i;
    }
#pragma omp parallel for
    for (i = 1; i < 100; i++) { // expect: RaceLoopCarried
        a[i] = a[i - 1] + 1;
    }
#pragma omp parallel for
    for (i = 0; i < 100; i++) {
        t = a[i]; // expect: RaceSharedWrite
        a[i] = t + 1;
    }
    return a[99];
}
