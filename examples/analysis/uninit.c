/* Dataflow lints: read-before-assignment, a never-referenced local and
 * a store whose value is never read. All warnings; exit status 0. */
int main() {
    int x;
    int y = x + 1; // expect: LintUninitRead
    int unused; // expect: LintUnusedVar
    int dead;
    dead = y * 2; // expect: LintDeadStore
    return y;
}
