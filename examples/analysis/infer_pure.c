/* Run with `purec check --infer-pure`: `square` passes every PC-CC rule
 * and could be declared pure; `bump` is blocked by its global write. */
int square(int x) { // expect: PureInferrable
    return x * x;
}

int counter = 0;

int bump(int by) {
    counter = counter + by; // expect: PureInferenceBlocked
    return counter;
}

int main() {
    bump(1);
    return square(7) - 49;
}
