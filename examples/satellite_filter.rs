//! The satellite AOD application (paper Sect. 4.3.3): a per-pixel
//! retrieval far too branchy for polyhedral analysis — only the `pure`
//! keyword lets the chain parallelize the pixel loop. Demonstrates the
//! load imbalance that made the authors add `schedule(dynamic,1)`.
//!
//! ```sh
//! cargo run --example satellite_filter
//! ```

use machine::OmpSchedule;
use pure_c::prelude::*;

fn main() {
    // 1. The chain parallelizes the pixel loop despite the opaque filter.
    let source = apps::satellite::c_source(12, 12);
    let out = compile(&source, ChainOptions::default()).expect("chain");
    assert!(out.regions_parallelized >= 1);
    println!(
        "chain parallelized the pixel loop around the {}-line pure filter",
        source.lines().count()
    );
    let (_, run) = compile_and_run(
        &source,
        ChainOptions::default(),
        InterpOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("runs");
    println!("interpreted: {}", run.output.trim());

    // 2. Native: measure the imbalance on a synthetic MODIS-like tile.
    let tile = apps::satellite::Tile::synthetic(128, 128, 42);
    let costs = apps::satellite::cost_map(&tile);
    let n = costs.len();
    let first: u64 = costs[..n / 2].iter().map(|&c| c as u64).sum();
    let second: u64 = costs[n / 2..].iter().map(|&c| c as u64).sum();
    println!(
        "\nper-pixel retrieval cost: first half {first}, second half {second} \
         (tail is {:.2}x heavier)",
        second as f64 / first as f64
    );

    let seq = apps::satellite::filter_seq(&tile);
    for sched in [OmpSchedule::Static, OmpSchedule::Dynamic(1)] {
        let t0 = std::time::Instant::now();
        let par = apps::satellite::filter_par(&tile, 4, sched);
        let dt = t0.elapsed();
        assert_eq!(seq, par);
        println!("filter 128x128 on 4 threads, schedule({sched}): {dt:?}");
    }

    // 3. Model view at paper scale (Figs. 8/9): dynamic fixes the tail,
    // but its chunk-1 dequeue contention bites ICC at 64 cores.
    println!("\n{}", apps::figures::fig9_satellite_speedup().render());
}
