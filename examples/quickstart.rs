//! Quickstart: annotate a C function with `pure`, run the whole chain,
//! inspect the transformed standard C, and execute it in parallel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pure_c::prelude::*;

fn main() {
    let source = r#"
#include <stdio.h>
#include <stdlib.h>

pure float square(float x) {
    return x * x;
}

int main() {
    int n = 256;
    float* out = (float*) malloc(n * sizeof(float));
    for (int i = 0; i < n; i++)
        out[i] = square((float) i);
    float total = 0.0f;
    for (int i = 0; i < n; i++)
        total += out[i];
    printf("sum of squares below %d = %.1f\n", n, total);
    return 0;
}
"#;

    // 1. Full chain: verify purity, mark SCoPs, transform, lower.
    let out = compile(source, ChainOptions::default()).expect("chain accepts the program");
    println!("--- transformed standard C ---\n{}", out.text);
    println!(
        "verified pure: {:?}; scops marked: {}; regions parallelized: {}\n",
        out.declared_pure, out.scops_marked, out.regions_parallelized
    );

    // 2. Execute sequentially and on 8 omprt threads — results must agree.
    let (_, seq) = compile_and_run(source, ChainOptions::default(), InterpOptions::default())
        .expect("sequential run");
    let (_, par) = compile_and_run(
        source,
        ChainOptions::default(),
        InterpOptions {
            threads: 8,
            race_check: true, // dynamically validate iteration independence
            ..Default::default()
        },
    )
    .expect("parallel run");
    assert_eq!(seq.output, par.output, "parallel result must match");
    println!(
        "--- program output (8 threads, race-checked) ---\n{}",
        par.output
    );

    // 3. A program that VIOLATES purity is rejected at compile time.
    let bad = "
int counter;
pure int tick(int x) { counter = counter + 1; return x; }
int main() { return tick(3); }
";
    let err = compile(bad, ChainOptions::default()).unwrap_err();
    println!("--- rejected impure program ---");
    print!("{}", err.render_all(bad));
}
