//! The LAMA ELL SpMV application (paper Sect. 4.3.4): sparse
//! matrix–vector multiplication whose indirect addressing is hidden
//! inside the pure `ell_dot` — which is why the chain can parallelize the
//! row loop at all.
//!
//! ```sh
//! cargo run --example lama_spmv
//! ```

use machine::OmpSchedule;
use pure_c::prelude::*;

fn main() {
    // 1. The chain on the C version.
    let source = apps::lama::c_source(96, 9);
    let out = compile(&source, ChainOptions::default()).expect("chain");
    assert!(out.regions_parallelized >= 1);
    let (_, run) = compile_and_run(
        &source,
        ChainOptions::default(),
        InterpOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .expect("runs");
    println!("interpreted: {}", run.output.trim());

    // 2. Native pwtk-like matrix at a meaningful scale.
    let rows = 20_000;
    let m = apps::lama::EllMatrix::pwtk_like(rows, 53, 7);
    println!(
        "\npwtk-like matrix: {} rows, {} nnz ({:.1} avg/row, padded to {})",
        m.rows,
        m.nnz(),
        m.nnz() as f64 / m.rows as f64,
        m.max_nnz
    );
    let x: Vec<f32> = (0..rows).map(|i| 1.0 + (i % 97) as f32 * 0.01).collect();
    let seq = m.spmv_seq(&x);
    for threads in [1, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let y = m.spmv_par(&x, threads, OmpSchedule::Static);
        let dt = t0.elapsed();
        assert_eq!(seq, y);
        println!("spmv on {threads} thread(s): {dt:?}");
    }

    // 3. Model view at paper scale (Fig. 10): auto vs manual within the
    // paper's 8e-4 s bound.
    let fig = apps::figures::fig10_lama_time();
    println!("\n{}", fig.render());
    let gap = fig.find("auto (GCC)").at(64) - fig.find("manual static (GCC)").at(64);
    println!(
        "auto − manual at 64 cores: {:.2e} s (paper bound: ≤ 8e-4 s)",
        gap
    );
}
