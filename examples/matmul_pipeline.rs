//! The paper's flagship example (Listings 7 → 8): matrix–matrix
//! multiplication with the `dot` kernel extracted into a pure function —
//! unparallelizable by a plain polyhedral tool, parallelized by the chain.
//!
//! ```sh
//! cargo run --example matmul_pipeline
//! ```

use pure_c::prelude::*;

fn main() {
    let n = 24;
    let source = apps::matmul::c_source(n);

    // Stage view: after PC-CC the loops are marked and calls substituted.
    let marked = run_pc_cc(&source, PcCcOptions::default()).expect("PC-CC");
    println!(
        "PC-CC: verified pure {:?}, {} scop(s), {} call(s) substituted",
        marked.declared_pure,
        marked.scops_marked,
        marked.subst.len()
    );

    // Full chain (what Listing 8 shows).
    let out = compile(&source, ChainOptions::default()).expect("chain");
    println!("\n--- Listing-8-style output (excerpt) ---");
    for line in out
        .text
        .lines()
        .filter(|l| l.contains("omp parallel") || l.contains("dot(") || l.contains("for (int t"))
    {
        println!("{line}");
    }

    // Execute at three thread counts; checksum must match the native Rust
    // reference implementation bit for bit.
    let expected = format!("checksum={:.1}\n", apps::matmul::c_source_checksum(n));
    for threads in [1, 4, 8] {
        let (_, run) = compile_and_run(
            &source,
            ChainOptions::default(),
            InterpOptions {
                threads,
                ..Default::default()
            },
        )
        .expect("runs");
        assert_eq!(run.output, expected, "threads={threads}");
        println!(
            "threads={threads}: {} ({} flops interpreted)",
            run.output.trim(),
            run.counters.flops
        );
    }

    // The SICA mode tiles the nest and adds SIMD pragmas.
    let sica = compile(
        &source,
        ChainOptions {
            pc_cc: PcCcOptions::default(),
            polycc: PolyccOptions {
                codegen: CodegenOptions::default(),
                sica: Some(SicaParams::default()),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("sica chain");
    println!(
        "\nSICA mode: {} region(s) tiled, simd pragmas: {}",
        sica.regions_tiled,
        sica.text.matches("#pragma omp simd").count()
    );
}
