/* Spins forever: the purec --fuel smoke target (documented exit 97). */
int main() {
    int i = 0;
    while (1) {
        i = i + 1;
    }
    return i;
}
