//! Purity audit: run the verifier over every listing of the paper and show
//! which rule fires where — the `pure` semantics of Sect. 3 as executable
//! documentation.
//!
//! ```sh
//! cargo run --example purity_audit
//! ```

use pure_c::prelude::*;

fn audit(name: &str, src: &str) {
    println!("=== {name} ===");
    match run_pc_cc(src, PcCcOptions::default()) {
        Ok(out) => println!(
            "ACCEPTED — pure: {:?}, scops: {}\n",
            out.declared_pure, out.scops_marked
        ),
        Err(diags) => {
            println!("REJECTED —");
            print!("{}", diags.render_all(src));
            println!();
        }
    }
}

fn main() {
    // Listing 1/2: the canonical valid pure function.
    audit(
        "Listing 2 — valid operations in a pure function",
        "int* globalPtr;
void func1();
pure int* func2(pure int* p1, int p2) {
    int a = p2;
    int b = a + 42;
    int* c = (int*) malloc(3 * sizeof(int));
    pure int* ptr = p1;
    pure int* extPtr2;
    extPtr2 = (pure int*) globalPtr;
    pure int* extPtr3;
    extPtr3 = (pure int*) func2(p1, p2);
    return c;
}
int main() { return 0; }",
    );

    // Listing 2, line 11: global pointer to plain local.
    audit(
        "Listing 2 line 11 — external pointer without pure cast",
        "int* globalPtr;
pure int f(int x) { int* extPtr1 = globalPtr; return x; }
int main() { return 0; }",
    );

    // Listing 2, line 14: calling an impure function.
    audit(
        "Listing 2 line 14 — pure calls impure",
        "void func1();
pure int f(int x) { func1(); return x; }
int main() { return 0; }",
    );

    // Listing 4: reassigning a pure pointer.
    audit(
        "Listing 4 — pure pointer reassignment",
        "int* extPtr;
pure void f() {
    pure int* intPtr = (pure int*) extPtr;
    intPtr = extPtr;
}
int main() { return 0; }",
    );

    // Listing 5: feedback through a pure call.
    audit(
        "Listing 5 — loop feedback through a pure call",
        "pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    for (int i = 1; i < 100; i++)
        array[i] = func((pure int*)array, i);
    return 0;
}",
    );

    // Listing 6: the alias deception — ACCEPTED (documented limitation).
    audit(
        "Listing 6 — alias deception (accepted: known limitation)",
        "pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    int* alias = array;
    for (int i = 1; i < 100; i++)
        alias[i] = func((pure int*)array, i);
    return 0;
}",
    );

    // Beyond the listings: free() discipline.
    audit(
        "free() of foreign memory",
        "pure void f(int* p) { free(p); }\nint main() { return 0; }",
    );
    audit(
        "free() of locally allocated memory",
        "pure int f(int n) {
    int* buf = (int*) malloc(n * sizeof(int));
    buf[0] = 42;
    int v = buf[0];
    free(buf);
    return v;
}
int main() { return 0; }",
    );
}
