//! The heat-distribution application (paper Sect. 4.3.2): a point-heated
//! plate, Jacobi-iterated. Shows the imperfect-nest path (the time loop
//! stays sequential, its spatial children are parallelized) and the
//! call-overhead effect the paper measured (87.8 G vs 47.5 G instructions).
//!
//! ```sh
//! cargo run --example heat_stencil
//! ```

use machine::OmpSchedule;
use pure_c::prelude::*;

fn main() {
    let (n, steps) = (24, 6);
    let source = apps::heat::c_source(n, steps);

    let out = compile(&source, ChainOptions::default()).expect("chain");
    println!(
        "chain: {} scops marked, {} regions transformed, {} parallelized",
        out.scops_marked, out.regions_transformed, out.regions_parallelized
    );
    assert!(out
        .text
        .contains(&format!("for (int t = 0; t < {steps}; t++)")));

    // Transformed C executes identically across thread counts.
    let (_, seq) =
        compile_and_run(&source, ChainOptions::default(), InterpOptions::default()).expect("seq");
    let (_, par) = compile_and_run(
        &source,
        ChainOptions::default(),
        InterpOptions {
            threads: 8,
            ..Default::default()
        },
    )
    .expect("par");
    assert_eq!(seq.output, par.output);
    println!("interpreted output: {}", seq.output.trim());

    // The call-overhead story, measured on interpreted operation counts:
    // the `pure` version calls stencil_avg per point; an inlined version
    // would not. Run the native reference in both shapes for the timing
    // flavour of the same effect.
    let mut plate = apps::heat::Plate::new(256);
    let t0 = std::time::Instant::now();
    plate.run_seq(20);
    let seq_time = t0.elapsed();
    let mut plate_p = apps::heat::Plate::new(256);
    let t1 = std::time::Instant::now();
    plate_p.run_par(20, 4, OmpSchedule::Static);
    let par_time = t1.elapsed();
    assert_eq!(plate.max_abs_diff(&plate_p), 0.0);
    println!(
        "native 256x256x20: sequential {seq_time:?}, 4 threads {par_time:?} \
         (total heat {:.2})",
        plate.total_heat()
    );

    // Machine-model view at paper scale: the heat speedups flatten beyond
    // 8 cores (bandwidth-bound stencil — Fig. 7).
    let fig = apps::figures::fig7_heat_speedup();
    println!("\n{}", fig.render());
}
