//! Hand-written lexer for the extended C subset.
//!
//! Replaces the AntLR-generated C11 lexer used by the paper. Comments are
//! skipped, `#`-directives are produced as [`TokenKind::Directive`] tokens
//! (the preprocessor runs before the parser, so only `#pragma` lines should
//! reach it), and the `pure` keyword is recognised natively.

use crate::diag::{Code, Diagnostics};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    diags: Diagnostics,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            diags: Diagnostics::new(),
        }
    }

    /// Lex the whole buffer. The returned vector always ends with an `Eof`
    /// token. Lexing is error-tolerant: unknown bytes produce diagnostics and
    /// are skipped.
    pub fn tokenize(mut self) -> (Vec<Token>, Diagnostics) {
        let mut out = Vec::with_capacity(self.src.len() / 4);
        loop {
            let tok = self.next_token();
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                break;
            }
        }
        (out, self.diags)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.bytes.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos + 1 < self.bytes.len() {
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.pos = self.bytes.len();
                        self.diags.error(
                            Code::LexUnterminated,
                            Span::new(start as u32, self.pos as u32),
                            "unterminated block comment",
                        );
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Token {
        self.skip_trivia();
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Token {
                kind: TokenKind::Eof,
                span: Span::new(start as u32, start as u32),
            };
        }
        let b = self.peek();
        let kind = match b {
            b'#' => self.lex_directive(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident_or_keyword(),
            b'0'..=b'9' => self.lex_number(),
            b'.' if self.peek2().is_ascii_digit() => self.lex_number(),
            b'"' => self.lex_string(),
            b'\'' => self.lex_char(),
            _ => self.lex_punct(),
        };
        Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        }
    }

    fn lex_directive(&mut self) -> TokenKind {
        // Consume to end of line, honouring backslash continuations.
        self.bump(); // '#'
        let start = self.pos;
        let mut text = String::new();
        while self.pos < self.bytes.len() {
            let b = self.peek();
            if b == b'\\' && self.peek2() == b'\n' {
                self.pos += 2;
                text.push(' ');
                continue;
            }
            if b == b'\n' {
                break;
            }
            text.push(self.bump() as char);
        }
        let _ = start;
        TokenKind::Directive(text.trim().to_string())
    }

    fn lex_ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_ident(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.pos;
        // Hex literals.
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            let digits = &self.src[start + 2..self.pos];
            let value = i64::from_str_radix(digits, 16).unwrap_or_else(|_| {
                self.diags.error(
                    Code::LexUnexpectedChar,
                    Span::new(start as u32, self.pos as u32),
                    "hex literal out of range",
                );
                0
            });
            let (unsigned, long) = self.lex_int_suffix();
            return TokenKind::IntLit {
                value,
                unsigned,
                long,
            };
        }

        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E')
            && (self.peek2().is_ascii_digit()
                || (matches!(self.peek2(), b'+' | b'-') && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.pos += 1; // e
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }

        let text = &self.src[start..self.pos];
        if is_float {
            let value: f64 = text.parse().unwrap_or(0.0);
            let single = matches!(self.peek(), b'f' | b'F');
            // Consume either the `f` (float) or `l` (long double) suffix.
            if single || matches!(self.peek(), b'l' | b'L') {
                self.pos += 1;
            }
            TokenKind::FloatLit { value, single }
        } else {
            let value: i64 = text.parse().unwrap_or_else(|_| {
                self.diags.error(
                    Code::LexUnexpectedChar,
                    Span::new(start as u32, self.pos as u32),
                    "integer literal out of range",
                );
                0
            });
            // `1.0f`-style handled above; here handle `1f` is invalid C, skip.
            let (unsigned, long) = self.lex_int_suffix();
            TokenKind::IntLit {
                value,
                unsigned,
                long,
            }
        }
    }

    fn lex_int_suffix(&mut self) -> (bool, bool) {
        let mut unsigned = false;
        let mut long = false;
        loop {
            match self.peek() {
                b'u' | b'U' if !unsigned => {
                    unsigned = true;
                    self.pos += 1;
                }
                b'l' | b'L' => {
                    long = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        (unsigned, long)
    }

    fn lex_escape(&mut self) -> char {
        // Caller consumed the backslash.
        match self.bump() {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            b'a' => '\x07',
            b'b' => '\x08',
            b'f' => '\x0c',
            b'v' => '\x0b',
            other => other as char,
        }
    }

    fn lex_string(&mut self) -> TokenKind {
        let start = self.pos;
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            if self.pos >= self.bytes.len() || self.peek() == b'\n' {
                self.diags.error(
                    Code::LexUnterminated,
                    Span::new(start as u32, self.pos as u32),
                    "unterminated string literal",
                );
                break;
            }
            match self.bump() {
                b'"' => break,
                b'\\' => value.push(self.lex_escape()),
                other => value.push(other as char),
            }
        }
        TokenKind::StrLit(value)
    }

    fn lex_char(&mut self) -> TokenKind {
        let start = self.pos;
        self.bump(); // opening quote
        let c = match self.bump() {
            b'\\' => self.lex_escape(),
            0 => {
                self.diags.error(
                    Code::LexUnterminated,
                    Span::new(start as u32, self.pos as u32),
                    "unterminated char literal",
                );
                '\0'
            }
            other => other as char,
        };
        if self.peek() == b'\'' {
            self.bump();
        } else {
            self.diags.error(
                Code::LexUnterminated,
                Span::new(start as u32, self.pos as u32),
                "unterminated char literal",
            );
        }
        TokenKind::CharLit(c)
    }

    fn lex_punct(&mut self) -> TokenKind {
        use Punct::*;
        let b = self.bump();
        let two = |l: &mut Self, second: u8, yes: Punct, no: Punct| -> Punct {
            if l.peek() == second {
                l.bump();
                yes
            } else {
                no
            }
        };
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'~' => Tilde,
            b'?' => Question,
            b':' => Colon,
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, b'=', PlusEq, Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.bump();
                    MinusMinus
                } else if self.peek() == b'>' {
                    self.bump();
                    Arrow
                } else {
                    two(self, b'=', MinusEq, Minus)
                }
            }
            b'*' => two(self, b'=', StarEq, Star),
            b'/' => two(self, b'=', SlashEq, Slash),
            b'%' => two(self, b'=', PercentEq, Percent),
            b'^' => two(self, b'=', CaretEq, Caret),
            b'!' => two(self, b'=', Ne, Bang),
            b'=' => two(self, b'=', EqEq, Eq),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AmpAmp
                } else {
                    two(self, b'=', AmpEq, Amp)
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    PipePipe
                } else {
                    two(self, b'=', PipeEq, Pipe)
                }
            }
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    two(self, b'=', ShlEq, Shl)
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == b'>' {
                    self.bump();
                    two(self, b'=', ShrEq, Shr)
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            other => {
                self.diags.error(
                    Code::LexUnexpectedChar,
                    Span::new((self.pos - 1) as u32, self.pos as u32),
                    format!("unexpected character `{}`", other as char),
                );
                // Skip and retry by emitting the next token in place.
                return self.next_token().kind;
            }
        };
        TokenKind::Punct(p)
    }
}

/// Convenience entry point: lex `src` into tokens plus diagnostics.
pub fn lex(src: &str) -> (Vec<Token>, Diagnostics) {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex(src);
        assert!(!diags.has_errors(), "{}", diags.render_all(src));
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_pure_function_declaration() {
        let ks = kinds("pure int* func(pure int* p1, int p2);");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Pure));
        assert_eq!(ks[1], TokenKind::Keyword(Keyword::Int));
        assert_eq!(ks[2], TokenKind::Punct(Punct::Star));
        assert_eq!(ks[3], TokenKind::Ident("func".into()));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_numbers_with_suffixes() {
        let ks = kinds("0 42 4096 0.5 1.0f 3e8 1e-3 0x1F 7u 9L");
        assert_eq!(
            ks[0],
            TokenKind::IntLit {
                value: 0,
                unsigned: false,
                long: false
            }
        );
        assert_eq!(
            ks[1],
            TokenKind::IntLit {
                value: 42,
                unsigned: false,
                long: false
            }
        );
        assert_eq!(
            ks[3],
            TokenKind::FloatLit {
                value: 0.5,
                single: false
            }
        );
        assert_eq!(
            ks[4],
            TokenKind::FloatLit {
                value: 1.0,
                single: true
            }
        );
        assert_eq!(
            ks[5],
            TokenKind::FloatLit {
                value: 3e8,
                single: false
            }
        );
        assert_eq!(
            ks[6],
            TokenKind::FloatLit {
                value: 1e-3,
                single: false
            }
        );
        assert_eq!(
            ks[7],
            TokenKind::IntLit {
                value: 31,
                unsigned: false,
                long: false
            }
        );
        assert_eq!(
            ks[8],
            TokenKind::IntLit {
                value: 7,
                unsigned: true,
                long: false
            }
        );
        assert_eq!(
            ks[9],
            TokenKind::IntLit {
                value: 9,
                unsigned: false,
                long: true
            }
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        let ks = kinds("a >>= b <<= c != d == e <= f >= g && h || i -> j ++ -- ...");
        assert!(ks.contains(&TokenKind::Punct(Punct::ShrEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::ShlEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ne)));
        assert!(ks.contains(&TokenKind::Punct(Punct::EqEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Le)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ge)));
        assert!(ks.contains(&TokenKind::Punct(Punct::AmpAmp)));
        assert!(ks.contains(&TokenKind::Punct(Punct::PipePipe)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Arrow)));
        assert!(ks.contains(&TokenKind::Punct(Punct::PlusPlus)));
        assert!(ks.contains(&TokenKind::Punct(Punct::MinusMinus)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ellipsis)));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("int a; // trailing\n/* block\n comment */ int b;");
        let idents: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn directives_capture_line() {
        let ks = kinds("#pragma scop\nint a;\n#pragma endscop");
        assert_eq!(ks[0], TokenKind::Directive("pragma scop".into()));
        assert_eq!(ks[4], TokenKind::Directive("pragma endscop".into()));
    }

    #[test]
    fn string_and_char_literals_resolve_escapes() {
        let ks = kinds(r#""hi\n\t" 'x' '\n' '\\'"#);
        assert_eq!(ks[0], TokenKind::StrLit("hi\n\t".into()));
        assert_eq!(ks[1], TokenKind::CharLit('x'));
        assert_eq!(ks[2], TokenKind::CharLit('\n'));
        assert_eq!(ks[3], TokenKind::CharLit('\\'));
    }

    #[test]
    fn unterminated_string_reports_error() {
        let (_, diags) = lex("\"oops\nint a;");
        assert!(diags.has_errors());
        assert!(diags.has_code(Code::LexUnterminated));
    }

    #[test]
    fn spans_point_into_source() {
        let src = "pure float dot();";
        let (toks, _) = lex(src);
        assert_eq!(toks[0].span.text(src), "pure");
        assert_eq!(toks[1].span.text(src), "float");
        assert_eq!(toks[2].span.text(src), "dot");
    }
}
