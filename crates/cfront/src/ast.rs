//! Abstract syntax tree for the extended C subset.
//!
//! The tree mirrors the structure the paper's pass operates on: translation
//! units containing function definitions/prototypes, global declarations and
//! pragmas. `pure` is a first-class qualifier on function definitions,
//! pointer declarations, parameters and casts (Sect. 3.1, Listings 1–4).

use crate::span::Span;
use std::fmt;

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// Scalar/base types of the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseType {
    Void,
    Char,
    Short,
    Int,
    Long,
    UInt,
    ULong,
    Float,
    Double,
    /// `struct name` — member layout is declared separately (or opaquely).
    Struct(String),
    /// A `typedef`'d name that the parser knows is a type.
    Named(String),
}

impl BaseType {
    /// Size in bytes under our LP64 machine model.
    pub fn size_bytes(&self) -> usize {
        match self {
            BaseType::Void => 0,
            BaseType::Char => 1,
            BaseType::Short => 2,
            BaseType::Int | BaseType::UInt | BaseType::Float => 4,
            BaseType::Long | BaseType::ULong | BaseType::Double => 8,
            BaseType::Struct(_) | BaseType::Named(_) => 8,
        }
    }

    pub fn is_floating(&self) -> bool {
        matches!(self, BaseType::Float | BaseType::Double)
    }

    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            BaseType::Char
                | BaseType::Short
                | BaseType::Int
                | BaseType::Long
                | BaseType::UInt
                | BaseType::ULong
        )
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Void => write!(f, "void"),
            BaseType::Char => write!(f, "char"),
            BaseType::Short => write!(f, "short"),
            BaseType::Int => write!(f, "int"),
            BaseType::Long => write!(f, "long"),
            BaseType::UInt => write!(f, "unsigned int"),
            BaseType::ULong => write!(f, "unsigned long"),
            BaseType::Float => write!(f, "float"),
            BaseType::Double => write!(f, "double"),
            BaseType::Struct(name) => write!(f, "struct {name}"),
            BaseType::Named(name) => write!(f, "{name}"),
        }
    }
}

/// A full type: base type plus pointer levels with per-level qualifiers.
///
/// `pure float**` is represented as base `Float` with two [`PtrLevel`]s; the
/// `pure` flag lives on the *declaration* (`Type::pure`) because the paper
/// places the keyword in front of the whole declarator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    pub base: BaseType,
    /// Innermost-first pointer levels: `int**` has two entries.
    pub ptr: Vec<PtrLevel>,
    /// `const` on the base type (`const float* p`).
    pub base_const: bool,
    /// The paper's `pure` qualifier: write-protected, assign-once.
    pub pure_qual: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PtrLevel {
    pub is_const: bool,
}

impl Type {
    pub fn new(base: BaseType) -> Self {
        Type {
            base,
            ptr: Vec::new(),
            base_const: false,
            pure_qual: false,
        }
    }

    pub fn ptr_to(base: BaseType, levels: usize) -> Self {
        Type {
            base,
            ptr: vec![PtrLevel::default(); levels],
            base_const: false,
            pure_qual: false,
        }
    }

    pub fn with_pure(mut self) -> Self {
        self.pure_qual = true;
        self
    }

    pub fn with_const_base(mut self) -> Self {
        self.base_const = true;
        self
    }

    pub fn int() -> Self {
        Type::new(BaseType::Int)
    }

    pub fn float() -> Self {
        Type::new(BaseType::Float)
    }

    pub fn double() -> Self {
        Type::new(BaseType::Double)
    }

    pub fn void() -> Self {
        Type::new(BaseType::Void)
    }

    pub fn is_pointer(&self) -> bool {
        !self.ptr.is_empty()
    }

    pub fn pointer_depth(&self) -> usize {
        self.ptr.len()
    }

    /// Type after one dereference; `None` for non-pointers.
    pub fn deref(&self) -> Option<Type> {
        if self.ptr.is_empty() {
            return None;
        }
        let mut t = self.clone();
        t.ptr.pop();
        Some(t)
    }

    /// Byte size of a value of this type under the LP64 model.
    pub fn size_bytes(&self) -> usize {
        if self.is_pointer() {
            8
        } else {
            self.base.size_bytes()
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pure_qual {
            write!(f, "pure ")?;
        }
        if self.base_const {
            write!(f, "const ")?;
        }
        write!(f, "{}", self.base)?;
        for level in &self.ptr {
            write!(f, "*")?;
            if level.is_const {
                write!(f, " const")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
    Deref,
    AddrOf,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

impl UnOp {
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
            UnOp::PreInc | UnOp::PostInc => "++",
            UnOp::PreDec | UnOp::PostDec => "--",
        }
    }

    /// True for the four increment/decrement forms — these *write* their
    /// operand, which matters to the purity verifier.
    pub fn writes_operand(self) -> bool {
        matches!(
            self,
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
}

impl BinOp {
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::BitOr => "|",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding power used by both the Pratt parser and the printer to decide
    /// parenthesisation. Higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 12,
            BinOp::Add | BinOp::Sub => 11,
            BinOp::Shl | BinOp::Shr => 10,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 9,
            BinOp::Eq | BinOp::Ne => 8,
            BinOp::BitAnd => 7,
            BinOp::BitXor => 6,
            BinOp::BitOr => 5,
            BinOp::And => 4,
            BinOp::Or => 3,
        }
    }
}

/// Compound-assignment operators (plus plain `=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
}

impl AssignOp {
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
            AssignOp::BitAnd => "&=",
            AssignOp::BitOr => "|=",
            AssignOp::BitXor => "^=",
        }
    }

    /// The underlying arithmetic op for compound assignments.
    pub fn binop(self) -> Option<BinOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Div => BinOp::Div,
            AssignOp::Rem => BinOp::Rem,
            AssignOp::Shl => BinOp::Shl,
            AssignOp::Shr => BinOp::Shr,
            AssignOp::BitAnd => BinOp::BitAnd,
            AssignOp::BitOr => BinOp::BitOr,
            AssignOp::BitXor => BinOp::BitXor,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    /// `single` marks an `f` suffix (C `float` literal).
    FloatLit {
        value: f64,
        single: bool,
    },
    StrLit(String),
    CharLit(char),
    Ident(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct or indirect call. In the subset the callee is almost always an
    /// identifier; the verifier rejects anything else inside pure code.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    Index(Box<Expr>, Box<Expr>),
    /// `base.member` (`arrow == false`) or `base->member` (`arrow == true`).
    Member {
        base: Box<Expr>,
        member: String,
        arrow: bool,
    },
    Cast(Type, Box<Expr>),
    SizeofType(Type),
    SizeofExpr(Box<Expr>),
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    pub fn int(value: i64) -> Self {
        Expr::new(ExprKind::IntLit(value), Span::DUMMY)
    }

    pub fn ident(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Ident(name.into()), Span::DUMMY)
    }

    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::new(
            ExprKind::Call {
                callee: Box::new(Expr::ident(name)),
                args,
            },
            Span::DUMMY,
        )
    }

    pub fn binary(op: BinOp, l: Expr, r: Expr) -> Self {
        Expr::new(ExprKind::Binary(op, Box::new(l), Box::new(r)), Span::DUMMY)
    }

    /// If this expression is a plain identifier, return its name.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// If this is a direct call (`f(...)`), return the callee name and args.
    pub fn as_direct_call(&self) -> Option<(&str, &[Expr])> {
        match &self.kind {
            ExprKind::Call { callee, args } => callee.as_ident().map(|n| (n, args.as_slice())),
            _ => None,
        }
    }

    /// The *root variable* of an lvalue expression: the identifier whose
    /// storage is ultimately written by an assignment to this expression.
    /// `a[i][j]`, `*p`, `s->field`, `(*q).x` all root at `a`/`p`/`s`/`q`.
    /// Returns `None` for rvalue shapes (calls, literals, arithmetic).
    pub fn lvalue_root(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            ExprKind::Index(base, _) => base.lvalue_root(),
            ExprKind::Unary(UnOp::Deref, inner) => inner.lvalue_root(),
            ExprKind::Member { base, .. } => base.lvalue_root(),
            ExprKind::Cast(_, inner) => inner.lvalue_root(),
            _ => None,
        }
    }

    /// True when an assignment to this expression writes *through* the root
    /// (dereference, index or `->`), as opposed to rebinding the variable
    /// itself. `p = x` rebinds; `*p = x` / `p[i] = x` / `p->f = x` write
    /// through. The purity rules treat these differently (Listing 4).
    pub fn writes_through_pointer(&self) -> bool {
        match &self.kind {
            ExprKind::Ident(_) => false,
            ExprKind::Index(..) | ExprKind::Unary(UnOp::Deref, _) => true,
            ExprKind::Member { arrow, base, .. } => *arrow || base.writes_through_pointer(),
            ExprKind::Cast(_, inner) => inner.writes_through_pointer(),
            _ => false,
        }
    }

    /// Visit this expression and all sub-expressions, outside-in.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit { .. }
            | ExprKind::StrLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::Ident(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Unary(_, e) | ExprKind::Cast(_, e) | ExprKind::SizeofExpr(e) => {
                e.walk(f);
            }
            ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) => {
                l.walk(f);
                r.walk(f);
            }
            ExprKind::Assign(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            ExprKind::Ternary(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            ExprKind::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Index(b, i) => {
                b.walk(f);
                i.walk(f);
            }
            ExprKind::Member { base, .. } => base.walk(f),
        }
    }

    /// Collect names of all directly-called functions in this expression.
    pub fn called_functions(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Some((name, _)) = e.as_direct_call() {
                out.push(name);
            }
        });
        out
    }
}

// ---------------------------------------------------------------------------
// Declarations and statements
// ---------------------------------------------------------------------------

/// One declarator within a declaration: `int a = 3, *b, c[10];` yields three.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    pub name: String,
    pub ty: Type,
    /// Constant or symbolic array dimensions, outermost first.
    pub array_dims: Vec<Expr>,
    pub init: Option<Expr>,
    pub span: Span,
}

impl Declarator {
    pub fn is_array(&self) -> bool {
        !self.array_dims.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Storage-class keywords that we carry through verbatim.
    pub storage: Vec<String>,
    pub declarators: Vec<Declarator>,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    Decl(Declaration),
    Expr(Option<Expr>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    Decl(Declaration),
    /// Expression statement; `None` is the empty statement `;`.
    Expr(Option<Expr>),
    Block(Block),
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    For {
        init: Box<ForInit>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    /// `#pragma ...` line kept in statement position (scop markers, OpenMP).
    Pragma(String),
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// Visit this statement and all nested statements, outside-in.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    s.walk(f);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(f);
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => body.walk(f),
            _ => {}
        }
    }

    /// Visit every expression contained in this statement subtree.
    pub fn walk_exprs<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        self.walk(&mut |s| match &s.kind {
            StmtKind::Decl(d) => {
                for dec in &d.declarators {
                    for dim in &dec.array_dims {
                        dim.walk(f);
                    }
                    if let Some(init) = &dec.init {
                        init.walk(f);
                    }
                }
            }
            StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => e.walk(f),
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::DoWhile { cond, .. } => cond.walk(f),
            StmtKind::For {
                init, cond, step, ..
            } => {
                match init.as_ref() {
                    ForInit::Decl(d) => {
                        for dec in &d.declarators {
                            if let Some(i) = &dec.init {
                                i.walk(f);
                            }
                        }
                    }
                    ForInit::Expr(Some(e)) => e.walk(f),
                    ForInit::Expr(None) => {}
                }
                if let Some(c) = cond {
                    c.walk(f);
                }
                if let Some(s2) = step {
                    s2.walk(f);
                }
            }
            _ => {}
        });
    }
}

// ---------------------------------------------------------------------------
// Top-level items
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: Option<String>,
    pub ty: Type,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    /// The paper's `pure` prefix on the function itself.
    pub is_pure: bool,
    pub is_static: bool,
    pub is_inline: bool,
    pub ret: Type,
    pub params: Vec<Param>,
    pub varargs: bool,
    /// `None` for prototypes.
    pub body: Option<Block>,
    pub span: Span,
}

impl Function {
    pub fn is_definition(&self) -> bool {
        self.body.is_some()
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct StructField {
    pub name: String,
    pub ty: Type,
    pub array_dims: Vec<Expr>,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<StructField>,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Function(Function),
    Decl(Declaration),
    Struct(StructDef),
    Typedef(Typedef),
    Pragma(String),
}

impl Item {
    pub fn span(&self) -> Span {
        match self {
            Item::Function(f) => f.span,
            Item::Decl(d) => d.span,
            Item::Struct(s) => s.span,
            Item::Typedef(t) => t.span,
            Item::Pragma(_) => Span::DUMMY,
        }
    }
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// All function definitions and prototypes, in source order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.items.iter_mut().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Find a function *definition* by name (prototypes skipped unless no
    /// definition exists).
    pub fn find_function(&self, name: &str) -> Option<&Function> {
        self.functions()
            .filter(|f| f.name == name)
            .max_by_key(|f| f.is_definition())
    }

    /// Names of all global (file-scope) variables.
    pub fn global_variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for item in &self.items {
            if let Item::Decl(d) = item {
                for dec in &d.declarators {
                    out.push(dec.name.as_str());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_formats_pure_pointers() {
        let t = Type::ptr_to(BaseType::Float, 1).with_pure();
        assert_eq!(t.to_string(), "pure float*");
        let t2 = Type::ptr_to(BaseType::Int, 2);
        assert_eq!(t2.to_string(), "int**");
        let t3 = Type::new(BaseType::Double).with_const_base();
        assert_eq!(t3.to_string(), "const double");
    }

    #[test]
    fn deref_pops_pointer_levels() {
        let t = Type::ptr_to(BaseType::Float, 2);
        let d1 = t.deref().unwrap();
        assert_eq!(d1.pointer_depth(), 1);
        let d2 = d1.deref().unwrap();
        assert_eq!(d2.pointer_depth(), 0);
        assert!(d2.deref().is_none());
    }

    #[test]
    fn lvalue_root_traverses_indexing_and_deref() {
        // a[i][j]
        let e = Expr::new(
            ExprKind::Index(
                Box::new(Expr::new(
                    ExprKind::Index(Box::new(Expr::ident("a")), Box::new(Expr::ident("i"))),
                    Span::DUMMY,
                )),
                Box::new(Expr::ident("j")),
            ),
            Span::DUMMY,
        );
        assert_eq!(e.lvalue_root(), Some("a"));
        assert!(e.writes_through_pointer());

        let p = Expr::new(
            ExprKind::Unary(UnOp::Deref, Box::new(Expr::ident("p"))),
            Span::DUMMY,
        );
        assert_eq!(p.lvalue_root(), Some("p"));
        assert!(p.writes_through_pointer());

        let v = Expr::ident("v");
        assert_eq!(v.lvalue_root(), Some("v"));
        assert!(!v.writes_through_pointer());

        let call = Expr::call("f", vec![]);
        assert_eq!(call.lvalue_root(), None);
    }

    #[test]
    fn called_functions_are_collected_in_nested_exprs() {
        // f(g(x) + 1, h())
        let e = Expr::call(
            "f",
            vec![
                Expr::binary(
                    BinOp::Add,
                    Expr::call("g", vec![Expr::ident("x")]),
                    Expr::int(1),
                ),
                Expr::call("h", vec![]),
            ],
        );
        let calls = e.called_functions();
        assert!(calls.contains(&"f"));
        assert!(calls.contains(&"g"));
        assert!(calls.contains(&"h"));
        assert_eq!(calls.len(), 3);
    }

    #[test]
    fn size_bytes_lp64() {
        assert_eq!(Type::int().size_bytes(), 4);
        assert_eq!(Type::double().size_bytes(), 8);
        assert_eq!(Type::ptr_to(BaseType::Char, 1).size_bytes(), 8);
        assert_eq!(Type::new(BaseType::Short).size_bytes(), 2);
    }

    #[test]
    fn binop_precedence_orders_correctly() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Shl.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
