//! Mutable AST visitors used by the transformation stages (call substitution,
//! `pure` lowering, pragma insertion), plus a read-only symbol-collection
//! pass feeding the [`crate::intern::Interner`].

use crate::ast::*;
use crate::intern::Interner;

/// Intern every name a later resolution pass will look up: function names,
/// parameter/variable declarators, struct names and fields, and all
/// identifiers / member names / called functions appearing in expressions.
/// Pre-seeding the interner this way lets the `cinterp` resolver hand out
/// dense `u32` symbols without rehashing strings on the execution path.
pub fn collect_symbols(unit: &TranslationUnit, interner: &mut Interner) {
    let intern_expr = |interner: &mut Interner, e: &Expr| {
        e.walk(&mut |e| match &e.kind {
            ExprKind::Ident(name) => {
                interner.intern(name);
            }
            ExprKind::Member { member, .. } => {
                interner.intern(member);
            }
            _ => {}
        });
    };
    let intern_decl = |interner: &mut Interner, d: &Declaration| {
        for dec in &d.declarators {
            interner.intern(&dec.name);
        }
    };
    for item in &unit.items {
        match item {
            Item::Function(f) => {
                interner.intern(&f.name);
                for p in &f.params {
                    if let Some(name) = &p.name {
                        interner.intern(name);
                    }
                }
                if let Some(body) = &f.body {
                    for stmt in &body.stmts {
                        stmt.walk(&mut |s| {
                            if let StmtKind::Decl(d) = &s.kind {
                                intern_decl(interner, d);
                            }
                            if let StmtKind::For { init, .. } = &s.kind {
                                if let ForInit::Decl(d) = init.as_ref() {
                                    intern_decl(interner, d);
                                }
                            }
                        });
                        stmt.walk_exprs(&mut |e| intern_expr(interner, e));
                    }
                }
            }
            Item::Decl(d) => {
                intern_decl(interner, d);
                for dec in &d.declarators {
                    if let Some(init) = &dec.init {
                        intern_expr(interner, init);
                    }
                }
            }
            Item::Struct(s) => {
                interner.intern(&s.name);
                for field in &s.fields {
                    interner.intern(&field.name);
                }
            }
            Item::Typedef(t) => {
                interner.intern(&t.name);
            }
            Item::Pragma(_) => {}
        }
    }
}

/// Walk every expression in a statement subtree with a mutable closure.
/// Traversal is outside-in; the closure may rewrite nodes in place.
pub fn visit_exprs_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Decl(d) => {
            for dec in &mut d.declarators {
                for dim in &mut dec.array_dims {
                    visit_expr_mut(dim, f);
                }
                if let Some(init) = &mut dec.init {
                    visit_expr_mut(init, f);
                }
            }
        }
        StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => visit_expr_mut(e, f),
        StmtKind::Expr(None) | StmtKind::Return(None) => {}
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                visit_exprs_mut(s, f);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            visit_expr_mut(cond, f);
            visit_exprs_mut(then_branch, f);
            if let Some(e) = else_branch {
                visit_exprs_mut(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            visit_expr_mut(cond, f);
            visit_exprs_mut(body, f);
        }
        StmtKind::DoWhile { body, cond } => {
            visit_exprs_mut(body, f);
            visit_expr_mut(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            match init.as_mut() {
                ForInit::Decl(d) => {
                    for dec in &mut d.declarators {
                        if let Some(i) = &mut dec.init {
                            visit_expr_mut(i, f);
                        }
                    }
                }
                ForInit::Expr(Some(e)) => visit_expr_mut(e, f),
                ForInit::Expr(None) => {}
            }
            if let Some(c) = cond {
                visit_expr_mut(c, f);
            }
            if let Some(s) = step {
                visit_expr_mut(s, f);
            }
            visit_exprs_mut(body, f);
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Pragma(_) => {}
    }
}

/// Walk an expression tree with a mutable closure, outside-in.
pub fn visit_expr_mut(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit { .. }
        | ExprKind::StrLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
            visit_expr_mut(inner, f)
        }
        ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) | ExprKind::Assign(_, l, r) => {
            visit_expr_mut(l, f);
            visit_expr_mut(r, f);
        }
        ExprKind::Ternary(c, t, els) => {
            visit_expr_mut(c, f);
            visit_expr_mut(t, f);
            visit_expr_mut(els, f);
        }
        ExprKind::Call { callee, args } => {
            visit_expr_mut(callee, f);
            for a in args {
                visit_expr_mut(a, f);
            }
        }
        ExprKind::Index(b, i) => {
            visit_expr_mut(b, f);
            visit_expr_mut(i, f);
        }
        ExprKind::Member { base, .. } => visit_expr_mut(base, f),
    }
}

/// Walk every statement in a function body with a mutable closure
/// (outside-in). The closure may rewrite statement kinds in place.
pub fn visit_stmts_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Stmt)) {
    f(stmt);
    match &mut stmt.kind {
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                visit_stmts_mut(s, f);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            visit_stmts_mut(then_branch, f);
            if let Some(e) = else_branch {
                visit_stmts_mut(e, f);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => visit_stmts_mut(body, f),
        _ => {}
    }
}

/// Walk all types mentioned in a statement subtree (declarations and casts).
pub fn visit_types_mut(stmt: &mut Stmt, f: &mut dyn FnMut(&mut Type)) {
    visit_stmts_mut(stmt, &mut |s| {
        if let StmtKind::Decl(d) = &mut s.kind {
            for dec in &mut d.declarators {
                f(&mut dec.ty);
            }
        }
        if let StmtKind::For { init, .. } = &mut s.kind {
            if let ForInit::Decl(d) = init.as_mut() {
                for dec in &mut d.declarators {
                    f(&mut dec.ty);
                }
            }
        }
    });
    visit_exprs_mut(stmt, &mut |e| {
        if let ExprKind::Cast(ty, _) = &mut e.kind {
            f(ty);
        }
        if let ExprKind::SizeofType(ty) = &mut e.kind {
            f(ty);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_unit;

    #[test]
    fn rewrite_calls_to_constants() {
        let src = "void f() { for (int i = 0; i < 4; i++) a[i] = g(i) + h(i); }";
        let mut unit = parse(src).unit;
        for func in unit.functions_mut() {
            if let Some(body) = &mut func.body {
                for s in &mut body.stmts {
                    visit_exprs_mut(s, &mut |e| {
                        if let Some((name, _)) = e.as_direct_call() {
                            if name == "g" || name == "h" {
                                let replacement = format!("tmpConst_{name}");
                                *e = Expr::ident(replacement);
                            }
                        }
                    });
                }
            }
        }
        let out = print_unit(&unit);
        assert!(out.contains("tmpConst_g + tmpConst_h"), "{out}");
        assert!(!out.contains("g(i)"));
    }

    #[test]
    fn visit_types_reaches_casts_and_decls() {
        let src = "void f() { pure int* p = (pure int*)q; }";
        let mut unit = parse(src).unit;
        let mut count = 0;
        for func in unit.functions_mut() {
            if let Some(body) = &mut func.body {
                for s in &mut body.stmts {
                    visit_types_mut(s, &mut |ty| {
                        if ty.pure_qual {
                            count += 1;
                        }
                    });
                }
            }
        }
        assert_eq!(count, 2); // declaration type + cast type
    }

    #[test]
    fn visit_stmts_counts_nested() {
        let src = "void f() { if (a) { for (;;) x = 1; } else y = 2; }";
        let mut unit = parse(src).unit;
        let mut n = 0;
        for func in unit.functions_mut() {
            if let Some(body) = &mut func.body {
                for s in &mut body.stmts {
                    visit_stmts_mut(s, &mut |_| n += 1);
                }
            }
        }
        // if + block + for + x=1 + y=2
        assert_eq!(n, 5);
    }
}
