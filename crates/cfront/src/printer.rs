//! Pretty-printer: AST → C source text.
//!
//! The pipeline is source-to-source (Fig. 1 of the paper): the purity pass
//! and the polyhedral transformer both rewrite the AST and re-emit C. The
//! printer emits canonical formatting; `print ∘ parse ∘ print = print` is
//! verified by property tests.

use crate::ast::*;

/// Printer configuration. `indent` is the number of spaces per level.
#[derive(Debug, Clone, Copy)]
pub struct PrintOptions {
    pub indent: usize,
}

impl Default for PrintOptions {
    fn default() -> Self {
        PrintOptions { indent: 4 }
    }
}

/// Print a whole translation unit with default options.
pub fn print_unit(unit: &TranslationUnit) -> String {
    Printer::new(PrintOptions::default()).unit(unit)
}

/// Print a single expression (no trailing newline).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new(PrintOptions::default());
    p.expr(e, 0);
    p.out
}

/// Print a single statement at indent level 0.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new(PrintOptions::default());
    p.stmt(s, 0);
    p.out
}

struct Printer {
    opts: PrintOptions,
    out: String,
}

impl Printer {
    fn new(opts: PrintOptions) -> Self {
        Printer {
            opts,
            out: String::new(),
        }
    }

    fn pad(&mut self, level: usize) {
        for _ in 0..level * self.opts.indent {
            self.out.push(' ');
        }
    }

    fn unit(mut self, unit: &TranslationUnit) -> String {
        for (i, item) in unit.items.iter().enumerate() {
            if i > 0 {
                self.out.push('\n');
            }
            self.item(item);
        }
        self.out
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Function(f) => self.function(f),
            Item::Decl(d) => {
                self.declaration(d, 0);
                self.out.push('\n');
            }
            Item::Struct(s) => self.struct_def(s),
            Item::Typedef(t) => {
                self.out.push_str("typedef ");
                self.type_(&t.ty);
                self.out.push(' ');
                self.out.push_str(&t.name);
                self.out.push_str(";\n");
            }
            Item::Pragma(p) => {
                self.out.push('#');
                self.out.push_str(p);
                self.out.push('\n');
            }
        }
    }

    fn struct_def(&mut self, s: &StructDef) {
        self.out.push_str("struct ");
        self.out.push_str(&s.name);
        self.out.push_str(" {\n");
        for field in &s.fields {
            self.pad(1);
            self.type_(&field.ty);
            self.out.push(' ');
            self.out.push_str(&field.name);
            for dim in &field.array_dims {
                self.out.push('[');
                self.expr(dim, 0);
                self.out.push(']');
            }
            self.out.push_str(";\n");
        }
        self.out.push_str("};\n");
    }

    fn type_(&mut self, ty: &Type) {
        if ty.pure_qual {
            self.out.push_str("pure ");
        }
        if ty.base_const {
            self.out.push_str("const ");
        }
        self.out.push_str(&ty.base.to_string());
        for level in &ty.ptr {
            self.out.push('*');
            if level.is_const {
                self.out.push_str(" const");
            }
        }
    }

    fn function(&mut self, f: &Function) {
        if f.is_static {
            self.out.push_str("static ");
        }
        if f.is_inline {
            self.out.push_str("inline ");
        }
        if f.is_pure {
            self.out.push_str("pure ");
        }
        self.type_(&f.ret);
        self.out.push(' ');
        self.out.push_str(&f.name);
        self.out.push('(');
        if f.params.is_empty() && !f.varargs {
            self.out.push_str("void");
        }
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.type_(&p.ty);
            if let Some(name) = &p.name {
                self.out.push(' ');
                self.out.push_str(name);
            }
        }
        if f.varargs {
            if !f.params.is_empty() {
                self.out.push_str(", ");
            }
            self.out.push_str("...");
        }
        self.out.push(')');
        match &f.body {
            Some(body) => {
                self.out.push(' ');
                self.block(body, 0);
                self.out.push('\n');
            }
            None => self.out.push_str(";\n"),
        }
    }

    fn block(&mut self, b: &Block, level: usize) {
        self.out.push_str("{\n");
        for stmt in &b.stmts {
            self.stmt(stmt, level + 1);
        }
        self.pad(level);
        self.out.push('}');
    }

    fn declaration(&mut self, d: &Declaration, level: usize) {
        self.pad(level);
        for kw in &d.storage {
            self.out.push_str(kw);
            self.out.push(' ');
        }
        for (i, dec) in d.declarators.iter().enumerate() {
            if i == 0 {
                self.type_(&dec.ty);
                self.out.push(' ');
            } else {
                self.out.push_str(", ");
                for _ in 0..dec.ty.pointer_depth() {
                    self.out.push('*');
                }
            }
            self.out.push_str(&dec.name);
            for dim in &dec.array_dims {
                self.out.push('[');
                self.expr(dim, 0);
                self.out.push(']');
            }
            if let Some(init) = &dec.init {
                self.out.push_str(" = ");
                self.init_expr(init);
            }
        }
        self.out.push(';');
    }

    /// Initializer expression; the synthetic `__initlist(...)` marker prints
    /// back as a brace initializer.
    fn init_expr(&mut self, e: &Expr) {
        if let Some(("__initlist", args)) = e.as_direct_call() {
            self.out.push('{');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.init_expr(a);
            }
            self.out.push('}');
        } else {
            self.expr(e, 0);
        }
    }

    fn stmt(&mut self, s: &Stmt, level: usize) {
        match &s.kind {
            StmtKind::Decl(d) => {
                self.declaration(d, level);
                self.out.push('\n');
            }
            StmtKind::Expr(e) => {
                self.pad(level);
                if let Some(e) = e {
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Block(b) => {
                self.pad(level);
                self.block(b, level);
                self.out.push('\n');
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.pad(level);
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested_stmt(then_branch, level);
                if let Some(else_branch) = else_branch {
                    self.pad(level);
                    self.out.push_str("else\n");
                    self.nested_stmt(else_branch, level);
                }
            }
            StmtKind::While { cond, body } => {
                self.pad(level);
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(")\n");
                self.nested_stmt(body, level);
            }
            StmtKind::DoWhile { body, cond } => {
                self.pad(level);
                self.out.push_str("do\n");
                self.nested_stmt(body, level);
                self.pad(level);
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(");\n");
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.pad(level);
                self.out.push_str("for (");
                match init.as_ref() {
                    ForInit::Decl(d) => {
                        // Inline declaration without trailing newline.
                        let save = self.out.len();
                        self.declaration(d, 0);
                        // `declaration` emits a trailing `;` — keep it as the
                        // for-init separator.
                        let _ = save;
                    }
                    ForInit::Expr(e) => {
                        if let Some(e) = e {
                            self.expr(e, 0);
                        }
                        self.out.push(';');
                    }
                }
                self.out.push(' ');
                if let Some(c) = cond {
                    self.expr(c, 0);
                }
                self.out.push_str("; ");
                if let Some(st) = step {
                    self.expr(st, 0);
                }
                self.out.push_str(")\n");
                self.nested_stmt(body, level);
            }
            StmtKind::Return(e) => {
                self.pad(level);
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Break => {
                self.pad(level);
                self.out.push_str("break;\n");
            }
            StmtKind::Continue => {
                self.pad(level);
                self.out.push_str("continue;\n");
            }
            StmtKind::Pragma(p) => {
                // Pragmas are column-0 in C.
                self.out.push('#');
                self.out.push_str(p);
                self.out.push('\n');
            }
        }
    }

    /// A body statement of if/for/while: blocks print inline, single
    /// statements print indented one level deeper.
    fn nested_stmt(&mut self, s: &Stmt, level: usize) {
        match &s.kind {
            StmtKind::Block(b) => {
                self.pad(level);
                self.block(b, level);
                self.out.push('\n');
            }
            _ => self.stmt(s, level + 1),
        }
    }

    /// `parent_prec` is the binding power of the context; sub-expressions
    /// with lower precedence get parentheses.
    fn expr(&mut self, e: &Expr, parent_prec: u8) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.out.push_str(&v.to_string());
            }
            ExprKind::FloatLit { value, single } => {
                let mut s = format!("{value}");
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN")
                {
                    s.push_str(".0");
                }
                self.out.push_str(&s);
                if *single {
                    self.out.push('f');
                }
            }
            ExprKind::StrLit(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\0' => self.out.push_str("\\0"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::CharLit(c) => {
                self.out.push('\'');
                match c {
                    '\n' => self.out.push_str("\\n"),
                    '\t' => self.out.push_str("\\t"),
                    '\r' => self.out.push_str("\\r"),
                    '\\' => self.out.push_str("\\\\"),
                    '\'' => self.out.push_str("\\'"),
                    '\0' => self.out.push_str("\\0"),
                    c => self.out.push(*c),
                }
                self.out.push('\'');
            }
            ExprKind::Ident(name) => self.out.push_str(name),
            ExprKind::Unary(op, inner) => {
                const UNARY_PREC: u8 = 13;
                let paren = parent_prec > UNARY_PREC;
                if paren {
                    self.out.push('(');
                }
                match op {
                    UnOp::PostInc | UnOp::PostDec => {
                        self.expr(inner, 14);
                        self.out.push_str(op.as_str());
                    }
                    _ => {
                        self.out.push_str(op.as_str());
                        // Avoid `--x` from Neg(Neg(x)).
                        if matches!(op, UnOp::Neg)
                            && matches!(inner.kind, ExprKind::Unary(UnOp::Neg, _))
                        {
                            self.out.push(' ');
                        }
                        self.expr(inner, UNARY_PREC);
                    }
                }
                if paren {
                    self.out.push(')');
                }
            }
            ExprKind::Binary(op, l, r) => {
                let prec = op.precedence();
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.expr(l, prec);
                self.out.push(' ');
                self.out.push_str(op.as_str());
                self.out.push(' ');
                self.expr(r, prec + 1);
                if paren {
                    self.out.push(')');
                }
            }
            ExprKind::Assign(op, l, r) => {
                const ASSIGN_PREC: u8 = 2;
                let paren = parent_prec > ASSIGN_PREC;
                if paren {
                    self.out.push('(');
                }
                self.expr(l, ASSIGN_PREC + 1);
                self.out.push(' ');
                self.out.push_str(op.as_str());
                self.out.push(' ');
                self.expr(r, ASSIGN_PREC);
                if paren {
                    self.out.push(')');
                }
            }
            ExprKind::Ternary(c, t, f) => {
                const TERNARY_PREC: u8 = 2;
                let paren = parent_prec > TERNARY_PREC;
                if paren {
                    self.out.push('(');
                }
                self.expr(c, TERNARY_PREC + 1);
                self.out.push_str(" ? ");
                self.expr(t, 0);
                self.out.push_str(" : ");
                self.expr(f, TERNARY_PREC);
                if paren {
                    self.out.push(')');
                }
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee, 14);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, 3); // assignment expressions need no parens
                }
                self.out.push(')');
            }
            ExprKind::Index(base, idx) => {
                self.expr(base, 14);
                self.out.push('[');
                self.expr(idx, 0);
                self.out.push(']');
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => {
                self.expr(base, 14);
                self.out.push_str(if *arrow { "->" } else { "." });
                self.out.push_str(member);
            }
            ExprKind::Cast(ty, inner) => {
                const CAST_PREC: u8 = 13;
                let paren = parent_prec > CAST_PREC;
                if paren {
                    self.out.push('(');
                }
                self.out.push('(');
                self.type_(ty);
                self.out.push(')');
                self.expr(inner, CAST_PREC);
                if paren {
                    self.out.push(')');
                }
            }
            ExprKind::SizeofType(ty) => {
                self.out.push_str("sizeof(");
                self.type_(ty);
                self.out.push(')');
            }
            ExprKind::SizeofExpr(inner) => {
                self.out.push_str("sizeof(");
                self.expr(inner, 0);
                self.out.push(')');
            }
            ExprKind::Comma(l, r) => {
                let paren = parent_prec > 1;
                if paren {
                    self.out.push('(');
                }
                self.expr(l, 1);
                self.out.push_str(", ");
                self.expr(r, 1);
                if paren {
                    self.out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr_str};

    fn round_trip(src: &str) -> String {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        print_unit(&r.unit)
    }

    /// Canonical output must be a fixed point of parse∘print.
    fn assert_stable(src: &str) {
        let once = round_trip(src);
        let twice = round_trip(&once);
        assert_eq!(once, twice, "printer not idempotent for:\n{src}");
    }

    #[test]
    fn prints_listing1() {
        let out = round_trip("pure int* func(pure int* p1, int p2);");
        assert_eq!(out, "pure int* func(pure int* p1, int p2);\n");
    }

    #[test]
    fn prints_matmul_kernel_stably() {
        assert_stable(
            "float **A, **Bt, **C;\n\
             pure float mult(float a, float b) { return a * b; }\n\
             pure float dot(pure float* a, pure float* b, int size) {\n\
             float res = 0.0f;\n\
             for (int i = 0; i < size; ++i) res += mult(a[i], b[i]);\n\
             return res;\n}\n\
             int main(int argc, char** argv) {\n\
             for (int i = 0; i < 4096; ++i)\n\
             for (int j = 0; j < 4096; ++j)\n\
             C[i][j] = dot((pure float*)A[i], (pure float*)Bt[i], 4096);\n\
             return 0;\n}",
        );
    }

    #[test]
    fn parenthesises_by_precedence() {
        let e = parse_expr_str("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e = parse_expr_str("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + b * c");
        let e = parse_expr_str("-(a + b)").unwrap();
        assert_eq!(print_expr(&e), "-(a + b)");
        let e = parse_expr_str("*p++").unwrap();
        assert_eq!(print_expr(&e), "*p++");
    }

    #[test]
    fn float_literals_keep_suffix() {
        let e = parse_expr_str("0.0f").unwrap();
        assert_eq!(print_expr(&e), "0.0f");
        // Parse of the printed form must give the same value.
        let e2 = parse_expr_str(&print_expr(&e)).unwrap();
        assert_eq!(e2.kind, e.kind);
    }

    #[test]
    fn pragma_round_trip() {
        let out = round_trip(
            "void f() {\n#pragma scop\nfor (int i = 0; i < 4; i++) ;\n#pragma endscop\n}",
        );
        assert!(out.contains("#pragma scop"));
        assert!(out.contains("#pragma endscop"));
        assert_stable(&out);
    }

    #[test]
    fn struct_and_member_stable() {
        assert_stable(
            "struct datatype { int storage; };\n\
             void f(struct datatype* s) { s->storage = 3; }",
        );
    }

    #[test]
    fn initializer_lists_print_as_braces() {
        let out = round_trip("void f() { int a[3] = {1, 2, 3}; }");
        assert!(out.contains("int a[3] = {1, 2, 3};"), "{out}");
        assert_stable(&out);
    }

    #[test]
    fn sizeof_forms() {
        let e = parse_expr_str("sizeof(int)").unwrap();
        assert_eq!(print_expr(&e), "sizeof(int)");
        let e = parse_expr_str("sizeof(a[0])").unwrap();
        assert_eq!(print_expr(&e), "sizeof(a[0])");
    }

    #[test]
    fn comma_in_call_args_parenthesised() {
        // A comma expression as a single argument must keep its parens.
        let e = parse_expr_str("f((a, b), c)").unwrap();
        assert_eq!(print_expr(&e), "f((a, b), c)");
    }
}
