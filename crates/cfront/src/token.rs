//! Token definitions for the extended C subset.
//!
//! The token set covers C11 as exercised by the paper's listings and test
//! applications, plus the new `pure` keyword (Sect. 3.1 of the paper).

use crate::span::Span;
use std::fmt;

/// Keywords recognised by the lexer. `Pure` is the paper's extension; the
/// rest are standard C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Pure,
    Int,
    Float,
    Double,
    Char,
    Void,
    Long,
    Short,
    Unsigned,
    Signed,
    Const,
    Static,
    Inline,
    Extern,
    Register,
    Volatile,
    Restrict,
    Struct,
    Union,
    Enum,
    Typedef,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Switch,
    Case,
    Default,
    Goto,
    Sizeof,
}

impl Keyword {
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "pure" => Pure,
            "int" => Int,
            "float" => Float,
            "double" => Double,
            "char" => Char,
            "void" => Void,
            "long" => Long,
            "short" => Short,
            "unsigned" => Unsigned,
            "signed" => Signed,
            "const" => Const,
            "static" => Static,
            "inline" => Inline,
            "extern" => Extern,
            "register" => Register,
            "volatile" => Volatile,
            "restrict" => Restrict,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "typedef" => Typedef,
            "if" => If,
            "else" => Else,
            "for" => For,
            "while" => While,
            "do" => Do,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "goto" => Goto,
            "sizeof" => Sizeof,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Pure => "pure",
            Int => "int",
            Float => "float",
            Double => "double",
            Char => "char",
            Void => "void",
            Long => "long",
            Short => "short",
            Unsigned => "unsigned",
            Signed => "signed",
            Const => "const",
            Static => "static",
            Inline => "inline",
            Extern => "extern",
            Register => "register",
            Volatile => "volatile",
            Restrict => "restrict",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            Typedef => "typedef",
            If => "if",
            Else => "else",
            For => "for",
            While => "while",
            Do => "do",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Goto => "goto",
            Sizeof => "sizeof",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow, // ->
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AmpAmp,
    PipePipe,
    Shl, // <<
    Shr, // >>
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Eq, // =
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    Question,
    Colon,
    Ellipsis, // ...
}

impl Punct {
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            AmpAmp => "&&",
            PipePipe => "||",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            Question => "?",
            Colon => ":",
            Ellipsis => "...",
        }
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    Ident(String),
    /// Integer literal with its value (suffixes are consumed and recorded).
    IntLit {
        value: i64,
        unsigned: bool,
        long: bool,
    },
    /// Floating literal; `single` is true for an `f`/`F` suffix.
    FloatLit {
        value: f64,
        single: bool,
    },
    /// String literal with escapes already resolved.
    StrLit(String),
    /// Character literal with escapes resolved.
    CharLit(char),
    Punct(Punct),
    /// A preprocessor line that survived to the parser — in this chain only
    /// `#pragma ...` lines (`#pragma scop`, OpenMP pragmas). The payload is
    /// the directive text after `#`, e.g. `pragma omp parallel for`.
    Directive(String),
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit { value, .. } => format!("integer literal `{value}`"),
            TokenKind::FloatLit { value, .. } => format!("float literal `{value}`"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::CharLit(c) => format!("char literal `{c:?}`"),
            TokenKind::Punct(p) => format!("`{}`", p.as_str()),
            TokenKind::Directive(d) => format!("directive `#{d}`"),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Pure,
            Keyword::Int,
            Keyword::Const,
            Keyword::Sizeof,
            Keyword::Typedef,
        ] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_ident("purely"), None);
        assert_eq!(Keyword::from_ident(""), None);
    }

    #[test]
    fn punct_strings_are_unique() {
        use std::collections::HashSet;
        let all = [
            Punct::LParen,
            Punct::RParen,
            Punct::LBrace,
            Punct::RBrace,
            Punct::LBracket,
            Punct::RBracket,
            Punct::Semi,
            Punct::Comma,
            Punct::Dot,
            Punct::Arrow,
            Punct::Plus,
            Punct::Minus,
            Punct::Star,
            Punct::Slash,
            Punct::Percent,
            Punct::PlusPlus,
            Punct::MinusMinus,
            Punct::Amp,
            Punct::Pipe,
            Punct::Caret,
            Punct::Tilde,
            Punct::Bang,
            Punct::AmpAmp,
            Punct::PipePipe,
            Punct::Shl,
            Punct::Shr,
            Punct::Lt,
            Punct::Gt,
            Punct::Le,
            Punct::Ge,
            Punct::EqEq,
            Punct::Ne,
            Punct::Eq,
            Punct::PlusEq,
            Punct::MinusEq,
            Punct::StarEq,
            Punct::SlashEq,
            Punct::PercentEq,
            Punct::AmpEq,
            Punct::PipeEq,
            Punct::CaretEq,
            Punct::ShlEq,
            Punct::ShrEq,
            Punct::Question,
            Punct::Colon,
            Punct::Ellipsis,
        ];
        let set: HashSet<&str> = all.iter().map(|p| p.as_str()).collect();
        assert_eq!(set.len(), all.len());
    }
}
