//! String interning: `u32` symbols for identifiers, function names and
//! struct fields.
//!
//! The downstream consumers — the `cinterp` resolver foremost — compare
//! and hash names on every call and member access; interning turns those
//! into integer operations and lets resolved IR store `Symbol`s instead
//! of owned `String`s. An [`Interner`] is append-only: symbols stay valid
//! for its lifetime and resolve back to `&str` in O(1).

use std::collections::HashMap;
use std::fmt;

/// Interned string handle. `Symbol`s from different interners must not be
/// mixed; the debug representation shows the raw index only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Look up an already-interned name without creating a new symbol.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its text.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("dot");
        let b = i.intern("mult");
        let a2 = i.intern("dot");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "dot");
        assert_eq!(i.resolve(b), "mult");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }
}
