//! Recursive-descent parser for the extended C subset.
//!
//! Grammar coverage matches the paper's listings and the four evaluation
//! applications: declarations (with `pure`), function definitions, structs,
//! typedefs, the full statement set, and C expressions with standard
//! precedence. The parser is deliberately strict — anything outside the
//! subset is a `ParseExpected` diagnostic, which mirrors the paper's stance
//! that the pass "assumes the C standard is not violated".

use crate::ast::*;
use crate::diag::{Code, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::collections::HashSet;

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
    /// Names introduced by `typedef`, needed to disambiguate declarations.
    typedefs: HashSet<String>,
    /// Names introduced by `struct` definitions.
    structs: HashSet<String>,
}

/// Result of parsing: the unit plus all diagnostics (which may contain
/// errors — callers check `diags.has_errors()`).
pub struct ParseResult {
    pub unit: TranslationUnit,
    pub diags: Diagnostics,
}

/// Parse a full translation unit from source text.
pub fn parse(src: &str) -> ParseResult {
    let (toks, mut diags) = lex(src);
    let mut p = Parser {
        toks,
        pos: 0,
        diags: Diagnostics::new(),
        typedefs: HashSet::new(),
        structs: HashSet::new(),
    };
    let unit = p.parse_unit();
    diags.extend(p.diags);
    ParseResult { unit, diags }
}

/// Parse a single expression (used by tests and by the polyhedral codegen
/// round-trips).
pub fn parse_expr_str(src: &str) -> Result<Expr, Diagnostics> {
    let (toks, diags) = lex(src);
    if diags.has_errors() {
        return Err(diags);
    }
    let mut p = Parser {
        toks,
        pos: 0,
        diags: Diagnostics::new(),
        typedefs: HashSet::new(),
        structs: HashSet::new(),
    };
    let e = p.parse_expr();
    if p.diags.has_errors() {
        Err(p.diags)
    } else {
        Ok(e)
    }
}

impl Parser {
    // -- token plumbing ----------------------------------------------------

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Span {
        if self.at_punct(p) {
            self.bump().span
        } else {
            let found = self.peek_kind().describe();
            let sp = self.span();
            self.diags.error(
                Code::ParseExpected,
                sp,
                format!("expected `{}`, found {}", p.as_str(), found),
            );
            sp
        }
    }

    fn expect_ident(&mut self) -> (String, Span) {
        if let TokenKind::Ident(name) = self.peek_kind() {
            let name = name.clone();
            let sp = self.bump().span;
            (name, sp)
        } else {
            let found = self.peek_kind().describe();
            let sp = self.span();
            self.diags.error(
                Code::ParseExpected,
                sp,
                format!("expected identifier, found {found}"),
            );
            (String::from("<error>"), sp)
        }
    }

    /// Skip tokens until we pass a `;` or hit a `}`/EOF — basic error
    /// recovery so one bad statement does not cascade.
    fn synchronize(&mut self) {
        loop {
            if self.at_eof() {
                return;
            }
            if self.eat_punct(Punct::Semi) {
                return;
            }
            if self.at_punct(Punct::RBrace) {
                return;
            }
            self.bump();
        }
    }

    // -- types -------------------------------------------------------------

    fn at_type_start(&self) -> bool {
        match self.peek_kind() {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Pure
                    | Keyword::Const
                    | Keyword::Int
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Struct
                    | Keyword::Static
                    | Keyword::Inline
                    | Keyword::Extern
                    | Keyword::Register
                    | Keyword::Volatile
                    | Keyword::Typedef
            ),
            TokenKind::Ident(name) => self.typedefs.contains(name),
            _ => false,
        }
    }

    /// Parse qualifiers + base type + pointer stars:
    /// `pure const unsigned long **`.
    fn parse_type(&mut self) -> Type {
        let mut pure_qual = false;
        let mut base_const = false;
        loop {
            if self.eat_keyword(Keyword::Pure) {
                pure_qual = true;
            } else if self.eat_keyword(Keyword::Const) {
                base_const = true;
            } else if self.eat_keyword(Keyword::Volatile) || self.eat_keyword(Keyword::Register) {
                // carried but ignored semantically
            } else {
                break;
            }
        }

        let base = self.parse_base_type();

        let mut ptr = Vec::new();
        loop {
            if self.eat_punct(Punct::Star) {
                let mut level = PtrLevel::default();
                while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Restrict) {
                    level.is_const = true;
                }
                ptr.push(level);
            } else {
                break;
            }
        }

        Type {
            base,
            ptr,
            base_const,
            pure_qual,
        }
    }

    fn parse_base_type(&mut self) -> BaseType {
        let mut unsigned = false;
        let mut long_count = 0usize;
        let mut short = false;
        let mut seen_core: Option<BaseType> = None;

        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Unsigned) => {
                    unsigned = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Signed) => {
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Long) => {
                    long_count += 1;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Short) => {
                    short = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Int) => {
                    seen_core = Some(BaseType::Int);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Char) => {
                    seen_core = Some(BaseType::Char);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Float) => {
                    seen_core = Some(BaseType::Float);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Double) => {
                    seen_core = Some(BaseType::Double);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Void) => {
                    seen_core = Some(BaseType::Void);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Struct) => {
                    self.bump();
                    let (name, _) = self.expect_ident();
                    seen_core = Some(BaseType::Struct(name));
                }
                TokenKind::Ident(name)
                    if seen_core.is_none()
                        && !unsigned
                        && long_count == 0
                        && !short
                        && self.typedefs.contains(name) =>
                {
                    let n = name.clone();
                    self.bump();
                    seen_core = Some(BaseType::Named(n));
                }
                _ => break,
            }
            // `struct X`/typedef name terminate the specifier list.
            if matches!(
                seen_core,
                Some(BaseType::Struct(_)) | Some(BaseType::Named(_))
            ) {
                break;
            }
        }

        match seen_core {
            Some(BaseType::Int) | None if short => BaseType::Short,
            Some(BaseType::Int) | None if long_count > 0 && unsigned => BaseType::ULong,
            Some(BaseType::Int) | None if long_count > 0 => BaseType::Long,
            Some(BaseType::Int) | None if unsigned => BaseType::UInt,
            Some(core) => core,
            None => {
                // Lone `unsigned`/`long` already handled; reaching here means
                // no specifier at all — report and default to int.
                let sp = self.span();
                self.diags.error(
                    Code::ParseExpected,
                    sp,
                    format!(
                        "expected type specifier, found {}",
                        self.peek_kind().describe()
                    ),
                );
                BaseType::Int
            }
        }
    }

    // -- top level ----------------------------------------------------------

    fn parse_unit(&mut self) -> TranslationUnit {
        let mut unit = TranslationUnit::default();
        while !self.at_eof() {
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                unit.items.push(item);
            }
            if self.pos == before {
                // Guarantee forward progress on malformed input.
                self.bump();
            }
        }
        unit
    }

    fn parse_item(&mut self) -> Option<Item> {
        // Pragmas / surviving directives.
        if let TokenKind::Directive(d) = self.peek_kind() {
            let d = d.clone();
            self.bump();
            return Some(Item::Pragma(d));
        }
        // Stray semicolons.
        if self.eat_punct(Punct::Semi) {
            return None;
        }

        // typedef
        if self.at_keyword(Keyword::Typedef) {
            return self.parse_typedef().map(Item::Typedef);
        }

        // struct definition `struct name { ... };` (distinguish from a
        // declaration `struct name x;`).
        if self.at_keyword(Keyword::Struct) {
            if let TokenKind::Ident(_) = self.peek_ahead(1) {
                if matches!(self.peek_ahead(2), TokenKind::Punct(Punct::LBrace)) {
                    return self.parse_struct_def().map(Item::Struct);
                }
            }
        }

        if !self.at_type_start() {
            let sp = self.span();
            self.diags.error(
                Code::ParseExpected,
                sp,
                format!(
                    "expected declaration or function definition, found {}",
                    self.peek_kind().describe()
                ),
            );
            self.synchronize();
            return None;
        }

        let start = self.span();
        // Storage-class prefixes.
        let mut is_static = false;
        let mut is_inline = false;
        let mut is_extern = false;
        loop {
            if self.eat_keyword(Keyword::Static) {
                is_static = true;
            } else if self.eat_keyword(Keyword::Inline) {
                is_inline = true;
            } else if self.eat_keyword(Keyword::Extern) {
                is_extern = true;
            } else {
                break;
            }
        }

        let ty = self.parse_type();
        let (name, _name_span) = self.expect_ident();

        if self.at_punct(Punct::LParen) {
            // Function prototype or definition.
            let f = self.parse_function_rest(name, ty, is_static, is_inline, start);
            return Some(Item::Function(f));
        }

        // Global variable declaration (possibly multiple declarators).
        let decl = self.parse_declaration_rest(ty, name, start, is_extern, is_static);
        Some(Item::Decl(decl))
    }

    fn parse_typedef(&mut self) -> Option<Typedef> {
        let start = self.span();
        self.bump(); // typedef
        let ty = self.parse_type();
        let (name, _) = self.expect_ident();
        let end = self.expect_punct(Punct::Semi);
        self.typedefs.insert(name.clone());
        Some(Typedef {
            name,
            ty,
            span: start.to(end),
        })
    }

    fn parse_struct_def(&mut self) -> Option<StructDef> {
        let start = self.span();
        self.bump(); // struct
        let (name, _) = self.expect_ident();
        self.expect_punct(Punct::LBrace);
        let mut fields = Vec::new();
        while !self.at_punct(Punct::RBrace) && !self.at_eof() {
            let fstart = self.span();
            let ty = self.parse_type();
            loop {
                let (fname, fspan) = self.expect_ident();
                let mut dims = Vec::new();
                while self.eat_punct(Punct::LBracket) {
                    let dim = self.parse_expr();
                    self.expect_punct(Punct::RBracket);
                    dims.push(dim);
                }
                fields.push(StructField {
                    name: fname,
                    ty: ty.clone(),
                    array_dims: dims,
                    span: fstart.to(fspan),
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi);
        }
        self.expect_punct(Punct::RBrace);
        let end = self.expect_punct(Punct::Semi);
        self.structs.insert(name.clone());
        Some(StructDef {
            name,
            fields,
            span: start.to(end),
        })
    }

    fn parse_function_rest(
        &mut self,
        name: String,
        ret: Type,
        is_static: bool,
        is_inline: bool,
        start: Span,
    ) -> Function {
        self.expect_punct(Punct::LParen);
        let mut params = Vec::new();
        let mut varargs = false;
        if !self.at_punct(Punct::RParen) {
            loop {
                if self.at_punct(Punct::Ellipsis) {
                    self.bump();
                    varargs = true;
                    break;
                }
                let pstart = self.span();
                // `void` alone means no parameters.
                if self.at_keyword(Keyword::Void)
                    && matches!(self.peek_ahead(1), TokenKind::Punct(Punct::RParen))
                {
                    self.bump();
                    break;
                }
                let mut ty = self.parse_type();
                let pname = if let TokenKind::Ident(n) = self.peek_kind() {
                    let n = n.clone();
                    self.bump();
                    Some(n)
                } else {
                    None
                };
                // Array parameters decay to pointers: `int a[]`, `int a[N]`.
                while self.eat_punct(Punct::LBracket) {
                    if !self.at_punct(Punct::RBracket) {
                        let _ = self.parse_expr();
                    }
                    self.expect_punct(Punct::RBracket);
                    ty.ptr.push(PtrLevel::default());
                }
                params.push(Param {
                    name: pname,
                    ty,
                    span: pstart,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen);

        let is_pure = ret.pure_qual;
        // The `pure` on a function declaration marks the *function*; the
        // return type itself is not pure-qualified.
        let mut ret = ret;
        ret.pure_qual = false;

        let (body, end) = if self.at_punct(Punct::LBrace) {
            let block = self.parse_block();
            let end = block.span;
            (Some(block), end)
        } else {
            let end = self.expect_punct(Punct::Semi);
            (None, end)
        };

        Function {
            name,
            is_pure,
            is_static,
            is_inline,
            ret,
            params,
            varargs,
            body,
            span: start.to(end),
        }
    }

    fn parse_declaration_rest(
        &mut self,
        first_ty: Type,
        first_name: String,
        start: Span,
        is_extern: bool,
        is_static: bool,
    ) -> Declaration {
        let mut storage = Vec::new();
        if is_extern {
            storage.push("extern".to_string());
        }
        if is_static {
            storage.push("static".to_string());
        }

        let mut declarators = Vec::new();
        let mut name = first_name;
        let mut ty = first_ty;
        let base_ty = {
            // Subsequent declarators share the base type but re-parse stars:
            // `int a, *b;`
            let mut t = ty.clone();
            t.ptr.clear();
            t
        };
        loop {
            let dstart = self.span();
            let mut dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                if self.at_punct(Punct::RBracket) {
                    // `int a[]` — unsized; record as 0 literal.
                    dims.push(Expr::int(0));
                } else {
                    dims.push(self.parse_assign_expr());
                }
                self.expect_punct(Punct::RBracket);
            }
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.parse_initializer())
            } else {
                None
            };
            declarators.push(Declarator {
                name,
                ty,
                array_dims: dims,
                init,
                span: dstart,
            });

            if !self.eat_punct(Punct::Comma) {
                break;
            }
            // Next declarator: fresh pointer stars on the shared base.
            let mut t = base_ty.clone();
            while self.eat_punct(Punct::Star) {
                let mut level = PtrLevel::default();
                while self.eat_keyword(Keyword::Const) {
                    level.is_const = true;
                }
                t.ptr.push(level);
            }
            let (n, _) = self.expect_ident();
            name = n;
            ty = t;
        }
        let end = self.expect_punct(Punct::Semi);
        Declaration {
            storage,
            declarators,
            span: start.to(end),
        }
    }

    /// Brace initializers are parsed into a synthetic `Call` to the marker
    /// `__initlist` so they survive printing; scalar initializers are plain
    /// expressions.
    fn parse_initializer(&mut self) -> Expr {
        if self.at_punct(Punct::LBrace) {
            let start = self.span();
            self.bump();
            let mut elems = Vec::new();
            if !self.at_punct(Punct::RBrace) {
                loop {
                    elems.push(self.parse_initializer());
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                    if self.at_punct(Punct::RBrace) {
                        break; // trailing comma
                    }
                }
            }
            let end = self.expect_punct(Punct::RBrace);
            Expr::new(
                ExprKind::Call {
                    callee: Box::new(Expr::ident("__initlist")),
                    args: elems,
                },
                start.to(end),
            )
        } else {
            self.parse_assign_expr()
        }
    }

    // -- statements ----------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let start = self.expect_punct(Punct::LBrace);
        let mut stmts = Vec::new();
        while !self.at_punct(Punct::RBrace) && !self.at_eof() {
            let before = self.pos;
            stmts.push(self.parse_stmt());
            if self.pos == before {
                self.bump();
            }
        }
        let end = self.expect_punct(Punct::RBrace);
        Block {
            stmts,
            span: start.to(end),
        }
    }

    fn parse_stmt(&mut self) -> Stmt {
        let start = self.span();
        // Pragma in statement position.
        if let TokenKind::Directive(d) = self.peek_kind() {
            let d = d.clone();
            self.bump();
            return Stmt::new(StmtKind::Pragma(d), start);
        }

        match self.peek_kind() {
            TokenKind::Punct(Punct::LBrace) => {
                let b = self.parse_block();
                let sp = b.span;
                Stmt::new(StmtKind::Block(b), sp)
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Stmt::new(StmtKind::Expr(None), start)
            }
            TokenKind::Keyword(Keyword::If) => self.parse_if(),
            TokenKind::Keyword(Keyword::While) => self.parse_while(),
            TokenKind::Keyword(Keyword::Do) => self.parse_do_while(),
            TokenKind::Keyword(Keyword::For) => self.parse_for(),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                let end = self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Return(value), start.to(end))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                let end = self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Break, start.to(end))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                let end = self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Continue, start.to(end))
            }
            _ if self.at_type_start() => {
                let decl = self.parse_local_declaration();
                let sp = decl.span;
                Stmt::new(StmtKind::Decl(decl), sp)
            }
            _ => {
                let e = self.parse_expr();
                let end = self.expect_punct(Punct::Semi);
                if self.diags.has_errors() && !self.at_punct(Punct::RBrace) {
                    // Avoid infinite loops on malformed statements.
                }
                Stmt::new(StmtKind::Expr(Some(e)), start.to(end))
            }
        }
    }

    fn parse_local_declaration(&mut self) -> Declaration {
        let start = self.span();
        let mut is_static = false;
        loop {
            if self.eat_keyword(Keyword::Static) {
                is_static = true;
            } else if self.eat_keyword(Keyword::Extern) || self.eat_keyword(Keyword::Register) {
                // accepted, not tracked individually
            } else {
                break;
            }
        }
        let ty = self.parse_type();
        let (name, _) = self.expect_ident();
        self.parse_declaration_rest(ty, name, start, false, is_static)
    }

    fn parse_if(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // if
        self.expect_punct(Punct::LParen);
        let cond = self.parse_expr();
        self.expect_punct(Punct::RParen);
        let then_branch = Box::new(self.parse_stmt());
        let (else_branch, end) = if self.eat_keyword(Keyword::Else) {
            let e = self.parse_stmt();
            let sp = e.span;
            (Some(Box::new(e)), sp)
        } else {
            (None, then_branch.span)
        };
        Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            start.to(end),
        )
    }

    fn parse_while(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // while
        self.expect_punct(Punct::LParen);
        let cond = self.parse_expr();
        self.expect_punct(Punct::RParen);
        let body = Box::new(self.parse_stmt());
        let end = body.span;
        Stmt::new(StmtKind::While { cond, body }, start.to(end))
    }

    fn parse_do_while(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // do
        let body = Box::new(self.parse_stmt());
        if !self.eat_keyword(Keyword::While) {
            let sp = self.span();
            self.diags
                .error(Code::ParseExpected, sp, "expected `while` after do-body");
        }
        self.expect_punct(Punct::LParen);
        let cond = self.parse_expr();
        self.expect_punct(Punct::RParen);
        let end = self.expect_punct(Punct::Semi);
        Stmt::new(StmtKind::DoWhile { body, cond }, start.to(end))
    }

    fn parse_for(&mut self) -> Stmt {
        let start = self.span();
        self.bump(); // for
        self.expect_punct(Punct::LParen);
        let init = if self.at_punct(Punct::Semi) {
            self.bump();
            ForInit::Expr(None)
        } else if self.at_type_start() {
            let decl = self.parse_local_declaration();
            ForInit::Decl(decl)
        } else {
            let e = self.parse_expr();
            self.expect_punct(Punct::Semi);
            ForInit::Expr(Some(e))
        };
        let cond = if self.at_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_expr())
        };
        self.expect_punct(Punct::Semi);
        let step = if self.at_punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_expr())
        };
        self.expect_punct(Punct::RParen);
        let body = Box::new(self.parse_stmt());
        let end = body.span;
        Stmt::new(
            StmtKind::For {
                init: Box::new(init),
                cond,
                step,
                body,
            },
            start.to(end),
        )
    }

    // -- expressions ---------------------------------------------------------

    pub fn parse_expr(&mut self) -> Expr {
        let first = self.parse_assign_expr();
        if self.at_punct(Punct::Comma) {
            let mut e = first;
            while self.eat_punct(Punct::Comma) {
                let rhs = self.parse_assign_expr();
                let sp = e.span.to(rhs.span);
                e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), sp);
            }
            e
        } else {
            first
        }
    }

    fn parse_assign_expr(&mut self) -> Expr {
        let lhs = self.parse_ternary();
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Eq) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusEq) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusEq) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarEq) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashEq) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentEq) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::ShlEq) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrEq) => Some(AssignOp::Shr),
            TokenKind::Punct(Punct::AmpEq) => Some(AssignOp::BitAnd),
            TokenKind::Punct(Punct::PipeEq) => Some(AssignOp::BitOr),
            TokenKind::Punct(Punct::CaretEq) => Some(AssignOp::BitXor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_assign_expr(); // right-associative
            let sp = lhs.span.to(rhs.span);
            Expr::new(ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)), sp)
        } else {
            lhs
        }
    }

    fn parse_ternary(&mut self) -> Expr {
        let cond = self.parse_binary(0);
        if self.eat_punct(Punct::Question) {
            let then_e = self.parse_expr();
            self.expect_punct(Punct::Colon);
            let else_e = self.parse_assign_expr();
            let sp = cond.span.to(else_e.span);
            Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(then_e), Box::new(else_e)),
                sp,
            )
        } else {
            cond
        }
    }

    fn peek_binop(&self) -> Option<BinOp> {
        Some(match self.peek_kind() {
            TokenKind::Punct(Punct::Plus) => BinOp::Add,
            TokenKind::Punct(Punct::Minus) => BinOp::Sub,
            TokenKind::Punct(Punct::Star) => BinOp::Mul,
            TokenKind::Punct(Punct::Slash) => BinOp::Div,
            TokenKind::Punct(Punct::Percent) => BinOp::Rem,
            TokenKind::Punct(Punct::Shl) => BinOp::Shl,
            TokenKind::Punct(Punct::Shr) => BinOp::Shr,
            TokenKind::Punct(Punct::Lt) => BinOp::Lt,
            TokenKind::Punct(Punct::Gt) => BinOp::Gt,
            TokenKind::Punct(Punct::Le) => BinOp::Le,
            TokenKind::Punct(Punct::Ge) => BinOp::Ge,
            TokenKind::Punct(Punct::EqEq) => BinOp::Eq,
            TokenKind::Punct(Punct::Ne) => BinOp::Ne,
            TokenKind::Punct(Punct::Amp) => BinOp::BitAnd,
            TokenKind::Punct(Punct::Caret) => BinOp::BitXor,
            TokenKind::Punct(Punct::Pipe) => BinOp::BitOr,
            TokenKind::Punct(Punct::AmpAmp) => BinOp::And,
            TokenKind::Punct(Punct::PipePipe) => BinOp::Or,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Expr {
        let mut lhs = self.parse_unary();
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1); // left-associative
            let sp = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), sp);
        }
        lhs
    }

    /// True when `( ... )` at the current position starts a cast rather than
    /// a parenthesised expression.
    fn at_cast(&self) -> bool {
        if !self.at_punct(Punct::LParen) {
            return false;
        }
        match self.peek_ahead(1) {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Pure
                    | Keyword::Const
                    | Keyword::Int
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Struct
            ),
            TokenKind::Ident(name) => self.typedefs.contains(name),
            _ => false,
        }
    }

    fn parse_unary(&mut self) -> Expr {
        let start = self.span();
        match self.peek_kind() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                self.parse_unary()
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Deref, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::AddrOf, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::PreInc, Box::new(e)), sp)
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::PreDec, Box::new(e)), sp)
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.at_cast() {
                    self.bump(); // (
                    let ty = self.parse_type();
                    let end = self.expect_punct(Punct::RParen);
                    Expr::new(ExprKind::SizeofType(ty), start.to(end))
                } else {
                    let e = self.parse_unary();
                    let sp = start.to(e.span);
                    Expr::new(ExprKind::SizeofExpr(Box::new(e)), sp)
                }
            }
            _ if self.at_cast() => {
                self.bump(); // (
                let ty = self.parse_type();
                self.expect_punct(Punct::RParen);
                let e = self.parse_unary();
                let sp = start.to(e.span);
                Expr::new(ExprKind::Cast(ty, Box::new(e)), sp)
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut e = self.parse_primary();
        loop {
            let start = e.span;
            match self.peek_kind() {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr());
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen);
                    e = Expr::new(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        start.to(end),
                    );
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr();
                    let end = self.expect_punct(Punct::RBracket);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), start.to(end));
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (member, msp) = self.expect_ident();
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            member,
                            arrow: false,
                        },
                        start.to(msp),
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (member, msp) = self.expect_ident();
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            member,
                            arrow: true,
                        },
                        start.to(msp),
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    let end = self.bump().span;
                    e = Expr::new(ExprKind::Unary(UnOp::PostInc, Box::new(e)), start.to(end));
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    let end = self.bump().span;
                    e = Expr::new(ExprKind::Unary(UnOp::PostDec, Box::new(e)), start.to(end));
                }
                _ => break,
            }
        }
        e
    }

    fn parse_primary(&mut self) -> Expr {
        let start = self.span();
        match self.peek_kind().clone() {
            TokenKind::IntLit { value, .. } => {
                self.bump();
                Expr::new(ExprKind::IntLit(value), start)
            }
            TokenKind::FloatLit { value, single } => {
                self.bump();
                Expr::new(ExprKind::FloatLit { value, single }, start)
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Expr::new(ExprKind::StrLit(s), start)
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Expr::new(ExprKind::CharLit(c), start)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Expr::new(ExprKind::Ident(name), start)
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr();
                let end = self.expect_punct(Punct::RParen);
                Expr::new(e.kind, start.to(end))
            }
            other => {
                self.diags.error(
                    Code::ParseExpected,
                    start,
                    format!("expected expression, found {}", other.describe()),
                );
                self.bump();
                Expr::new(ExprKind::IntLit(0), start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        let r = parse(src);
        assert!(
            !r.diags.has_errors(),
            "unexpected parse errors:\n{}",
            r.diags.render_all(src)
        );
        r.unit
    }

    #[test]
    fn parses_listing1_pure_declaration() {
        let unit = parse_ok("pure int* func(pure int* p1, int p2);");
        let f = unit.find_function("func").unwrap();
        assert!(f.is_pure);
        assert!(!f.is_definition());
        assert_eq!(f.ret.pointer_depth(), 1);
        assert_eq!(f.params.len(), 2);
        assert!(f.params[0].ty.pure_qual);
        assert!(!f.params[1].ty.pure_qual);
    }

    #[test]
    fn parses_function_definition_with_body() {
        let unit = parse_ok(
            "pure float dot(pure float* a, pure float* b, int size) {\n\
             float res = 0.0f;\n\
             for (int i = 0; i < size; ++i)\n\
                 res += a[i] * b[i];\n\
             return res;\n\
             }",
        );
        let f = unit.find_function("dot").unwrap();
        assert!(f.is_pure && f.is_definition());
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(body.stmts[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn parses_global_matrix_pointers() {
        let unit = parse_ok("float **A, **Bt, **C;");
        assert_eq!(unit.global_variables(), vec!["A", "Bt", "C"]);
        if let Item::Decl(d) = &unit.items[0] {
            for dec in &d.declarators {
                assert_eq!(dec.ty.pointer_depth(), 2);
            }
        } else {
            panic!("expected declaration");
        }
    }

    #[test]
    fn parses_pure_cast() {
        let unit = parse_ok(
            "int* globalPtr;\n\
             pure void f() { pure int* p; p = (pure int*)globalPtr; }",
        );
        let f = unit.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        if let StmtKind::Expr(Some(e)) = &body.stmts[1].kind {
            if let ExprKind::Assign(AssignOp::Assign, _, rhs) = &e.kind {
                if let ExprKind::Cast(ty, _) = &rhs.kind {
                    assert!(ty.pure_qual);
                    assert_eq!(ty.pointer_depth(), 1);
                    return;
                }
            }
        }
        panic!("expected pure cast assignment");
    }

    #[test]
    fn parses_malloc_with_sizeof() {
        let unit = parse_ok("void f() { int* c = (int*) malloc(3 * sizeof(int)); free(c); }");
        let f = unit.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        if let StmtKind::Decl(d) = &body.stmts[0].kind {
            let init = d.declarators[0].init.as_ref().unwrap();
            assert!(matches!(init.kind, ExprKind::Cast(..)));
        } else {
            panic!("expected declaration");
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = parse_expr_str("a + b * c").unwrap();
        if let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind {
            assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, ..)));
        } else {
            panic!("expected + at root, got {e:?}");
        }
    }

    #[test]
    fn precedence_relational_vs_logical() {
        let e = parse_expr_str("a < b && c >= d || e").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Or, ..)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr_str("a = b = 3").unwrap();
        if let ExprKind::Assign(AssignOp::Assign, _, rhs) = &e.kind {
            assert!(matches!(rhs.kind, ExprKind::Assign(AssignOp::Assign, ..)));
        } else {
            panic!("expected nested assignment");
        }
    }

    #[test]
    fn parses_ternary_and_comma() {
        let e = parse_expr_str("a ? b : c, d").unwrap();
        assert!(matches!(e.kind, ExprKind::Comma(..)));
    }

    #[test]
    fn parses_struct_definition_and_member_access() {
        let unit = parse_ok(
            "struct datatype { int storage; float vals[4]; };\n\
             void f(struct datatype* s) { s->storage = 3; }",
        );
        assert!(matches!(unit.items[0], Item::Struct(_)));
        let f = unit.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        if let StmtKind::Expr(Some(e)) = &body.stmts[0].kind {
            if let ExprKind::Assign(_, lhs, _) = &e.kind {
                assert!(matches!(lhs.kind, ExprKind::Member { arrow: true, .. }));
                return;
            }
        }
        panic!("expected member assignment");
    }

    #[test]
    fn parses_typedef_and_uses_it() {
        let unit = parse_ok("typedef float real;\nreal square(real x) { return x * x; }");
        let f = unit.find_function("square").unwrap();
        assert_eq!(f.ret.base, BaseType::Named("real".into()));
    }

    #[test]
    fn parses_pragmas_in_statement_position() {
        let unit = parse_ok(
            "void f() {\n#pragma scop\nfor (int i = 0; i < 10; i++) ;\n#pragma endscop\n}",
        );
        let f = unit.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        assert!(matches!(&body.stmts[0].kind, StmtKind::Pragma(p) if p == "pragma scop"));
        assert!(matches!(&body.stmts[2].kind, StmtKind::Pragma(p) if p == "pragma endscop"));
    }

    #[test]
    fn parses_array_declarations() {
        let unit = parse_ok("void f() { int array[100]; float grid[64][64]; array[0] = 1; }");
        let f = unit.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        if let StmtKind::Decl(d) = &body.stmts[1].kind {
            assert_eq!(d.declarators[0].array_dims.len(), 2);
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_main_with_argc_argv() {
        let unit = parse_ok("int main(int argc, char** argv) { return 0; }");
        let f = unit.find_function("main").unwrap();
        assert_eq!(f.params[1].ty.pointer_depth(), 2);
    }

    #[test]
    fn error_recovery_continues_after_bad_statement() {
        let r = parse("void f() { int x = ; x = 1; } int g() { return 2; }");
        assert!(r.diags.has_errors());
        assert!(r.unit.find_function("g").is_some());
    }

    #[test]
    fn unsigned_long_types() {
        let unit = parse_ok("unsigned int a; unsigned long b; long c; short d;");
        let tys: Vec<BaseType> = unit
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Decl(d) => Some(d.declarators[0].ty.base.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            tys,
            vec![
                BaseType::UInt,
                BaseType::ULong,
                BaseType::Long,
                BaseType::Short
            ]
        );
    }

    #[test]
    fn do_while_and_switch_free_subset() {
        let unit = parse_ok("void f() { int i = 0; do { i++; } while (i < 10); }");
        let f = unit.find_function("f").unwrap();
        assert!(matches!(
            f.body.as_ref().unwrap().stmts[1].kind,
            StmtKind::DoWhile { .. }
        ));
    }

    #[test]
    fn brace_initializers_survive() {
        let unit = parse_ok("void f() { int a[3] = {1, 2, 3}; }");
        let f = unit.find_function("f").unwrap();
        if let StmtKind::Decl(d) = &f.body.as_ref().unwrap().stmts[0].kind {
            let init = d.declarators[0].init.as_ref().unwrap();
            if let Some((name, args)) = init.as_direct_call() {
                assert_eq!(name, "__initlist");
                assert_eq!(args.len(), 3);
                return;
            }
        }
        panic!("expected init list");
    }
}
