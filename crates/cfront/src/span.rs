//! Byte-offset source spans and line/column resolution.
//!
//! Every token, statement and expression in the front end carries a [`Span`]
//! so that the purity verifier and the polyhedral extractor can point at the
//! exact source location when they reject a program.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn len(self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Slice `src` to the text this span covers. Returns `""` when the span
    /// is out of bounds (e.g. a dummy span on synthesized nodes).
    pub fn text(self, src: &str) -> &str {
        src.get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// 1-based line/column position resolved from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Precomputed newline table for O(log n) offset → line/column queries.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offsets at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl LineMap {
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// Resolve a byte offset to 1-based line/column. Offsets past the end of
    /// the buffer are clamped to the final position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the mapped buffer (a trailing newline does not
    /// start a new countable line unless followed by content).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_orders_endpoints() {
        let a = Span::new(4, 8);
        let b = Span::new(1, 6);
        assert_eq!(a.to(b), Span::new(1, 8));
        assert_eq!(b.to(a), Span::new(1, 8));
    }

    #[test]
    fn span_text_slices_source() {
        let src = "pure int f();";
        assert_eq!(Span::new(0, 4).text(src), "pure");
        assert_eq!(Span::new(5, 8).text(src), "int");
        assert_eq!(Span::new(100, 104).text(src), "");
    }

    #[test]
    fn line_map_resolves_positions() {
        let src = "int a;\nint b;\n  int c;";
        let map = LineMap::new(src);
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(4), LineCol { line: 1, col: 5 });
        assert_eq!(map.line_col(7), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(16), LineCol { line: 3, col: 3 });
        // Past-the-end offsets clamp instead of panicking.
        assert_eq!(map.line_col(10_000).line, 3);
    }

    #[test]
    fn line_map_counts_lines() {
        assert_eq!(LineMap::new("").line_count(), 1);
        assert_eq!(LineMap::new("a\nb").line_count(), 2);
        assert_eq!(LineMap::new("a\nb\n").line_count(), 3);
    }
}
