//! Diagnostics shared by the whole compiler chain.
//!
//! The paper's PC-CC stage *rejects* programs whose `pure` annotations cannot
//! be verified; those rejections are reported through [`Diagnostic`]s with the
//! offending span, mirroring a conventional compiler error stream.

use crate::span::{LineMap, Span};
use std::fmt;

/// Severity of a diagnostic. `Error` aborts the pipeline stage that raised
/// it; `Warning` and `Note` are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable machine-readable codes so tests can assert on *which* rule fired
/// rather than matching message prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    // Lexing / parsing.
    LexUnexpectedChar,
    LexUnterminated,
    ParseExpected,
    ParseUnexpectedEof,
    // Preprocessor.
    PpBadDirective,
    PpMissingInclude,
    PpUnbalancedConditional,
    PpMacroArity,
    // Purity verification (the paper's PC-CC rules, Sect. 3.2).
    PureCallsImpure,
    PureWritesExternal,
    PureAssignsExternalPtrWithoutCast,
    PureFreesForeign,
    PureGlobalWrite,
    PurePointerReassigned,
    PureUnknownCallee,
    PureParamWrittenInLoop,
    PureRecursionOk, // note-level: self recursion is allowed by the hashset rule
    // Polyhedral extraction.
    PolyNonAffine,
    PolyUnsupported,
    // Static race analysis of `omp parallel for` bodies (`purec check`).
    /// Non-reduction write to a shared scalar from a parallel body.
    RaceSharedWrite,
    /// Reduction-shaped update of a shared scalar (needs a reduction
    /// clause the runtime does not implement — verdict stays Unknown).
    RaceSharedReduction,
    /// Loop-carried dependence proven by the polyhedral dependence test.
    RaceLoopCarried,
    /// Independence could not be proven (non-affine access, impure call,
    /// unsupported shape) — the dynamic race check remains the backstop.
    RaceUnprovable,
    /// `omp parallel for` clause the runtime does not understand.
    OmpUnknownClause,
    /// `schedule(...)` kind the runtime silently degrades to static.
    OmpUnknownSchedule,
    // Purity inference (`purec check --infer-pure`).
    /// Unannotated function that passes the PC-CC rules as-is.
    PureInferrable,
    /// Unannotated function that fails the PC-CC rules (with the first
    /// blocking reason).
    PureInferenceBlocked,
    // Dataflow lints.
    /// Scalar local read before any prior write on the textual walk.
    LintUninitRead,
    /// Local never referenced after its declaration.
    LintUnusedVar,
    /// Local written but never read.
    LintDeadStore,
    // Driver.
    Io,
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// One reported problem: severity, stable code, message and source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub code: Code,
    pub message: String,
    pub span: Span,
}

impl Diagnostic {
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
        }
    }

    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
        }
    }

    pub fn note(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            code,
            message: message.into(),
            span,
        }
    }

    /// Render `error[PureCallsImpure] at 12:3: ...` using a line map.
    pub fn render(&self, map: &LineMap) -> String {
        let pos = map.line_col(self.span.start);
        format!(
            "{}[{}] at {}: {}",
            self.severity, self.code, pos, self.message
        )
    }
}

/// Accumulator used by every pass. Passes push diagnostics as they go and
/// callers decide whether errors are fatal.
#[derive(Debug, Default, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    pub fn error(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(code, span, message));
    }

    pub fn warning(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(code, span, message));
    }

    pub fn note(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::note(code, span, message));
    }

    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if any diagnostic carries the given code (any severity).
    pub fn has_code(&self, code: Code) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Render all diagnostics against `src`, one per line.
    pub fn render_all(&self, src: &str) -> String {
        let map = LineMap::new(src);
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(&map));
            out.push('\n');
        }
        out
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_detection_and_counts() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.warning(Code::PolyNonAffine, Span::DUMMY, "non-affine access");
        assert!(!ds.has_errors());
        ds.error(Code::PureGlobalWrite, Span::new(3, 8), "global write");
        assert!(ds.has_errors());
        assert_eq!(ds.error_count(), 1);
        assert!(ds.has_code(Code::PureGlobalWrite));
        assert!(!ds.has_code(Code::PureFreesForeign));
    }

    #[test]
    fn render_includes_position_and_code() {
        let src = "int a;\nfoo();\n";
        let mut ds = Diagnostics::new();
        ds.error(
            Code::PureCallsImpure,
            Span::new(7, 12),
            "call to impure function 'foo'",
        );
        let rendered = ds.render_all(src);
        assert!(
            rendered.contains("error[PureCallsImpure] at 2:1"),
            "{rendered}"
        );
    }
}
