//! # cfront — C front end for the `pure-c` compiler chain
//!
//! This crate replaces the AntLR-based front end used in the paper
//! *Pure Functions in C: A Small Keyword for Automatic Parallelization*
//! (Süß et al.). It provides:
//!
//! * a lexer and recursive-descent parser for the C11 subset used by the
//!   paper's listings and evaluation applications, extended with the
//!   **`pure`** keyword on functions, pointers and casts (Sect. 3.1);
//! * a typed AST with source spans on every node;
//! * a pretty-printer that re-emits C text (the chain is source-to-source);
//! * mutable visitors used by the later pipeline stages;
//! * a diagnostics framework with stable error codes, so the purity
//!   verifier's rejections (Listings 2, 4, 5) are machine-checkable.
//!
//! ```
//! use cfront::parser::parse;
//!
//! let result = parse("pure int* func(pure int* p1, int p2);");
//! assert!(!result.diags.has_errors());
//! let f = result.unit.find_function("func").unwrap();
//! assert!(f.is_pure);
//! ```

pub mod ast;
pub mod diag;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    AssignOp, BaseType, BinOp, Block, Declaration, Declarator, Expr, ExprKind, ForInit, Function,
    Item, Param, PtrLevel, Stmt, StmtKind, StructDef, StructField, TranslationUnit, Type, Typedef,
    UnOp,
};
pub use diag::{Code, Diagnostic, Diagnostics, Severity};
pub use intern::{Interner, Symbol};
pub use parser::{parse, parse_expr_str, ParseResult};
pub use printer::{print_expr, print_stmt, print_unit};
pub use span::{LineCol, LineMap, Span};
