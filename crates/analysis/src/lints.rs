//! Dataflow lints: definite-assignment, unused-variable and dead-store.
//!
//! All three share one event stream: a pre-order walk of the function
//! body that emits `Read` / `Write` / `AddrOf` events per scalar name in
//! approximate evaluation order (assignment RHS before LHS, `for` init
//! before cond before body before step, `do`-body before its cond).
//!
//! The walk is straight-line — it does not join branches — so the lints
//! restrict themselves to facts that are true on *every* path:
//!
//! - [`Code::LintUnusedVar`] — the name produces no events at all.
//! - [`Code::LintDeadStore`] — only `Write` events, never a `Read`.
//! - [`Code::LintUninitRead`] — declared without an initializer and the
//!   *first* event is a `Read`: whatever path reaches that read, no
//!   textually-earlier write exists, so the read is uninitialized.
//!
//! Anything the walk cannot be sure about is skipped outright: names
//! declared more than once (shadowing), parameters, globals, arrays,
//! and anything address-taken (`&x` may initialize or read through the
//! pointer).

use cfront::ast::*;
use cfront::diag::{Code, Diagnostics};
use cfront::span::Span;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Read(Span),
    Write(Span),
    AddrOf,
}

/// Lint one function definition against `unit` (for the global names).
pub fn lint_function(f: &Function, unit: &TranslationUnit, diags: &mut Diagnostics) {
    let body = match &f.body {
        Some(b) => b,
        None => return,
    };

    let globals: HashSet<&str> = unit.global_variables().into_iter().collect();
    let params: HashSet<&str> = f.params.iter().filter_map(|p| p.name.as_deref()).collect();

    // Candidate locals: scalar (non-array) names declared exactly once.
    let mut decl_count: HashMap<&str, usize> = HashMap::new();
    let mut decls: Vec<(&Declarator, Span)> = Vec::new();
    for s in &body.stmts {
        collect_decls(s, &mut decl_count, &mut decls);
    }
    let candidates: HashMap<&str, &Declarator> = decls
        .iter()
        .filter(|(d, _)| {
            !d.is_array()
                && decl_count.get(d.name.as_str()) == Some(&1)
                && !globals.contains(d.name.as_str())
                && !params.contains(d.name.as_str())
        })
        .map(|(d, _)| (d.name.as_str(), *d))
        .collect();
    if candidates.is_empty() {
        return;
    }

    let mut events: Vec<(String, Event)> = Vec::new();
    for s in &body.stmts {
        stmt_events(s, &mut events);
    }

    let mut by_name: HashMap<&str, Vec<Event>> = HashMap::new();
    for (name, ev) in &events {
        if candidates.contains_key(name.as_str()) {
            by_name.entry(name.as_str()).or_default().push(*ev);
        }
    }

    let mut names: Vec<&str> = candidates.keys().copied().collect();
    names.sort_by_key(|n| candidates[n].span.start);
    for name in names {
        let d = candidates[name];
        let evs = by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
        if evs.iter().any(|e| matches!(e, Event::AddrOf)) {
            continue;
        }
        // Events emitted by the declarator's own initializer count as the
        // initial write; `collect_decls`/`stmt_events` keep that ordering.
        if evs.is_empty() {
            diags.warning(
                Code::LintUnusedVar,
                d.span,
                format!("unused variable '{name}'"),
            );
            continue;
        }
        if !evs.iter().any(|e| matches!(e, Event::Read(_))) {
            let span = evs
                .iter()
                .find_map(|e| match e {
                    Event::Write(s) => Some(*s),
                    _ => None,
                })
                .unwrap_or(d.span);
            diags.warning(
                Code::LintDeadStore,
                span,
                format!("value stored to '{name}' is never read"),
            );
            continue;
        }
        if d.init.is_none() {
            if let Some(Event::Read(span)) = evs.first() {
                diags.warning(
                    Code::LintUninitRead,
                    *span,
                    format!("variable '{name}' is read before it is assigned"),
                );
            }
        }
    }
}

fn collect_decls<'a>(
    s: &'a Stmt,
    count: &mut HashMap<&'a str, usize>,
    decls: &mut Vec<(&'a Declarator, Span)>,
) {
    s.walk(&mut |s| {
        let d = match &s.kind {
            StmtKind::Decl(d) => d,
            StmtKind::For { init, .. } => match init.as_ref() {
                ForInit::Decl(d) => d,
                _ => return,
            },
            _ => return,
        };
        for dec in &d.declarators {
            *count.entry(dec.name.as_str()).or_insert(0) += 1;
            decls.push((dec, s.span));
        }
    });
}

// ---------------------------------------------------------------------------
// Event stream
// ---------------------------------------------------------------------------

fn stmt_events(s: &Stmt, out: &mut Vec<(String, Event)>) {
    match &s.kind {
        StmtKind::Decl(d) => decl_events(d, out),
        StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => expr_events(e, out),
        StmtKind::Block(b) => {
            for s in &b.stmts {
                stmt_events(s, out);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_events(cond, out);
            stmt_events(then_branch, out);
            if let Some(e) = else_branch {
                stmt_events(e, out);
            }
        }
        StmtKind::While { cond, body } => {
            expr_events(cond, out);
            stmt_events(body, out);
        }
        StmtKind::DoWhile { body, cond } => {
            stmt_events(body, out);
            expr_events(cond, out);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            match init.as_ref() {
                ForInit::Decl(d) => decl_events(d, out),
                ForInit::Expr(Some(e)) => expr_events(e, out),
                ForInit::Expr(None) => {}
            }
            if let Some(c) = cond {
                expr_events(c, out);
            }
            stmt_events(body, out);
            if let Some(st) = step {
                expr_events(st, out);
            }
        }
        _ => {}
    }
}

fn decl_events(d: &Declaration, out: &mut Vec<(String, Event)>) {
    for dec in &d.declarators {
        for dim in &dec.array_dims {
            expr_events(dim, out);
        }
        if let Some(init) = &dec.init {
            expr_events(init, out);
            out.push((dec.name.clone(), Event::Write(dec.span)));
        }
    }
}

fn expr_events(e: &Expr, out: &mut Vec<(String, Event)>) {
    match &e.kind {
        ExprKind::Ident(n) => out.push((n.clone(), Event::Read(e.span))),
        ExprKind::Assign(op, lhs, rhs) => {
            expr_events(rhs, out);
            match (&lhs.kind, op) {
                (ExprKind::Ident(n), AssignOp::Assign) => {
                    out.push((n.clone(), Event::Write(e.span)));
                }
                (ExprKind::Ident(n), _) => {
                    // Compound assignment reads the old value first.
                    out.push((n.clone(), Event::Read(lhs.span)));
                    out.push((n.clone(), Event::Write(e.span)));
                }
                _ => expr_events(lhs, out),
            }
        }
        ExprKind::Unary(op, inner) if op.writes_operand() => match &inner.kind {
            ExprKind::Ident(n) => {
                out.push((n.clone(), Event::Read(inner.span)));
                out.push((n.clone(), Event::Write(e.span)));
            }
            _ => expr_events(inner, out),
        },
        ExprKind::Unary(UnOp::AddrOf, inner) => {
            if let Some(root) = inner.lvalue_root() {
                out.push((root.to_string(), Event::AddrOf));
            }
            if !matches!(inner.kind, ExprKind::Ident(_)) {
                expr_events(inner, out);
            }
        }
        ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
            expr_events(inner, out);
        }
        ExprKind::Binary(_, l, r) | ExprKind::Comma(l, r) | ExprKind::Index(l, r) => {
            expr_events(l, out);
            expr_events(r, out);
        }
        ExprKind::Ternary(c, t, f) => {
            expr_events(c, out);
            expr_events(t, out);
            expr_events(f, out);
        }
        ExprKind::Call { callee, args } => {
            // The callee name is a function, not a local — skip the ident.
            if !matches!(callee.kind, ExprKind::Ident(_)) {
                expr_events(callee, out);
            }
            for a in args {
                expr_events(a, out);
            }
        }
        ExprKind::Member { base, .. } => expr_events(base, out),
        _ => {}
    }
}
