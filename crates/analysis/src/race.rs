//! Static race detection for `#pragma omp parallel for` loops.
//!
//! Mirrors the interpreter's pragma/loop pairing exactly (a pragma that
//! parses as `omp parallel for`, optionally followed by more pragmas,
//! then a `for` statement), so every loop the engines would run in
//! parallel gets a verdict, keyed by the `for` statement's span.
//!
//! Per loop, the analysis is a two-tier ladder:
//!
//! 1. **Scalar screening** — every write in the body is classified by
//!    its lvalue root. Roots that are iteration-private (the nest's
//!    iterators, `private(...)` clause entries, body-declared locals)
//!    are fine. A shared scalar updated in reduction shape
//!    (`x += e`, `x = x op e`, `x++`) degrades the verdict to
//!    `Unknown` with a [`Code::RaceSharedReduction`] warning (the
//!    dynamic check still guards it); any other shared scalar write is
//!    a definite race ([`Code::RaceSharedWrite`], verdict `Racy`) with
//!    a fix-it suggesting a `private(...)` clause.
//! 2. **Memory writes** (through pointers/subscripts) go to the
//!    polyhedral dependence test. That test assumes distinct base names
//!    never alias and cannot see through calls, so two screens guard it
//!    (paper Listing 6 is the counterexample for both):
//!    a name assigned from another pointer's value (`int* q = a;`)
//!    aliases it, and a verified-pure callee — while unable to *write*
//!    caller state — may still *read* its pointer arguments, a flow
//!    dependence against the loop's writes. Any pure-call argument base
//!    that equals or aliases a written base, or any aliasing pair of
//!    distinct accessed bases with one side written, degrades the
//!    verdict to `Unknown` ([`Code::RaceUnprovable`]) and leaves the
//!    dynamic check on. Past the screens, calls to verified-pure
//!    functions are substituted by fresh placeholder reads, then
//!    [`polyhedral::extract_scop`] + [`polyhedral::deps::analyze`] +
//!    [`polyhedral::parallel_levels`] decide. A dependence carried at
//!    the parallel level is a definite race
//!    ([`Code::RaceLoopCarried`]); a non-affine nest degrades to
//!    `Unknown` ([`Code::RaceUnprovable`]).
//!
//! The ladder only ever *downgrades*: `Independent` → `Unknown` →
//! `Racy`, so one definite race wins over any number of unknowns.

use crate::{AnalysisReport, LoopReport, LoopVerdict};
use cfront::ast::*;
use cfront::diag::Code;
use cfront::span::Span;
use machine::{parse_omp_parallel_for_clauses, OmpClauses};
use purec_core::PureSet;
use std::collections::{HashMap, HashSet};

/// Walk one function body, pairing omp pragmas with their loops the same
/// way the interpreter's lowering does, and recursing everywhere else.
/// Alias groups are computed once from the whole body so a `int* q = a;`
/// at function scope is visible inside every nested loop.
pub fn analyze_block(b: &Block, pure_set: &PureSet, report: &mut AnalysisReport) {
    let aliases = collect_alias_groups(b);
    analyze_block_with(b, pure_set, &aliases, report);
}

fn analyze_block_with(
    b: &Block,
    pure_set: &PureSet,
    aliases: &AliasGroups,
    report: &mut AnalysisReport,
) {
    let mut i = 0;
    while i < b.stmts.len() {
        if let StmtKind::Pragma(p) = &b.stmts[i].kind {
            if let Some(clauses) = parse_omp_parallel_for_clauses(p) {
                let pragma_span = b.stmts[i].span;
                let mut j = i + 1;
                while j < b.stmts.len() && matches!(&b.stmts[j].kind, StmtKind::Pragma(_)) {
                    j += 1;
                }
                if j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::For { .. }) {
                    analyze_omp_loop(
                        pragma_span,
                        &clauses,
                        &b.stmts[j],
                        pure_set,
                        aliases,
                        report,
                    );
                    recurse(&b.stmts[j], pure_set, aliases, report);
                    i = j + 1;
                    continue;
                }
            }
        }
        recurse(&b.stmts[i], pure_set, aliases, report);
        i += 1;
    }
}

fn recurse(s: &Stmt, pure_set: &PureSet, aliases: &AliasGroups, report: &mut AnalysisReport) {
    match &s.kind {
        StmtKind::Block(b) => analyze_block_with(b, pure_set, aliases, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            recurse(then_branch, pure_set, aliases, report);
            if let Some(e) = else_branch {
                recurse(e, pure_set, aliases, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => recurse(body, pure_set, aliases, report),
        _ => {}
    }
}

fn analyze_omp_loop(
    pragma_span: Span,
    clauses: &OmpClauses,
    for_stmt: &Stmt,
    pure_set: &PureSet,
    aliases: &AliasGroups,
    report: &mut AnalysisReport,
) {
    // Clause hygiene: the runtime silently ignores what it does not
    // understand, so surface that here.
    for c in &clauses.unknown_clauses {
        report.diags.warning(
            Code::OmpUnknownClause,
            pragma_span,
            format!("unrecognized OpenMP clause '{c}' is ignored by the runtime"),
        );
    }
    if let Some(k) = &clauses.unknown_schedule {
        report.diags.warning(
            Code::OmpUnknownSchedule,
            pragma_span,
            format!("unknown schedule kind '{k}' degrades to schedule(static)"),
        );
    }

    // Undo hoisted row-pointer copies so the screens and the dependence
    // test see the original subscript streams (`p[j]` → `base[i][j]`).
    let resolved = resolve_pointer_copies(for_stmt);
    let for_stmt = resolved.as_ref().unwrap_or(for_stmt);

    let mut verdict = LoopVerdict::Independent;
    let downgrade = |v: &mut LoopVerdict, to: LoopVerdict| {
        if (to == LoopVerdict::Racy)
            || (to == LoopVerdict::Unknown && *v == LoopVerdict::Independent)
        {
            *v = to;
        }
    };

    // Iteration-private names: clause list + every iterator assigned by a
    // `for` init in the nest + everything declared inside the body.
    let mut privates: HashSet<String> = clauses.privates.iter().cloned().collect();
    collect_nest_iterators(for_stmt, &mut privates);
    collect_body_decls(for_stmt, &mut privates);

    let body = match &for_stmt.kind {
        StmtKind::For { body, .. } => body.as_ref(),
        _ => return,
    };

    // Tier 1: scalar screening + call screening over the body.
    let mut reduction_names: HashSet<String> = HashSet::new();
    let mut memory_writes = false;
    let mut scalar_events: Vec<(String, Span, bool)> = Vec::new(); // (name, span, reduction_shaped)
    body.walk_exprs(&mut |e| match &e.kind {
        ExprKind::Assign(op, lhs, rhs) => {
            if lhs.writes_through_pointer() {
                memory_writes = true;
            } else if let Some(name) = lhs.as_ident() {
                if !privates.contains(name) {
                    let red = *op != AssignOp::Assign || rhs_is_reduction(name, rhs);
                    scalar_events.push((name.to_string(), e.span, red));
                }
            }
        }
        ExprKind::Unary(op, inner) if op.writes_operand() => {
            if inner.writes_through_pointer() {
                memory_writes = true;
            } else if let Some(name) = inner.as_ident() {
                if !privates.contains(name) {
                    // `x++` is `x = x + 1`: reduction-shaped.
                    scalar_events.push((name.to_string(), e.span, true));
                }
            }
        }
        _ => {}
    });

    let mut reported: HashSet<(String, bool)> = HashSet::new();
    for (name, span, red) in scalar_events {
        if !reported.insert((name.clone(), red)) {
            continue;
        }
        if red {
            report.diags.warning(
                Code::RaceSharedReduction,
                span,
                format!(
                    "shared scalar '{name}' is updated as a reduction across iterations; \
                     the transform does not privatize reductions, so the dynamic race \
                     check stays on for this loop"
                ),
            );
            reduction_names.insert(name);
            downgrade(&mut verdict, LoopVerdict::Unknown);
        } else {
            report.diags.error(
                Code::RaceSharedWrite,
                span,
                format!(
                    "data race: scalar '{name}' is shared across iterations but written \
                     inside the parallel loop; add it to a private({name}) clause or \
                     declare it inside the loop body"
                ),
            );
            downgrade(&mut verdict, LoopVerdict::Racy);
        }
    }

    // Calls to anything not verified pure poison the analysis (the paper's
    // point: without `pure`, a call makes the loop non-analyzable).
    let mut impure_calls: Vec<(String, Span)> = Vec::new();
    body.walk_exprs(&mut |e| {
        if let Some((callee, _)) = e.as_direct_call() {
            if !pure_set.contains(callee) {
                impure_calls.push((callee.to_string(), e.span));
            }
        }
    });
    let mut seen_callees = HashSet::new();
    for (callee, span) in impure_calls {
        if seen_callees.insert(callee.clone()) {
            report.diags.warning(
                Code::RaceUnprovable,
                span,
                format!(
                    "cannot prove independence: call to '{callee}' is not verified pure; \
                     falling back to the dynamic race check"
                ),
            );
        }
        downgrade(&mut verdict, LoopVerdict::Unknown);
    }

    // Alias & pure-call-read screens (paper Listing 6): the dependence
    // test treats distinct base names as disjoint and never sees what a
    // callee dereferences, so both holes must be closed *before* it can
    // be trusted. Conservative by construction — these only downgrade to
    // `Unknown`, handing the loop back to the dynamic check.
    if memory_writes && verdict != LoopVerdict::Racy {
        let mut written: HashSet<String> = HashSet::new();
        let mut accessed: HashSet<String> = HashSet::new();
        body.walk_exprs(&mut |e| match &e.kind {
            ExprKind::Assign(_, lhs, _) if lhs.writes_through_pointer() => {
                pointer_value_bases(lhs, &mut written);
            }
            ExprKind::Unary(op, inner) if op.writes_operand() && inner.writes_through_pointer() => {
                pointer_value_bases(inner, &mut written);
            }
            ExprKind::Index(base, _) => {
                pointer_value_bases(base, &mut accessed);
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                pointer_value_bases(inner, &mut accessed);
            }
            _ => {}
        });
        accessed.extend(written.iter().cloned());

        // Screen A: a verified-pure callee may *read* any memory its
        // pointer arguments reach; if an argument base is (or aliases) a
        // base the loop writes, that read is a flow dependence the
        // substituted placeholder erases.
        let mut flagged: HashSet<(String, String)> = HashSet::new();
        body.walk_exprs(&mut |e| {
            if let Some((callee, args)) = e.as_direct_call() {
                if pure_set.contains(callee) {
                    let mut arg_idents: HashSet<String> = HashSet::new();
                    for a in args {
                        a.walk(&mut |sub| {
                            if let ExprKind::Ident(n) = &sub.kind {
                                arg_idents.insert(n.clone());
                            }
                        });
                    }
                    for b in &arg_idents {
                        for w in &written {
                            if aliases.may_alias(b, w)
                                && flagged.insert((callee.to_string(), b.clone()))
                            {
                                report.diags.warning(
                                    Code::RaceUnprovable,
                                    e.span,
                                    format!(
                                        "cannot prove independence: pure call '{callee}' may \
                                         read memory written by the loop through '{b}'{}; the \
                                         callee's subscripts are invisible to the dependence \
                                         test, falling back to the dynamic race check",
                                        if b == w {
                                            String::new()
                                        } else {
                                            format!(" (aliases '{w}')")
                                        }
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        });
        if !flagged.is_empty() {
            downgrade(&mut verdict, LoopVerdict::Unknown);
        }

        // Screen B: two distinct base names that may hold the same
        // pointer value (`int* q = a;`) defeat the per-name dependence
        // test whenever one of them is written.
        let mut pair_flagged: HashSet<(String, String)> = HashSet::new();
        for w in &written {
            for o in &accessed {
                if w != o && aliases.may_alias(w, o) {
                    let key = if w < o {
                        (w.clone(), o.clone())
                    } else {
                        (o.clone(), w.clone())
                    };
                    if pair_flagged.insert(key) {
                        report.diags.warning(
                            Code::RaceUnprovable,
                            for_stmt.span,
                            format!(
                                "cannot prove independence: '{w}' and '{o}' may alias (one \
                                 was assigned from the other's value), defeating the \
                                 per-name dependence test; falling back to the dynamic \
                                 race check"
                            ),
                        );
                    }
                    downgrade(&mut verdict, LoopVerdict::Unknown);
                }
            }
        }
    }

    // Tier 2: memory writes need the dependence test.
    if memory_writes && verdict != LoopVerdict::Racy {
        let mut probe = for_stmt.clone();
        let mut counter = 0usize;
        subst_pure_calls_stmt(&mut probe, pure_set, &mut counter);
        match polyhedral::extract_scop(&probe) {
            Ok(scop) => {
                let deps = polyhedral::analyze(&scop);
                let levels = polyhedral::parallel_levels(&scop, &deps);
                if !levels.first().copied().unwrap_or(false) {
                    let mut blocking = false;
                    let mut named: HashSet<&str> = HashSet::new();
                    for d in &deps {
                        if d.level == Some(0)
                            && !reduction_names.contains(&d.array)
                            && !privates.contains(&d.array)
                        {
                            blocking = true;
                            if named.insert(d.array.as_str()) {
                                report.diags.error(
                                    Code::RaceLoopCarried,
                                    for_stmt.span,
                                    format!(
                                        "data race: loop-carried {} dependence on '{}' \
                                         (distance {}) — iterations are not independent",
                                        d.kind,
                                        d.array,
                                        d.dist.first().map(|b| b.to_string()).unwrap_or_default()
                                    ),
                                );
                            }
                        }
                    }
                    if blocking {
                        downgrade(&mut verdict, LoopVerdict::Racy);
                    } else {
                        downgrade(&mut verdict, LoopVerdict::Unknown);
                    }
                }
            }
            Err(why) => {
                let detail = why
                    .items()
                    .first()
                    .map(|d| d.message.clone())
                    .unwrap_or_else(|| "not a static control part".into());
                report.diags.warning(
                    Code::RaceUnprovable,
                    for_stmt.span,
                    format!(
                        "cannot prove independence: {detail}; falling back to the \
                         dynamic race check"
                    ),
                );
                downgrade(&mut verdict, LoopVerdict::Unknown);
            }
        }
    }

    report.loops.push(LoopReport {
        span: for_stmt.span,
        verdict,
    });
}

/// `x = x op e` / `x = e op x` with an arithmetic/bitwise `op`.
fn rhs_is_reduction(name: &str, rhs: &Expr) -> bool {
    match &rhs.kind {
        ExprKind::Binary(op, l, r) => {
            matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
            ) && (l.as_ident() == Some(name) || r.as_ident() == Some(name))
        }
        _ => false,
    }
}

/// Every iterator assigned/declared by a `for` init anywhere in the nest
/// (covers inner loops whose iterators are declared at function scope).
fn collect_nest_iterators(s: &Stmt, out: &mut HashSet<String>) {
    s.walk(&mut |s| {
        if let StmtKind::For { init, .. } = &s.kind {
            match init.as_ref() {
                ForInit::Decl(d) => {
                    for dec in &d.declarators {
                        out.insert(dec.name.clone());
                    }
                }
                ForInit::Expr(Some(e)) => {
                    if let ExprKind::Assign(AssignOp::Assign, lhs, _) = &e.kind {
                        if let Some(n) = lhs.as_ident() {
                            out.insert(n.to_string());
                        }
                    }
                }
                ForInit::Expr(None) => {}
            }
        }
    });
}

/// Every name declared inside the loop (body-local ⇒ iteration-private).
fn collect_body_decls(s: &Stmt, out: &mut HashSet<String>) {
    s.walk(&mut |s| {
        if let StmtKind::Decl(d) = &s.kind {
            for dec in &d.declarators {
                out.insert(dec.name.clone());
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Row-pointer copy propagation: substitute single-assignment pointer
// locals (`T* p = base[i];`) back into their uses before analysis. The
// polyhedral stage hoists exactly this shape out of inner loops; without
// the substitution the per-name dependence test loses the subscript
// stream behind `p` and the alias screen flags `p` against its own base,
// demoting nests that were provably independent before the hoist.
// ---------------------------------------------------------------------------

/// `base[e1][e2]…` chains over a plain identifier, with side-effect-free
/// subscripts — the only initializer shape whose value can be re-derived
/// at every use site.
fn stable_lvalue_path(e: &Expr, subscript_ids: &mut HashSet<String>) -> Option<String> {
    match &e.kind {
        ExprKind::Ident(n) => Some(n.clone()),
        ExprKind::Index(base, sub) => {
            if !side_effect_free(sub) {
                return None;
            }
            sub.walk(&mut |s| {
                if let ExprKind::Ident(n) = &s.kind {
                    subscript_ids.insert(n.clone());
                }
            });
            stable_lvalue_path(base, subscript_ids)
        }
        _ => None,
    }
}

fn side_effect_free(e: &Expr) -> bool {
    let mut ok = true;
    e.walk(&mut |s| match &s.kind {
        ExprKind::Call { .. } | ExprKind::Assign(..) => ok = false,
        ExprKind::Unary(op, _) if op.writes_operand() => ok = false,
        _ => {}
    });
    ok
}

/// Writes inside the loop, split by what they can invalidate. A for
/// header's update of its *own* declared iterator is iteration structure,
/// not a body write — the copies under it re-execute each iteration.
#[derive(Default)]
struct LoopWrites {
    /// Names assigned / inc-dec'd / address-taken directly.
    direct: HashSet<String>,
    /// Bases stored through exactly one subscript (`X[e] = …` moves a
    /// row; `X[a][b] = …` does not).
    row: HashSet<String>,
}

fn collect_loop_writes(s: &Stmt, out: &mut LoopWrites) {
    let record = |e: &Expr, out: &mut LoopWrites, skip: Option<&str>| {
        e.walk(&mut |w| {
            let target = match &w.kind {
                ExprKind::Assign(_, lhs, _) => Some(&**lhs),
                ExprKind::Unary(op, inner) if op.writes_operand() => Some(&**inner),
                ExprKind::Unary(UnOp::AddrOf, inner) => {
                    // Escaped addresses defeat the value-tracking
                    // entirely: root through every subscript level.
                    let mut bases = HashSet::new();
                    pointer_value_bases(inner, &mut bases);
                    for b in bases {
                        out.direct.insert(b.clone());
                        out.row.insert(b);
                    }
                    None
                }
                _ => None,
            };
            if let Some(t) = target {
                match &t.kind {
                    ExprKind::Ident(n) if Some(n.as_str()) != skip => {
                        out.direct.insert(n.clone());
                    }
                    ExprKind::Index(b, _) => {
                        if let ExprKind::Ident(n) = &b.kind {
                            out.row.insert(n.clone());
                        }
                    }
                    _ => {}
                }
            }
        });
    };
    match &s.kind {
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let own = match init.as_ref() {
                ForInit::Decl(d) => d.declarators.first().map(|d| d.name.as_str()),
                _ => None,
            };
            if let ForInit::Expr(Some(e)) = init.as_ref() {
                record(e, out, None);
            }
            if let Some(c) = cond {
                record(c, out, own);
            }
            if let Some(st) = step {
                record(st, out, own);
            }
            collect_loop_writes(body, out);
        }
        StmtKind::Block(b) => {
            for s in &b.stmts {
                collect_loop_writes(s, out);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            record(cond, out, None);
            collect_loop_writes(then_branch, out);
            if let Some(e) = else_branch {
                collect_loop_writes(e, out);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { cond, body } => {
            record(cond, out, None);
            collect_loop_writes(body, out);
        }
        StmtKind::Decl(d) => {
            for dec in &d.declarators {
                if let Some(init) = &dec.init {
                    record(init, out, None);
                }
            }
        }
        StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => record(e, out, None),
        _ => {}
    }
}

struct PointerCopy {
    name: String,
    init: Expr,
    /// Nest iterators in scope at the declaration point.
    scope: HashSet<String>,
}

fn collect_pointer_copies(s: &Stmt, scope: &mut Vec<String>, out: &mut Vec<PointerCopy>) {
    match &s.kind {
        StmtKind::Decl(d) => {
            // Single-declarator statements only: removal stays trivial.
            if let [dec] = d.declarators.as_slice() {
                if !dec.ty.ptr.is_empty() && dec.array_dims.is_empty() {
                    if let Some(init) = &dec.init {
                        let mut subs = HashSet::new();
                        if stable_lvalue_path(init, &mut subs).is_some() {
                            out.push(PointerCopy {
                                name: dec.name.clone(),
                                init: init.clone(),
                                scope: scope.iter().cloned().collect(),
                            });
                        }
                    }
                }
            }
        }
        StmtKind::For { init, body, .. } => {
            let mut pushed = 0;
            if let ForInit::Decl(d) = init.as_ref() {
                for dec in &d.declarators {
                    scope.push(dec.name.clone());
                    pushed += 1;
                }
            }
            collect_pointer_copies(body, scope, out);
            scope.truncate(scope.len() - pushed);
        }
        StmtKind::Block(b) => {
            for s in &b.stmts {
                collect_pointer_copies(s, scope, out);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_pointer_copies(then_branch, scope, out);
            if let Some(e) = else_branch {
                collect_pointer_copies(e, scope, out);
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            collect_pointer_copies(body, scope, out);
        }
        _ => {}
    }
}

/// Substitute every sound pointer copy back into its uses and drop the
/// declarations, returning the rewritten loop — or `None` when the loop
/// holds no such copy (the common case; avoids the clone).
fn resolve_pointer_copies(for_stmt: &Stmt) -> Option<Stmt> {
    let mut cands = Vec::new();
    collect_pointer_copies(for_stmt, &mut Vec::new(), &mut cands);
    if cands.is_empty() {
        return None;
    }
    let mut writes = LoopWrites::default();
    collect_loop_writes(for_stmt, &mut writes);
    let mut all_iters: HashSet<String> = HashSet::new();
    for_stmt.walk(&mut |s| {
        if let StmtKind::For { init, .. } = &s.kind {
            if let ForInit::Decl(d) = init.as_ref() {
                for dec in &d.declarators {
                    all_iters.insert(dec.name.clone());
                }
            }
        }
    });
    let cand_names: HashSet<String> = cands.iter().map(|c| c.name.clone()).collect();
    let sound: Vec<&PointerCopy> = cands
        .iter()
        .filter(|c| {
            let mut subs = HashSet::new();
            let base = stable_lvalue_path(&c.init, &mut subs).expect("pre-screened");
            // The copy itself must stay single-assignment, its base's
            // rows must not move, its subscripts must be stable between
            // declaration and use (an iterator qualifies only when the
            // copy lives inside that iterator's loop), and chains of
            // copies are left alone.
            !writes.direct.contains(&c.name)
                && !writes.direct.contains(&base)
                && !writes.row.contains(&base)
                && !cand_names.contains(&base)
                && subs.iter().all(|id| {
                    !writes.direct.contains(id)
                        && (!all_iters.contains(id) || c.scope.contains(id))
                        && !cand_names.contains(id)
                })
        })
        .collect();
    if sound.is_empty() {
        return None;
    }
    let mut resolved = for_stmt.clone();
    for c in &sound {
        cfront::visit::visit_exprs_mut(&mut resolved, &mut |e| {
            if matches!(&e.kind, ExprKind::Ident(n) if *n == c.name) {
                let span = e.span;
                *e = c.init.clone();
                // keep original use-site spans for diagnostics
                fn respan(e: &mut Expr, span: Span) {
                    e.span = span;
                    if let ExprKind::Index(b, s) = &mut e.kind {
                        respan(b, span);
                        respan(s, span);
                    }
                }
                respan(e, span);
            }
        });
    }
    let resolved_names: HashSet<&str> = sound.iter().map(|c| c.name.as_str()).collect();
    fn drop_decls(s: &mut Stmt, names: &HashSet<&str>) {
        match &mut s.kind {
            StmtKind::Block(b) => {
                b.stmts.retain(|s| {
                    !matches!(&s.kind, StmtKind::Decl(d)
                        if matches!(d.declarators.as_slice(),
                            [dec] if names.contains(dec.name.as_str())))
                });
                for s in &mut b.stmts {
                    drop_decls(s, names);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                drop_decls(then_branch, names);
                if let Some(e) = else_branch {
                    drop_decls(e, names);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => drop_decls(body, names),
            _ => {}
        }
    }
    drop_decls(&mut resolved, &resolved_names);
    Some(resolved)
}

// ---------------------------------------------------------------------------
// Alias groups: a flow-insensitive union-find over names, joined whenever
// one name is initialized or assigned from an expression whose pointer
// value could derive from another (`int* q = a;`, `p = buf + off;`). The
// polyhedral test keys dependences by base name, so any group with two
// members makes per-name disjointness unsound for that pair.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct AliasGroups {
    parent: HashMap<String, String>,
}

impl AliasGroups {
    fn find<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        while let Some(p) = self.parent.get(cur) {
            cur = p;
        }
        cur
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a).to_string();
        let rb = self.find(b).to_string();
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn may_alias(&self, a: &str, b: &str) -> bool {
        a == b || self.find(a) == self.find(b)
    }
}

/// Union every declared/assigned name with the pointer-value bases of its
/// initializer, across the whole function body (deep walk).
fn collect_alias_groups(b: &Block) -> AliasGroups {
    let mut g = AliasGroups::default();
    let join = |g: &mut AliasGroups, name: &str, rhs: &Expr| {
        let mut bases = HashSet::new();
        pointer_value_bases(rhs, &mut bases);
        for base in &bases {
            g.union(name, base);
        }
    };
    for s in &b.stmts {
        s.walk(&mut |s| match &s.kind {
            StmtKind::Decl(d) => {
                for dec in &d.declarators {
                    if let Some(init) = &dec.init {
                        join(&mut g, &dec.name, init);
                    }
                }
            }
            StmtKind::For { init, .. } => {
                if let ForInit::Decl(d) = init.as_ref() {
                    for dec in &d.declarators {
                        if let Some(init) = &dec.init {
                            join(&mut g, &dec.name, init);
                        }
                    }
                }
            }
            _ => {}
        });
        s.walk_exprs(&mut |e| {
            if let ExprKind::Assign(_, lhs, rhs) = &e.kind {
                if let Some(name) = lhs.as_ident() {
                    join(&mut g, name, rhs);
                }
            }
        });
    }
    g
}

/// Names whose pointer value could flow out of `e`: the bases reachable
/// through casts, unary ops, `+`/`-` arithmetic, subscripts, member
/// access, ternary arms and comma tails. Over-approximates (a scalar
/// operand lands in the set too), which only ever costs precision, never
/// soundness — calls are the one deliberate omission, since `malloc` and
/// verified-pure callees return values that cannot write-alias caller
/// state.
fn pointer_value_bases(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            out.insert(n.clone());
        }
        ExprKind::Cast(_, inner) | ExprKind::Unary(_, inner) => pointer_value_bases(inner, out),
        ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            pointer_value_bases(l, out);
            pointer_value_bases(r, out);
        }
        ExprKind::Index(base, _) => pointer_value_bases(base, out),
        ExprKind::Ternary(_, t, f) => {
            pointer_value_bases(t, out);
            pointer_value_bases(f, out);
        }
        ExprKind::Comma(_, r) => pointer_value_bases(r, out),
        ExprKind::Member { base, .. } => pointer_value_bases(base, out),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Pure-call substitution: replace calls to verified-pure functions with
// fresh placeholder reads so the SCoP extractor sees an affine body.
// A verified-pure callee cannot write caller-visible state, but it CAN
// read through its pointer arguments — reads the placeholder erases. The
// substitution is therefore only dependence-sound in combination with
// the pure-call-read screen above, which downgrades any loop whose
// written bases are reachable from a pure call's arguments before this
// rewrite is consulted.
// ---------------------------------------------------------------------------

fn subst_pure_calls_stmt(s: &mut Stmt, pure_set: &PureSet, counter: &mut usize) {
    match &mut s.kind {
        StmtKind::Decl(d) => {
            for dec in &mut d.declarators {
                for dim in &mut dec.array_dims {
                    subst_pure_calls_expr(dim, pure_set, counter);
                }
                if let Some(init) = &mut dec.init {
                    subst_pure_calls_expr(init, pure_set, counter);
                }
            }
        }
        StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => {
            subst_pure_calls_expr(e, pure_set, counter);
        }
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                subst_pure_calls_stmt(s, pure_set, counter);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            subst_pure_calls_expr(cond, pure_set, counter);
            subst_pure_calls_stmt(then_branch, pure_set, counter);
            if let Some(e) = else_branch {
                subst_pure_calls_stmt(e, pure_set, counter);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            subst_pure_calls_expr(cond, pure_set, counter);
            subst_pure_calls_stmt(body, pure_set, counter);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            match init.as_mut() {
                ForInit::Decl(d) => {
                    for dec in &mut d.declarators {
                        if let Some(i) = &mut dec.init {
                            subst_pure_calls_expr(i, pure_set, counter);
                        }
                    }
                }
                ForInit::Expr(Some(e)) => subst_pure_calls_expr(e, pure_set, counter),
                ForInit::Expr(None) => {}
            }
            if let Some(c) = cond {
                subst_pure_calls_expr(c, pure_set, counter);
            }
            if let Some(st) = step {
                subst_pure_calls_expr(st, pure_set, counter);
            }
            subst_pure_calls_stmt(body, pure_set, counter);
        }
        _ => {}
    }
}

fn subst_pure_calls_expr(e: &mut Expr, pure_set: &PureSet, counter: &mut usize) {
    if let Some((callee, _)) = e.as_direct_call() {
        if pure_set.contains(callee) {
            *counter += 1;
            e.kind = ExprKind::Ident(format!("__purechk{counter}"));
            return;
        }
    }
    match &mut e.kind {
        ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
            subst_pure_calls_expr(inner, pure_set, counter)
        }
        ExprKind::Binary(_, l, r)
        | ExprKind::Comma(l, r)
        | ExprKind::Assign(_, l, r)
        | ExprKind::Index(l, r) => {
            subst_pure_calls_expr(l, pure_set, counter);
            subst_pure_calls_expr(r, pure_set, counter);
        }
        ExprKind::Ternary(c, t, f) => {
            subst_pure_calls_expr(c, pure_set, counter);
            subst_pure_calls_expr(t, pure_set, counter);
            subst_pure_calls_expr(f, pure_set, counter);
        }
        ExprKind::Call { callee, args } => {
            subst_pure_calls_expr(callee, pure_set, counter);
            for a in args {
                subst_pure_calls_expr(a, pure_set, counter);
            }
        }
        ExprKind::Member { base, .. } => subst_pure_calls_expr(base, pure_set, counter),
        _ => {}
    }
}
