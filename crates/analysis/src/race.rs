//! Static race detection for `#pragma omp parallel for` loops.
//!
//! Mirrors the interpreter's pragma/loop pairing exactly (a pragma that
//! parses as `omp parallel for`, optionally followed by more pragmas,
//! then a `for` statement), so every loop the engines would run in
//! parallel gets a verdict, keyed by the `for` statement's span.
//!
//! Per loop, the analysis is a two-tier ladder:
//!
//! 1. **Scalar screening** — every write in the body is classified by
//!    its lvalue root. Roots that are iteration-private (the nest's
//!    iterators, `private(...)` clause entries, body-declared locals)
//!    are fine. A shared scalar updated in reduction shape
//!    (`x += e`, `x = x op e`, `x++`) degrades the verdict to
//!    `Unknown` with a [`Code::RaceSharedReduction`] warning (the
//!    dynamic check still guards it); any other shared scalar write is
//!    a definite race ([`Code::RaceSharedWrite`], verdict `Racy`) with
//!    a fix-it suggesting a `private(...)` clause.
//! 2. **Memory writes** (through pointers/subscripts) go to the
//!    polyhedral dependence test. That test assumes distinct base names
//!    never alias and cannot see through calls, so two screens guard it
//!    (paper Listing 6 is the counterexample for both):
//!    a name assigned from another pointer's value (`int* q = a;`)
//!    aliases it, and a verified-pure callee — while unable to *write*
//!    caller state — may still *read* its pointer arguments, a flow
//!    dependence against the loop's writes. Any pure-call argument base
//!    that equals or aliases a written base, or any aliasing pair of
//!    distinct accessed bases with one side written, degrades the
//!    verdict to `Unknown` ([`Code::RaceUnprovable`]) and leaves the
//!    dynamic check on. Past the screens, calls to verified-pure
//!    functions are substituted by fresh placeholder reads, then
//!    [`polyhedral::extract_scop`] + [`polyhedral::deps::analyze`] +
//!    [`polyhedral::parallel_levels`] decide. A dependence carried at
//!    the parallel level is a definite race
//!    ([`Code::RaceLoopCarried`]); a non-affine nest degrades to
//!    `Unknown` ([`Code::RaceUnprovable`]).
//!
//! The ladder only ever *downgrades*: `Independent` → `Unknown` →
//! `Racy`, so one definite race wins over any number of unknowns.

use crate::{AnalysisReport, LoopReport, LoopVerdict};
use cfront::ast::*;
use cfront::diag::Code;
use cfront::span::Span;
use machine::{parse_omp_parallel_for_clauses, OmpClauses};
use purec_core::PureSet;
use std::collections::{HashMap, HashSet};

/// Walk one function body, pairing omp pragmas with their loops the same
/// way the interpreter's lowering does, and recursing everywhere else.
/// Alias groups are computed once from the whole body so a `int* q = a;`
/// at function scope is visible inside every nested loop.
pub fn analyze_block(b: &Block, pure_set: &PureSet, report: &mut AnalysisReport) {
    let aliases = collect_alias_groups(b);
    analyze_block_with(b, pure_set, &aliases, report);
}

fn analyze_block_with(
    b: &Block,
    pure_set: &PureSet,
    aliases: &AliasGroups,
    report: &mut AnalysisReport,
) {
    let mut i = 0;
    while i < b.stmts.len() {
        if let StmtKind::Pragma(p) = &b.stmts[i].kind {
            if let Some(clauses) = parse_omp_parallel_for_clauses(p) {
                let pragma_span = b.stmts[i].span;
                let mut j = i + 1;
                while j < b.stmts.len() && matches!(&b.stmts[j].kind, StmtKind::Pragma(_)) {
                    j += 1;
                }
                if j < b.stmts.len() && matches!(b.stmts[j].kind, StmtKind::For { .. }) {
                    analyze_omp_loop(
                        pragma_span,
                        &clauses,
                        &b.stmts[j],
                        pure_set,
                        aliases,
                        report,
                    );
                    recurse(&b.stmts[j], pure_set, aliases, report);
                    i = j + 1;
                    continue;
                }
            }
        }
        recurse(&b.stmts[i], pure_set, aliases, report);
        i += 1;
    }
}

fn recurse(s: &Stmt, pure_set: &PureSet, aliases: &AliasGroups, report: &mut AnalysisReport) {
    match &s.kind {
        StmtKind::Block(b) => analyze_block_with(b, pure_set, aliases, report),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            recurse(then_branch, pure_set, aliases, report);
            if let Some(e) = else_branch {
                recurse(e, pure_set, aliases, report);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => recurse(body, pure_set, aliases, report),
        _ => {}
    }
}

fn analyze_omp_loop(
    pragma_span: Span,
    clauses: &OmpClauses,
    for_stmt: &Stmt,
    pure_set: &PureSet,
    aliases: &AliasGroups,
    report: &mut AnalysisReport,
) {
    // Clause hygiene: the runtime silently ignores what it does not
    // understand, so surface that here.
    for c in &clauses.unknown_clauses {
        report.diags.warning(
            Code::OmpUnknownClause,
            pragma_span,
            format!("unrecognized OpenMP clause '{c}' is ignored by the runtime"),
        );
    }
    if let Some(k) = &clauses.unknown_schedule {
        report.diags.warning(
            Code::OmpUnknownSchedule,
            pragma_span,
            format!("unknown schedule kind '{k}' degrades to schedule(static)"),
        );
    }

    let mut verdict = LoopVerdict::Independent;
    let downgrade = |v: &mut LoopVerdict, to: LoopVerdict| {
        if (to == LoopVerdict::Racy)
            || (to == LoopVerdict::Unknown && *v == LoopVerdict::Independent)
        {
            *v = to;
        }
    };

    // Iteration-private names: clause list + every iterator assigned by a
    // `for` init in the nest + everything declared inside the body.
    let mut privates: HashSet<String> = clauses.privates.iter().cloned().collect();
    collect_nest_iterators(for_stmt, &mut privates);
    collect_body_decls(for_stmt, &mut privates);

    let body = match &for_stmt.kind {
        StmtKind::For { body, .. } => body.as_ref(),
        _ => return,
    };

    // Tier 1: scalar screening + call screening over the body.
    let mut reduction_names: HashSet<String> = HashSet::new();
    let mut memory_writes = false;
    let mut scalar_events: Vec<(String, Span, bool)> = Vec::new(); // (name, span, reduction_shaped)
    body.walk_exprs(&mut |e| match &e.kind {
        ExprKind::Assign(op, lhs, rhs) => {
            if lhs.writes_through_pointer() {
                memory_writes = true;
            } else if let Some(name) = lhs.as_ident() {
                if !privates.contains(name) {
                    let red = *op != AssignOp::Assign || rhs_is_reduction(name, rhs);
                    scalar_events.push((name.to_string(), e.span, red));
                }
            }
        }
        ExprKind::Unary(op, inner) if op.writes_operand() => {
            if inner.writes_through_pointer() {
                memory_writes = true;
            } else if let Some(name) = inner.as_ident() {
                if !privates.contains(name) {
                    // `x++` is `x = x + 1`: reduction-shaped.
                    scalar_events.push((name.to_string(), e.span, true));
                }
            }
        }
        _ => {}
    });

    let mut reported: HashSet<(String, bool)> = HashSet::new();
    for (name, span, red) in scalar_events {
        if !reported.insert((name.clone(), red)) {
            continue;
        }
        if red {
            report.diags.warning(
                Code::RaceSharedReduction,
                span,
                format!(
                    "shared scalar '{name}' is updated as a reduction across iterations; \
                     the transform does not privatize reductions, so the dynamic race \
                     check stays on for this loop"
                ),
            );
            reduction_names.insert(name);
            downgrade(&mut verdict, LoopVerdict::Unknown);
        } else {
            report.diags.error(
                Code::RaceSharedWrite,
                span,
                format!(
                    "data race: scalar '{name}' is shared across iterations but written \
                     inside the parallel loop; add it to a private({name}) clause or \
                     declare it inside the loop body"
                ),
            );
            downgrade(&mut verdict, LoopVerdict::Racy);
        }
    }

    // Calls to anything not verified pure poison the analysis (the paper's
    // point: without `pure`, a call makes the loop non-analyzable).
    let mut impure_calls: Vec<(String, Span)> = Vec::new();
    body.walk_exprs(&mut |e| {
        if let Some((callee, _)) = e.as_direct_call() {
            if !pure_set.contains(callee) {
                impure_calls.push((callee.to_string(), e.span));
            }
        }
    });
    let mut seen_callees = HashSet::new();
    for (callee, span) in impure_calls {
        if seen_callees.insert(callee.clone()) {
            report.diags.warning(
                Code::RaceUnprovable,
                span,
                format!(
                    "cannot prove independence: call to '{callee}' is not verified pure; \
                     falling back to the dynamic race check"
                ),
            );
        }
        downgrade(&mut verdict, LoopVerdict::Unknown);
    }

    // Alias & pure-call-read screens (paper Listing 6): the dependence
    // test treats distinct base names as disjoint and never sees what a
    // callee dereferences, so both holes must be closed *before* it can
    // be trusted. Conservative by construction — these only downgrade to
    // `Unknown`, handing the loop back to the dynamic check.
    if memory_writes && verdict != LoopVerdict::Racy {
        let mut written: HashSet<String> = HashSet::new();
        let mut accessed: HashSet<String> = HashSet::new();
        body.walk_exprs(&mut |e| match &e.kind {
            ExprKind::Assign(_, lhs, _) if lhs.writes_through_pointer() => {
                pointer_value_bases(lhs, &mut written);
            }
            ExprKind::Unary(op, inner) if op.writes_operand() && inner.writes_through_pointer() => {
                pointer_value_bases(inner, &mut written);
            }
            ExprKind::Index(base, _) => {
                pointer_value_bases(base, &mut accessed);
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                pointer_value_bases(inner, &mut accessed);
            }
            _ => {}
        });
        accessed.extend(written.iter().cloned());

        // Screen A: a verified-pure callee may *read* any memory its
        // pointer arguments reach; if an argument base is (or aliases) a
        // base the loop writes, that read is a flow dependence the
        // substituted placeholder erases.
        let mut flagged: HashSet<(String, String)> = HashSet::new();
        body.walk_exprs(&mut |e| {
            if let Some((callee, args)) = e.as_direct_call() {
                if pure_set.contains(callee) {
                    let mut arg_idents: HashSet<String> = HashSet::new();
                    for a in args {
                        a.walk(&mut |sub| {
                            if let ExprKind::Ident(n) = &sub.kind {
                                arg_idents.insert(n.clone());
                            }
                        });
                    }
                    for b in &arg_idents {
                        for w in &written {
                            if aliases.may_alias(b, w)
                                && flagged.insert((callee.to_string(), b.clone()))
                            {
                                report.diags.warning(
                                    Code::RaceUnprovable,
                                    e.span,
                                    format!(
                                        "cannot prove independence: pure call '{callee}' may \
                                         read memory written by the loop through '{b}'{}; the \
                                         callee's subscripts are invisible to the dependence \
                                         test, falling back to the dynamic race check",
                                        if b == w {
                                            String::new()
                                        } else {
                                            format!(" (aliases '{w}')")
                                        }
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        });
        if !flagged.is_empty() {
            downgrade(&mut verdict, LoopVerdict::Unknown);
        }

        // Screen B: two distinct base names that may hold the same
        // pointer value (`int* q = a;`) defeat the per-name dependence
        // test whenever one of them is written.
        let mut pair_flagged: HashSet<(String, String)> = HashSet::new();
        for w in &written {
            for o in &accessed {
                if w != o && aliases.may_alias(w, o) {
                    let key = if w < o {
                        (w.clone(), o.clone())
                    } else {
                        (o.clone(), w.clone())
                    };
                    if pair_flagged.insert(key) {
                        report.diags.warning(
                            Code::RaceUnprovable,
                            for_stmt.span,
                            format!(
                                "cannot prove independence: '{w}' and '{o}' may alias (one \
                                 was assigned from the other's value), defeating the \
                                 per-name dependence test; falling back to the dynamic \
                                 race check"
                            ),
                        );
                    }
                    downgrade(&mut verdict, LoopVerdict::Unknown);
                }
            }
        }
    }

    // Tier 2: memory writes need the dependence test.
    if memory_writes && verdict != LoopVerdict::Racy {
        let mut probe = for_stmt.clone();
        let mut counter = 0usize;
        subst_pure_calls_stmt(&mut probe, pure_set, &mut counter);
        match polyhedral::extract_scop(&probe) {
            Ok(scop) => {
                let deps = polyhedral::analyze(&scop);
                let levels = polyhedral::parallel_levels(&scop, &deps);
                if !levels.first().copied().unwrap_or(false) {
                    let mut blocking = false;
                    let mut named: HashSet<&str> = HashSet::new();
                    for d in &deps {
                        if d.level == Some(0)
                            && !reduction_names.contains(&d.array)
                            && !privates.contains(&d.array)
                        {
                            blocking = true;
                            if named.insert(d.array.as_str()) {
                                report.diags.error(
                                    Code::RaceLoopCarried,
                                    for_stmt.span,
                                    format!(
                                        "data race: loop-carried {} dependence on '{}' \
                                         (distance {}) — iterations are not independent",
                                        d.kind,
                                        d.array,
                                        d.dist.first().map(|b| b.to_string()).unwrap_or_default()
                                    ),
                                );
                            }
                        }
                    }
                    if blocking {
                        downgrade(&mut verdict, LoopVerdict::Racy);
                    } else {
                        downgrade(&mut verdict, LoopVerdict::Unknown);
                    }
                }
            }
            Err(why) => {
                let detail = why
                    .items()
                    .first()
                    .map(|d| d.message.clone())
                    .unwrap_or_else(|| "not a static control part".into());
                report.diags.warning(
                    Code::RaceUnprovable,
                    for_stmt.span,
                    format!(
                        "cannot prove independence: {detail}; falling back to the \
                         dynamic race check"
                    ),
                );
                downgrade(&mut verdict, LoopVerdict::Unknown);
            }
        }
    }

    report.loops.push(LoopReport {
        span: for_stmt.span,
        verdict,
    });
}

/// `x = x op e` / `x = e op x` with an arithmetic/bitwise `op`.
fn rhs_is_reduction(name: &str, rhs: &Expr) -> bool {
    match &rhs.kind {
        ExprKind::Binary(op, l, r) => {
            matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
            ) && (l.as_ident() == Some(name) || r.as_ident() == Some(name))
        }
        _ => false,
    }
}

/// Every iterator assigned/declared by a `for` init anywhere in the nest
/// (covers inner loops whose iterators are declared at function scope).
fn collect_nest_iterators(s: &Stmt, out: &mut HashSet<String>) {
    s.walk(&mut |s| {
        if let StmtKind::For { init, .. } = &s.kind {
            match init.as_ref() {
                ForInit::Decl(d) => {
                    for dec in &d.declarators {
                        out.insert(dec.name.clone());
                    }
                }
                ForInit::Expr(Some(e)) => {
                    if let ExprKind::Assign(AssignOp::Assign, lhs, _) = &e.kind {
                        if let Some(n) = lhs.as_ident() {
                            out.insert(n.to_string());
                        }
                    }
                }
                ForInit::Expr(None) => {}
            }
        }
    });
}

/// Every name declared inside the loop (body-local ⇒ iteration-private).
fn collect_body_decls(s: &Stmt, out: &mut HashSet<String>) {
    s.walk(&mut |s| {
        if let StmtKind::Decl(d) = &s.kind {
            for dec in &d.declarators {
                out.insert(dec.name.clone());
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Alias groups: a flow-insensitive union-find over names, joined whenever
// one name is initialized or assigned from an expression whose pointer
// value could derive from another (`int* q = a;`, `p = buf + off;`). The
// polyhedral test keys dependences by base name, so any group with two
// members makes per-name disjointness unsound for that pair.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct AliasGroups {
    parent: HashMap<String, String>,
}

impl AliasGroups {
    fn find<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        while let Some(p) = self.parent.get(cur) {
            cur = p;
        }
        cur
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a).to_string();
        let rb = self.find(b).to_string();
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn may_alias(&self, a: &str, b: &str) -> bool {
        a == b || self.find(a) == self.find(b)
    }
}

/// Union every declared/assigned name with the pointer-value bases of its
/// initializer, across the whole function body (deep walk).
fn collect_alias_groups(b: &Block) -> AliasGroups {
    let mut g = AliasGroups::default();
    let join = |g: &mut AliasGroups, name: &str, rhs: &Expr| {
        let mut bases = HashSet::new();
        pointer_value_bases(rhs, &mut bases);
        for base in &bases {
            g.union(name, base);
        }
    };
    for s in &b.stmts {
        s.walk(&mut |s| match &s.kind {
            StmtKind::Decl(d) => {
                for dec in &d.declarators {
                    if let Some(init) = &dec.init {
                        join(&mut g, &dec.name, init);
                    }
                }
            }
            StmtKind::For { init, .. } => {
                if let ForInit::Decl(d) = init.as_ref() {
                    for dec in &d.declarators {
                        if let Some(init) = &dec.init {
                            join(&mut g, &dec.name, init);
                        }
                    }
                }
            }
            _ => {}
        });
        s.walk_exprs(&mut |e| {
            if let ExprKind::Assign(_, lhs, rhs) = &e.kind {
                if let Some(name) = lhs.as_ident() {
                    join(&mut g, name, rhs);
                }
            }
        });
    }
    g
}

/// Names whose pointer value could flow out of `e`: the bases reachable
/// through casts, unary ops, `+`/`-` arithmetic, subscripts, member
/// access, ternary arms and comma tails. Over-approximates (a scalar
/// operand lands in the set too), which only ever costs precision, never
/// soundness — calls are the one deliberate omission, since `malloc` and
/// verified-pure callees return values that cannot write-alias caller
/// state.
fn pointer_value_bases(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            out.insert(n.clone());
        }
        ExprKind::Cast(_, inner) | ExprKind::Unary(_, inner) => pointer_value_bases(inner, out),
        ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            pointer_value_bases(l, out);
            pointer_value_bases(r, out);
        }
        ExprKind::Index(base, _) => pointer_value_bases(base, out),
        ExprKind::Ternary(_, t, f) => {
            pointer_value_bases(t, out);
            pointer_value_bases(f, out);
        }
        ExprKind::Comma(_, r) => pointer_value_bases(r, out),
        ExprKind::Member { base, .. } => pointer_value_bases(base, out),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Pure-call substitution: replace calls to verified-pure functions with
// fresh placeholder reads so the SCoP extractor sees an affine body.
// A verified-pure callee cannot write caller-visible state, but it CAN
// read through its pointer arguments — reads the placeholder erases. The
// substitution is therefore only dependence-sound in combination with
// the pure-call-read screen above, which downgrades any loop whose
// written bases are reachable from a pure call's arguments before this
// rewrite is consulted.
// ---------------------------------------------------------------------------

fn subst_pure_calls_stmt(s: &mut Stmt, pure_set: &PureSet, counter: &mut usize) {
    match &mut s.kind {
        StmtKind::Decl(d) => {
            for dec in &mut d.declarators {
                for dim in &mut dec.array_dims {
                    subst_pure_calls_expr(dim, pure_set, counter);
                }
                if let Some(init) = &mut dec.init {
                    subst_pure_calls_expr(init, pure_set, counter);
                }
            }
        }
        StmtKind::Expr(Some(e)) | StmtKind::Return(Some(e)) => {
            subst_pure_calls_expr(e, pure_set, counter);
        }
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                subst_pure_calls_stmt(s, pure_set, counter);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            subst_pure_calls_expr(cond, pure_set, counter);
            subst_pure_calls_stmt(then_branch, pure_set, counter);
            if let Some(e) = else_branch {
                subst_pure_calls_stmt(e, pure_set, counter);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            subst_pure_calls_expr(cond, pure_set, counter);
            subst_pure_calls_stmt(body, pure_set, counter);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            match init.as_mut() {
                ForInit::Decl(d) => {
                    for dec in &mut d.declarators {
                        if let Some(i) = &mut dec.init {
                            subst_pure_calls_expr(i, pure_set, counter);
                        }
                    }
                }
                ForInit::Expr(Some(e)) => subst_pure_calls_expr(e, pure_set, counter),
                ForInit::Expr(None) => {}
            }
            if let Some(c) = cond {
                subst_pure_calls_expr(c, pure_set, counter);
            }
            if let Some(st) = step {
                subst_pure_calls_expr(st, pure_set, counter);
            }
            subst_pure_calls_stmt(body, pure_set, counter);
        }
        _ => {}
    }
}

fn subst_pure_calls_expr(e: &mut Expr, pure_set: &PureSet, counter: &mut usize) {
    if let Some((callee, _)) = e.as_direct_call() {
        if pure_set.contains(callee) {
            *counter += 1;
            e.kind = ExprKind::Ident(format!("__purechk{counter}"));
            return;
        }
    }
    match &mut e.kind {
        ExprKind::Unary(_, inner) | ExprKind::Cast(_, inner) | ExprKind::SizeofExpr(inner) => {
            subst_pure_calls_expr(inner, pure_set, counter)
        }
        ExprKind::Binary(_, l, r)
        | ExprKind::Comma(l, r)
        | ExprKind::Assign(_, l, r)
        | ExprKind::Index(l, r) => {
            subst_pure_calls_expr(l, pure_set, counter);
            subst_pure_calls_expr(r, pure_set, counter);
        }
        ExprKind::Ternary(c, t, f) => {
            subst_pure_calls_expr(c, pure_set, counter);
            subst_pure_calls_expr(t, pure_set, counter);
            subst_pure_calls_expr(f, pure_set, counter);
        }
        ExprKind::Call { callee, args } => {
            subst_pure_calls_expr(callee, pure_set, counter);
            for a in args {
                subst_pure_calls_expr(a, pure_set, counter);
            }
        }
        ExprKind::Member { base, .. } => subst_pure_calls_expr(base, pure_set, counter),
        _ => {}
    }
}
