//! # analysis — static race & purity analyzer (`purec check`)
//!
//! Runs between parsing and lowering, over the same AST the interpreter
//! executes, and produces [`cfront::diag::Diagnostic`]s with stable codes:
//!
//! 1. **Static race detection** ([`race`]) for `#pragma omp parallel for`
//!    bodies. Variables are classified iteration-private (loop iterators,
//!    `private(...)` clause entries, body-declared locals) vs shared;
//!    shared scalar writes that are not reduction-shaped are flagged as
//!    definite races ([`Code::RaceSharedWrite`]); affine array subscripts
//!    go through the [`polyhedral`] dependence test and a level-0-carried
//!    dependence is a definite race ([`Code::RaceLoopCarried`]); anything
//!    non-affine degrades to a conservative warning
//!    ([`Code::RaceUnprovable`]). Each analyzed loop gets a three-valued
//!    [`LoopVerdict`]: the engines skip the O(n) dynamic race pre-pass
//!    entirely for `Independent` loops, hard-error on `Racy` ones under
//!    `--race-check`, and fall back to the dynamic check for `Unknown`.
//! 2. **Purity inference** — [`purec_core::infer_pure`] run speculatively
//!    over unannotated functions; inferable ones get a note-level "could
//!    be declared pure" diagnostic ([`Code::PureInferrable`]), blocked
//!    ones a note with the blocking reason
//!    ([`Code::PureInferenceBlocked`]).
//! 3. **Dataflow lints** ([`lints`]) — definite-assignment
//!    ([`Code::LintUninitRead`]), unused variables
//!    ([`Code::LintUnusedVar`]) and dead stores ([`Code::LintDeadStore`]),
//!    all tuned for zero false positives over the repo's corpus: anything
//!    shadowed, address-taken, aggregate or control-flow-dependent in a
//!    way the straight-line walk cannot prove is simply skipped.
//!
//! The crate is deliberately independent of `cinterp`: verdicts are
//! exported as a plain span-keyed map that `purec` converts into the
//! interpreter's own verdict type when wiring a program.

pub mod lints;
pub mod race;

use cfront::ast::TranslationUnit;
use cfront::diag::{Code, Diagnostics};
use cfront::span::Span;
use purec_core::PureSet;
use std::collections::HashMap;

/// Three-valued outcome of the static race analysis for one
/// `#pragma omp parallel for` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopVerdict {
    /// Proven race-free: every iteration touches disjoint data. The
    /// dynamic race check is redundant and may be skipped.
    Independent,
    /// Proven racy: a shared scalar write or a level-0-carried array
    /// dependence. Running this loop in parallel is a checked error.
    Racy,
    /// Analysis could not decide (non-affine, impure calls, reduction
    /// pattern). Fall back to the dynamic check.
    #[default]
    Unknown,
}

/// Per-loop result, keyed by the span of the `for` statement (the same
/// span the interpreter's lowering sees, so verdicts survive the
/// reparse boundary of the chain).
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Span of the `for` statement under the pragma.
    pub span: Span,
    pub verdict: LoopVerdict,
}

/// What to run. `lints` is on by default; inference notes are opt-in
/// because they are advisory (`purec check --infer-pure`).
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Emit [`Code::PureInferrable`] / [`Code::PureInferenceBlocked`]
    /// notes for unannotated functions.
    pub infer_pure: bool,
    /// Skip the dataflow lints (race analysis always runs).
    pub no_lints: bool,
}

/// Everything the analyzer produces in one pass.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// All diagnostics, in source order per pass.
    pub diags: Diagnostics,
    /// One entry per analyzed `omp parallel for` loop.
    pub loops: Vec<LoopReport>,
    /// Functions that could be declared `pure` as written (only
    /// populated when [`AnalysisOptions::infer_pure`] is set).
    pub inferred_pure: Vec<String>,
}

impl AnalysisReport {
    /// Span → verdict map for the interpreter wiring.
    pub fn verdict_map(&self) -> HashMap<Span, LoopVerdict> {
        self.loops.iter().map(|l| (l.span, l.verdict)).collect()
    }
}

/// Run the full analysis over a translation unit. `pure_set` is the
/// verified registry (builtins + declared-pure user functions) the race
/// analyzer uses to discount side-effect-free calls.
pub fn analyze_unit(
    unit: &TranslationUnit,
    pure_set: &PureSet,
    opts: &AnalysisOptions,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();

    for f in unit.functions() {
        if let Some(body) = &f.body {
            race::analyze_block(body, pure_set, &mut report);
        }
    }

    if opts.infer_pure {
        let inf = purec_core::infer_pure(unit, pure_set);
        for name in &inf.inferred {
            let span = unit.find_function(name).map(|f| f.span).unwrap_or_default();
            report.diags.note(
                Code::PureInferrable,
                span,
                format!("function '{name}' could be declared pure (passes all PC-CC rules)"),
            );
        }
        for (name, why) in &inf.blocked {
            report.diags.note(
                Code::PureInferenceBlocked,
                why.span,
                format!("function '{name}' cannot be pure: {}", why.message),
            );
        }
        report.inferred_pure = inf.inferred;
    }

    if !opts.no_lints {
        for f in unit.functions() {
            if f.is_definition() {
                lints::lint_function(f, unit, &mut report.diags);
            }
        }
    }

    report
}
