//! `purec` — the command-line driver of the extended compiler chain.
//!
//! ```text
//! purec <file.c> [--sica] [--tile N] [--no-poly] [--poly-unmarked]
//!       [--no-omp] [--dump-schedule] [--run [--threads N]]
//!       [--engine vm|resolved] [--no-pool] [--no-futures] [--no-steal]
//!       [--no-opt] [--dump-bytecode] [--profile-pairs] [--pgo]
//!       [--fuel N] [--max-memory BYTES] [--max-depth N]
//!       [--race-check] [--race-check-cap N] [--infer-pure]
//!       [--emit-marked] [--no-alloc-pure] [--stats]
//!       [--trace FILE] [--stats-json FILE]
//! purec check <file.c> [--json] [--infer-pure] [--no-alloc-pure]
//! purec trace-check <trace.json>
//! purec --demo <matmul|heat|satellite|lama> [same flags]
//! ```
//!
//! Without `--run` the transformed standard-C text is printed to stdout
//! (the source-to-source behaviour of the paper's tool). With `--run` the
//! program is executed on the built-in interpreter and omprt runtime.
//!
//! Resource limits (all unlimited by default) turn runaway executions
//! into structured traps with distinct exit codes: fuel exhaustion → 97,
//! memory limit → 98, call-depth limit → 99.
//!
//! Observability: `--trace FILE` records compile phases, parallel
//! regions, future lifecycles, memo/fuel/trap events into a Chrome
//! trace-event JSON file (open in `chrome://tracing` or Perfetto;
//! validate with `purec trace-check`). `--stats-json FILE` dumps the
//! full counter set plus latency histograms and gauges as one JSON
//! object. `--pgo` is the two-run self-profiling driver: run once
//! sampling hot opcode pairs, then re-run with the measured profile
//! steering superinstruction fusion — no manual `--profile-pairs`
//! round-trip needed.

use purec::chain::{compile, ChainOptions};
use purec_core::{PcCcOptions, PureSet};

fn usage() -> ! {
    eprintln!(
        "usage: purec <file.c> [options]\n\
         \x20      purec check <file.c> [--json] [--infer-pure] [--no-alloc-pure]\n\
         \x20      purec trace-check <trace.json>\n\
         \x20      purec --demo <matmul|heat|satellite|lama> [options]\n\
         check mode (static race + purity analyzer, no compilation):\n\
         \x20 --json           one JSON diagnostic object per line\n\
         \x20 --infer-pure     also report functions that could be declared pure\n\
         trace-check mode: structurally validate a Chrome trace-event file\n\
         \x20 (matched B/E pairs, per-thread monotonic timestamps)\n\
         options:\n\
         \x20 --sica           enable PluTo-SICA mode (cache tiling + SIMD pragmas)\n\
         \x20 --tile N         explicit rectangular tile size\n\
         \x20 --tile-size N    alias for --tile\n\
         \x20 --no-poly        skip the polyhedral stage; every loop nest runs\n\
         \x20                  literally (A/B comparison against the fast path)\n\
         \x20 --poly-unmarked  route unmarked all-pure for nests through the\n\
         \x20                  transformer as implicit SCoPs\n\
         \x20 --dump-schedule  print one line per region outcome (schedule\n\
         \x20                  matrix, band, parallel/tiled/skewed) to stderr\n\
         \x20 --no-omp         suppress OpenMP pragmas (transform only)\n\
         \x20 --no-alloc-pure  drop malloc/free from the pure registry (ablation A1)\n\
         \x20 --emit-marked    stop after PC-CC and print the marked source\n\
         \x20 --run            execute the result on the interpreter\n\
         \x20 --engine E       execution tier for --run: vm (bytecode VM, default)\n\
         \x20                  or resolved (resolved-IR oracle engine)\n\
         \x20 --threads N      omprt threads for --run (default 1)\n\
         \x20 --no-pool        spawn threads per region instead of using the\n\
         \x20                  persistent worker pool (A/B comparison)\n\
         \x20 --no-futures     run independent pure calls inline instead of as\n\
         \x20                  futures on the worker pool (A/B comparison)\n\
         \x20 --no-steal       route worker-spawned futures through the single\n\
         \x20                  shared injector instead of per-worker deques\n\
         \x20                  (pre-work-stealing substrate, A/B comparison)\n\
         \x20 --no-opt         run the raw bytecode, skipping the tier-3.5\n\
         \x20                  optimizer (fold/DSE/hoist/fusion A/B comparison)\n\
         \x20 --dump-bytecode  print the bytecode that will run (post-optimizer\n\
         \x20                  unless --no-opt) to stderr\n\
         \x20 --profile-pairs  sample hot opcode pairs during --run and print\n\
         \x20                  the profile to stderr (feeds fusion tuning)\n\
         \x20 --pgo            profile-guided --run: execute once sampling hot\n\
         \x20                  opcode pairs, then re-run with the measured\n\
         \x20                  profile steering superinstruction fusion\n\
         \x20 --trace FILE     record a Chrome trace-event JSON file for the\n\
         \x20                  compile + run (phases, parallel regions, future\n\
         \x20                  lifecycles, memo/fuel/trap events)\n\
         \x20 --stats-json FILE  dump run counters, latency histograms and\n\
         \x20                  sampled gauges as one JSON object\n\
         \x20 --race-check     validate iteration independence before parallel runs\n\
         \x20                  (loops the static analyzer proves independent skip\n\
         \x20                  the dynamic pre-pass; proven-racy loops are errors)\n\
         \x20 --race-check-cap N  cap the dynamic race pre-pass at N iterations\n\
         \x20                  (0 = unlimited; default 65536; also settable via\n\
         \x20                  the PUREC_RACE_CHECK_CAP environment variable)\n\
         \x20 --infer-pure     treat unannotated functions that pass the PC-CC\n\
         \x20                  rules as verified (widens memo/spawn eligibility)\n\
         \x20 --fuel N         cap executed statements/instructions at N; a run\n\
         \x20                  that exhausts its fuel traps and exits 97\n\
         \x20 --max-memory B   cap interpreter memory at B bytes; exceeding the\n\
         \x20                  cap traps and exits 98\n\
         \x20 --max-depth N    cap the call stack at N frames; exceeding the\n\
         \x20                  cap traps and exits 99\n\
         \x20 --stats          print chain statistics to stderr"
    );
    std::process::exit(2);
}

/// `purec check <file.c> [--json] [--infer-pure] [--no-alloc-pure]`
fn check_mode(args: &[String]) -> ! {
    let mut source_path: Option<String> = None;
    let mut json = false;
    let mut infer_pure = false;
    let mut alloc_pure = true;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--infer-pure" => infer_pure = true,
            "--no-alloc-pure" => alloc_pure = false,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && source_path.is_none() => {
                source_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let path = source_path.unwrap_or_else(|| usage());
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("purec: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let opts = purec::CheckOptions {
        seed: if alloc_pure {
            PureSet::seeded()
        } else {
            PureSet::seeded_without_alloc()
        },
        infer_pure,
    };
    let outcome = purec::check_source(&source, &opts);
    if json {
        print!("{}", outcome.render_json());
    } else {
        print!("{}", outcome.render());
        if infer_pure && !outcome.inferred_pure.is_empty() {
            eprintln!(
                "purec: {} function(s) inferable as pure: {:?}",
                outcome.inferred_pure.len(),
                outcome.inferred_pure
            );
        }
    }
    std::process::exit(if outcome.has_errors() { 1 } else { 0 });
}

/// `purec trace-check <trace.json>` — structurally validate a Chrome
/// trace-event file (the CI smoke step runs this on `--trace` output).
fn trace_check_mode(args: &[String]) -> ! {
    let [path] = args else { usage() };
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("purec: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match cinterp::validate_chrome_trace(&json) {
        Ok(stats) => {
            println!(
                "purec: trace ok: {} event(s), {} span(s), {} instant(s)\nnames: {}",
                stats.events,
                stats.spans,
                stats.instants,
                stats.names.join(" ")
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("purec: invalid trace: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "check" {
        check_mode(&args[1..]);
    }
    if args[0] == "trace-check" {
        trace_check_mode(&args[1..]);
    }

    let mut source_path: Option<String> = None;
    let mut demo: Option<String> = None;
    let mut sica = false;
    let mut tile: Option<i64> = None;
    let mut no_poly = false;
    let mut poly_unmarked = false;
    let mut dump_schedule = false;
    let mut omp = true;
    let mut alloc_pure = true;
    let mut emit_marked = false;
    let mut run = false;
    let mut engine = cinterp::Engine::Bytecode;
    let mut threads = 1usize;
    let mut pool = true;
    let mut futures = true;
    let mut steal = true;
    let mut race_check = false;
    let mut race_check_cap: Option<u64> = std::env::var("PUREC_RACE_CHECK_CAP")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut infer_pure = false;
    let mut stats = false;
    let mut opt_level: u8 = 2;
    let mut dump_bytecode = false;
    let mut profile_pairs = false;
    let mut pgo = false;
    let mut trace_path: Option<String> = None;
    let mut stats_json_path: Option<String> = None;
    let mut fuel: Option<u64> = None;
    let mut max_memory: Option<u64> = None;
    let mut max_depth: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--demo" => demo = Some(it.next().unwrap_or_else(|| usage())),
            "--sica" => sica = true,
            "--tile" | "--tile-size" => {
                tile = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-poly" => no_poly = true,
            "--poly-unmarked" => poly_unmarked = true,
            "--dump-schedule" => dump_schedule = true,
            "--no-omp" => omp = false,
            "--no-alloc-pure" => alloc_pure = false,
            "--emit-marked" => emit_marked = true,
            "--run" => run = true,
            "--engine" => {
                engine = match it.next().as_deref() {
                    Some("vm") | Some("bytecode") => cinterp::Engine::Bytecode,
                    Some("resolved") => cinterp::Engine::Resolved,
                    _ => usage(),
                }
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-pool" => pool = false,
            "--no-futures" => futures = false,
            "--no-steal" => steal = false,
            "--no-opt" => opt_level = 0,
            "--dump-bytecode" => dump_bytecode = true,
            "--profile-pairs" => profile_pairs = true,
            "--pgo" => pgo = true,
            "--trace" => trace_path = Some(it.next().unwrap_or_else(|| usage())),
            "--stats-json" => stats_json_path = Some(it.next().unwrap_or_else(|| usage())),
            "--race-check" => race_check = true,
            "--race-check-cap" => {
                race_check_cap = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--infer-pure" => infer_pure = true,
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-memory" => {
                max_memory = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-depth" => {
                max_depth = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--stats" => stats = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && source_path.is_none() => {
                source_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }

    let source = match (&source_path, &demo) {
        (Some(path), None) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("purec: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        (None, Some(name)) => match name.as_str() {
            "matmul" => apps::matmul::c_source(64),
            "heat" => apps::heat::c_source(32, 10),
            "satellite" => apps::satellite::c_source(16, 16),
            "lama" => apps::lama::c_source(256, 9),
            other => {
                eprintln!("purec: unknown demo '{other}'");
                std::process::exit(2);
            }
        },
        _ => usage(),
    };

    let seed = if alloc_pure {
        PureSet::seeded()
    } else {
        PureSet::seeded_without_alloc()
    };
    let opts = ChainOptions {
        pc_cc: PcCcOptions {
            seed,
            infer_pure,
            includes: Default::default(),
        },
        polycc: polyhedral::PolyccOptions {
            codegen: polyhedral::CodegenOptions { tile, sica, omp },
            sica: if sica {
                Some(polyhedral::SicaParams::default())
            } else {
                None
            },
            ..Default::default()
        },
        no_poly,
        poly_unmarked,
    };

    if emit_marked {
        match purec_core::run_pc_cc(&source, opts.pc_cc) {
            Ok(out) => {
                print!("{}", cfront::print_unit(&out.unit));
                if stats {
                    eprintln!(
                        "purec: {} pure function(s), {} scop(s) marked, {} call(s) substituted",
                        out.declared_pure.len(),
                        out.scops_marked,
                        out.subst.len()
                    );
                }
            }
            Err(diags) => {
                eprint!("{}", diags.render_all(&source));
                std::process::exit(1);
            }
        }
        return;
    }

    if run {
        if pgo && engine != cinterp::Engine::Bytecode {
            eprintln!(
                "purec: --pgo drives the bytecode VM's superinstruction fusion; use --engine vm"
            );
            std::process::exit(2);
        }
        let interp = cinterp::InterpOptions {
            threads,
            race_check,
            race_check_cap,
            engine,
            pool,
            futures,
            steal,
            fuel,
            max_memory_bytes: max_memory,
            max_call_depth: max_depth,
            opt_level,
            profile_pairs,
            ..Default::default()
        };
        // A trace/metrics session brackets compile + run, so pipeline
        // phases land in the same timeline as runtime spans.
        let session =
            (trace_path.is_some() || stats_json_path.is_some()).then(cinterp::TraceSession::start);
        let outcome = compile(&source, opts)
            .map_err(purec::chain::ChainError::Compile)
            .and_then(|out| {
                let program = out.program();
                let result = if pgo {
                    // Leg 1 of the self-profiler: sample hot opcode pairs.
                    // The report prints in the same format as a manual
                    // `--profile-pairs` run (CI diffs the two).
                    let profiled = program
                        .run(cinterp::InterpOptions {
                            profile_pairs: true,
                            ..interp
                        })
                        .map_err(purec::chain::ChainError::Runtime)?;
                    let pairs = profiled.pairs.expect("profiling run yields a pair profile");
                    eprint!(
                        "purec: hot opcode pairs (sampled, top 12):\n{}",
                        pairs.report(12)
                    );
                    if dump_bytecode {
                        eprint!("{}", program.bytecode_profiled(opt_level, &pairs).dump());
                    }
                    // Leg 2: re-optimized with the measured profile
                    // steering superinstruction fusion.
                    program.run_profiled("main", interp, &pairs)
                } else {
                    if dump_bytecode {
                        eprint!("{}", program.bytecode_at(opt_level).dump());
                    }
                    program.run(interp)
                };
                result
                    .map(|result| (out, result))
                    .map_err(purec::chain::ChainError::Runtime)
            });
        // Switch the probes off and export before deciding the exit
        // path, so even trapped runs leave a valid trace behind.
        let trace_data = session.map(cinterp::TraceSession::finish);
        if let (Some(path), Some(data)) = (&trace_path, &trace_data) {
            if let Err(e) = std::fs::write(path, cinterp::chrome_trace_json(data)) {
                eprintln!("purec: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        match outcome {
            Ok((out, result)) => {
                print!("{}", result.output);
                if let Some(p) = &result.pairs {
                    eprint!(
                        "purec: hot opcode pairs (sampled, top 12):\n{}",
                        p.report(12)
                    );
                }
                let spawn_sites: usize = out
                    .program()
                    .resolved()
                    .spawn_sites()
                    .iter()
                    .map(|(_, n)| n)
                    .sum();
                if dump_schedule {
                    for line in &out.schedules {
                        eprintln!("purec: {line}");
                    }
                }
                if stats {
                    eprintln!(
                        "purec: verified pure: {:?}; scops {}; transformed {}; parallel {}; \
                         tiled {}; fused {}; rows hoisted {}; \
                         spawn sites {}; exit {}; \
                         ops {{flops: {}, int_ops: {}, loads: {}, stores: {}, calls: {}, \
                         branches: {}}}; \
                         memo {{hits: {}, misses: {}, evictions: {}}}; \
                         futures {{spawned: {}, inlined: {}, helped: {}}}; \
                         steals {{local_pushes: {}, tasks_stolen: {}}}; \
                         opt {{level: {}, folded: {}, fused: {}, icache_hits: {}}}; \
                         race {{static_skips: {}, dyn_iters: {}}}",
                        out.declared_pure,
                        out.scops_marked,
                        out.regions_transformed,
                        out.regions_parallelized,
                        out.regions_tiled,
                        out.regions_fused,
                        out.rows_hoisted,
                        spawn_sites,
                        result.exit_code,
                        result.counters.flops,
                        result.counters.int_ops,
                        result.counters.loads,
                        result.counters.stores,
                        result.counters.calls,
                        result.counters.branches,
                        result.counters.memo_hits,
                        result.counters.memo_misses,
                        result.counters.memo_evictions,
                        result.counters.futures_spawned,
                        result.counters.futures_inlined,
                        result.counters.futures_helped,
                        result.counters.local_pushes,
                        result.counters.tasks_stolen,
                        opt_level,
                        result.counters.insns_folded,
                        result.counters.insns_fused,
                        result.counters.icache_hits,
                        result.counters.race_static_skips,
                        result.counters.race_dyn_iters,
                    );
                    // Latency histograms and gauges exist only when a
                    // session ran (--trace / --stats-json alongside).
                    if let Some(data) = &trace_data {
                        for (name, h) in &data.metrics.hists {
                            if h.count() > 0 {
                                eprintln!(
                                    "purec: hist {name}: n={} p50<={}ns p99<={}ns",
                                    h.count(),
                                    h.quantile_upper(0.5),
                                    h.quantile_upper(0.99),
                                );
                            }
                        }
                        for (name, g) in &data.metrics.gauges {
                            if g.count > 0 {
                                eprintln!(
                                    "purec: gauge {name}: n={} mean={:.1} max={}",
                                    g.count,
                                    g.mean(),
                                    g.max,
                                );
                            }
                        }
                    }
                }
                if let Some(path) = &stats_json_path {
                    let data = trace_data
                        .as_ref()
                        .expect("--stats-json always runs a session");
                    let n = |v: u64| serde_json::Value::Num(v as f64);
                    let root = serde_json::Value::Object(vec![
                        (
                            "exit_code".to_string(),
                            serde_json::Value::Num(result.exit_code as f64),
                        ),
                        ("opt_level".to_string(), n(opt_level as u64)),
                        (
                            "counters".to_string(),
                            cinterp::counters_json(&result.counters),
                        ),
                        ("metrics".to_string(), cinterp::metrics_json(&data.metrics)),
                        (
                            "chain".to_string(),
                            serde_json::Value::Object(vec![
                                ("scops_marked".to_string(), n(out.scops_marked as u64)),
                                (
                                    "regions_transformed".to_string(),
                                    n(out.regions_transformed as u64),
                                ),
                                (
                                    "regions_parallelized".to_string(),
                                    n(out.regions_parallelized as u64),
                                ),
                                ("regions_tiled".to_string(), n(out.regions_tiled as u64)),
                                ("regions_fused".to_string(), n(out.regions_fused as u64)),
                                ("rows_hoisted".to_string(), n(out.rows_hoisted as u64)),
                                ("spawn_sites".to_string(), n(spawn_sites as u64)),
                                ("analysis_micros".to_string(), n(out.analysis_micros)),
                            ]),
                        ),
                        ("dropped_events".to_string(), n(data.dropped)),
                    ]);
                    let rendered = serde_json::to_string_pretty(&root).expect("stats JSON renders");
                    if let Err(e) = std::fs::write(path, rendered) {
                        eprintln!("purec: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
                std::process::exit(result.exit_code as i32 & 0x7f);
            }
            Err(e) => {
                eprintln!("purec: {e}");
                match &e {
                    purec::chain::ChainError::Compile(d) => {
                        eprint!("{}", d.render_all(&source));
                        std::process::exit(1);
                    }
                    // Resource traps get distinct, documented exit codes so
                    // scripts can tell "the program misbehaved" from "the
                    // governor stopped it".
                    purec::chain::ChainError::Runtime(err) => match err.trap {
                        Some(cinterp::Trap::FuelExhausted) => std::process::exit(97),
                        Some(cinterp::Trap::MemoryLimit) => std::process::exit(98),
                        Some(cinterp::Trap::DepthLimit) => std::process::exit(99),
                        None => std::process::exit(1),
                    },
                }
            }
        }
    }

    match compile(&source, opts) {
        Ok(out) => {
            print!("{}", out.text);
            if dump_bytecode {
                eprint!("{}", out.program().bytecode_at(opt_level).dump());
            }
            if dump_schedule {
                for line in &out.schedules {
                    eprintln!("purec: {line}");
                }
            }
            if stats {
                eprintln!(
                    "purec: verified pure: {:?}; scops {}; transformed {}; parallel {}; \
                     skewed {}; tiled {}; fused {}; rows hoisted {}; calls reinserted {}",
                    out.declared_pure,
                    out.scops_marked,
                    out.regions_transformed,
                    out.regions_parallelized,
                    out.regions_skewed,
                    out.regions_tiled,
                    out.regions_fused,
                    out.rows_hoisted,
                    out.calls_reinserted,
                );
            }
        }
        Err(diags) => {
            eprint!("{}", diags.render_all(&source));
            std::process::exit(1);
        }
    }
}
