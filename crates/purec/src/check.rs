//! `purec check` — run the static analyzer without compiling.
//!
//! Preprocess → parse → purity verification → [`analysis::analyze_unit`]
//! over the source *as written* (hand-authored pragmas included), with
//! human-readable or machine-readable (`--json`, one object per line)
//! output. Exit status 1 iff any error-severity diagnostic fired.

use cfront::diag::{Diagnostics, Severity};
use cfront::parser::parse;
use cfront::span::LineMap;
use purec_core::{verify_unit, PureSet};
use serde_json::Value;

/// Options for one `purec check` invocation.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Seeded pure registry (swap for the `--no-alloc-pure` ablation).
    pub seed: PureSet,
    /// Also report which unannotated functions could be declared pure
    /// (`--infer-pure`).
    pub infer_pure: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            seed: PureSet::seeded(),
            infer_pure: false,
        }
    }
}

/// Everything `purec check` produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Preprocessed text the spans refer to (identical to the input for
    /// directive-free sources).
    pub text: String,
    /// Purity + race + lint diagnostics, in pass order.
    pub diags: Diagnostics,
    /// Unannotated functions that could be declared pure (only populated
    /// with [`CheckOptions::infer_pure`]).
    pub inferred_pure: Vec<String>,
}

impl CheckOutcome {
    pub fn has_errors(&self) -> bool {
        self.diags.has_errors()
    }

    /// Human-readable rendering, one diagnostic per line.
    pub fn render(&self) -> String {
        self.diags.render_all(&self.text)
    }

    /// Machine-readable rendering: one JSON object per line with
    /// `severity`, `code`, `message`, 1-based `line`/`col`, and the byte
    /// span `start`/`end`.
    pub fn render_json(&self) -> String {
        let map = LineMap::new(&self.text);
        let mut out = String::new();
        for d in self.diags.items() {
            let pos = map.line_col(d.span.start);
            let obj = Value::Object(vec![
                ("severity".to_string(), Value::Str(d.severity.to_string())),
                ("code".to_string(), Value::Str(d.code.to_string())),
                ("message".to_string(), Value::Str(d.message.clone())),
                ("line".to_string(), Value::Num(pos.line as f64)),
                ("col".to_string(), Value::Num(pos.col as f64)),
                ("start".to_string(), Value::Num(d.span.start as f64)),
                ("end".to_string(), Value::Num(d.span.end as f64)),
            ]);
            out.push_str(&serde_json::to_string(&obj).expect("render json"));
            out.push('\n');
        }
        out
    }
}

/// Run the checker over raw source text. Parse/preprocess failures are
/// reported through the same diagnostic stream (no panics).
pub fn check_source(source: &str, opts: &CheckOptions) -> CheckOutcome {
    let pp = cprep::preprocess(source, &Default::default());
    let mut diags = pp.diags.clone();
    if pp.diags.has_errors() {
        return CheckOutcome {
            text: pp.text,
            diags,
            inferred_pure: Vec::new(),
        };
    }

    let parsed = parse(&pp.text);
    diags.extend(parsed.diags.clone());
    if parsed.diags.has_errors() {
        return CheckOutcome {
            text: pp.text,
            diags,
            inferred_pure: Vec::new(),
        };
    }

    // Declared-pure verification first: its pure set feeds the race
    // analyzer, and its violations are part of the check output.
    let purity = verify_unit(&parsed.unit, opts.seed.clone());
    diags.extend(purity.diags);

    let report = analysis::analyze_unit(
        &parsed.unit,
        &purity.pure_set,
        &analysis::AnalysisOptions {
            infer_pure: opts.infer_pure,
            no_lints: false,
        },
    );
    diags.extend(report.diags);

    // Keep output deterministic and readable: errors/warnings in source
    // order within each pass is already the case; nothing to sort.
    debug_assert!(diags.items().iter().all(|d| {
        matches!(
            d.severity,
            Severity::Error | Severity::Warning | Severity::Note
        )
    }));

    CheckOutcome {
        text: pp.text,
        diags,
        inferred_pure: report.inferred_pure,
    }
}
