//! The complete extended compiler chain (paper Fig. 1), assembled:
//!
//! ```text
//! source ─PC-PrePro/GCC-E─► purec_core::run_pc_cc   (verify + mark + subst)
//!        ─polycc──────────► polyhedral::run_polycc  (analyze + transform)
//!        ─PC-CC⁻¹─────────► reinsert calls (adapted iterators)
//!        ─lower───────────► pure → const / removed
//!        ─PC-PosPro───────► system includes restored
//! ```
//!
//! The result is standard C with OpenMP pragmas, plus everything needed to
//! *run* it: the lowered unit executes on the interpreter with the omprt
//! parallel runtime.

use analysis::{AnalysisOptions, LoopVerdict};
use cfront::ast::TranslationUnit;
use cfront::diag::Diagnostics;
use cfront::parser::parse;
use cinterp::{InterpOptions, Program, RaceVerdict, RunResult, RuntimeError, VerdictMap};
use polyhedral::{run_polycc, PolyccOptions, PolyccReport, RegionOutcome, HELPER_DEFS};
use purec_core::{finish, run_pc_cc, PcCcOptions, SubstMap};
use std::collections::HashMap;

/// Options for a full chain run.
#[derive(Debug, Clone, Default)]
pub struct ChainOptions {
    pub pc_cc: PcCcOptions,
    pub polycc: PolyccOptions,
    /// Skip the polyhedral stage entirely (`--no-poly`): scop markers stay
    /// in the text as no-op pragmas and every loop executes literally.
    pub no_poly: bool,
    /// Route unmarked bare-body `for` nests whose calls are all verified
    /// pure through the transformer as implicit SCoPs (`--poly-unmarked`).
    pub poly_unmarked: bool,
}

/// Everything the chain produced.
#[derive(Debug)]
pub struct ChainOutput {
    /// Final standard-C text (what would be handed to GCC).
    pub text: String,
    /// The final unit (directly executable by the interpreter).
    pub unit: TranslationUnit,
    /// Functions verified pure, in declaration order.
    pub declared_pure: Vec<String>,
    pub scops_marked: usize,
    pub regions_transformed: usize,
    pub regions_parallelized: usize,
    pub regions_skewed: usize,
    pub regions_tiled: usize,
    /// Adjacent compatible nests merged by the fusion pass (each fusion
    /// removes one parallel-region join barrier).
    pub regions_fused: usize,
    /// Invariant row pointers strength-reduced out of inner loops
    /// (`T* __pc_rowK = X[e];` hoisted to the level where `e` settles).
    pub rows_hoisted: usize,
    /// One human-readable line per region outcome — the transform matrix,
    /// band width and per-region flags — for `--dump-schedule`.
    pub schedules: Vec<String>,
    pub calls_reinserted: usize,
    /// Non-fatal diagnostics accumulated across stages.
    pub diags: Diagnostics,
    /// Static race verdicts for every `omp parallel for` in the final
    /// unit, keyed by the `for` statement's span. `Independent` lets the
    /// engines skip the dynamic race pre-pass; `Racy` is a hard error
    /// under `--race-check`; `Unknown` falls back to the dynamic check.
    pub verdicts: VerdictMap,
    /// Wall time of the always-on static analysis pass, in microseconds
    /// (tracked so the bench harness can assert the pass stays cheap).
    pub analysis_micros: u64,
}

/// Run the whole chain on annotated C source.
///
/// When a [`cinterp::TraceSession`] is active, each pipeline phase is
/// recorded as a span (`phase.parse`, `phase.opt`, `phase.lower`,
/// `phase.analysis`) so compile time shows up alongside run time in the
/// exported Chrome trace.
pub fn compile(source: &str, opts: ChainOptions) -> Result<ChainOutput, Diagnostics> {
    use cinterp::trace::instrument;

    // PC-PrePro + GCC-E + PC-CC.
    let analysis_seed = opts.pc_cc.seed.clone();
    let parse_span = instrument::span("phase.parse", source.len() as u64);
    let pcc = run_pc_cc(source, opts.pc_cc)?;
    drop(parse_span);
    let mut diags = pcc.diags;
    let mut unit = pcc.unit;

    // polycc.
    let opt_span = instrument::span("phase.opt", 0);
    let report = if opts.no_poly {
        PolyccReport::default()
    } else {
        let mut polycc_opts = opts.polycc;
        if opts.poly_unmarked {
            polycc_opts.unmarked = Some(purec_core::verified_pure_set(&pcc.declared_pure));
        }
        run_polycc(&mut unit, polycc_opts)
    };
    drop(opt_span);
    diags.extend(report.diags.clone());

    let regions_transformed = report.transformed_count();
    let regions_parallelized = report.parallelized_count();
    let regions_skewed = report
        .regions
        .iter()
        .filter(|r| matches!(r, RegionOutcome::Transformed { skewed: true, .. }))
        .count();
    let regions_tiled = report
        .regions
        .iter()
        .filter(|r| matches!(r, RegionOutcome::Transformed { tiled: true, .. }))
        .count();
    let regions_fused = report.fused;
    let rows_hoisted = report.rows_hoisted;
    let schedules = render_schedules(&report);

    // Reinsert placeholders per region with that region's iterator map;
    // anything not covered by a transformed region maps identically.
    let lower_span = instrument::span("phase.lower", 0);
    let per_placeholder = report.placeholder_iter_maps();
    let calls_reinserted = reinsert_per_region(&mut unit, &pcc.subst, &per_placeholder);

    // Lowering + PC-PosPro (via purec_core::finish with an empty global
    // map — all placeholders were already handled above).
    let finished = finish(unit, &pcc.subst, &HashMap::new(), &pcc.system_includes);

    // Prepend helper definitions when tiled codegen used floord/ceild.
    let text = if report.needs_helpers {
        let mut t = String::with_capacity(finished.text.len() + HELPER_DEFS.len());
        // Keep includes at the very top.
        let insert_at = finished
            .text
            .find("\n\n")
            .map(|i| i + 2)
            .filter(|_| finished.text.starts_with("#include"))
            .unwrap_or(0);
        t.push_str(&finished.text[..insert_at]);
        t.push_str(HELPER_DEFS);
        t.push_str(&finished.text[insert_at..]);
        t
    } else {
        finished.text
    };

    // The final text must be standard C: reparse to prove it.
    let reparsed = parse(&text);
    drop(lower_span);
    if reparsed.diags.has_errors() {
        let mut d = diags;
        d.extend(reparsed.diags);
        return Err(d);
    }

    // Static race analysis + lints over the reparsed unit — the same AST
    // the engines execute, so verdict spans survive into lowering. The
    // diagnostics are advisory at compile time; Racy verdicts only become
    // hard errors under `--race-check` at run time. (`pure` qualifiers
    // were lowered away above, so the verified set is re-seeded from
    // `declared_pure`.)
    let t0 = std::time::Instant::now();
    let analysis_span = instrument::span("phase.analysis", 0);
    let mut verified = analysis_seed;
    for name in &pcc.declared_pure {
        verified.insert(name.clone());
    }
    let report = analysis::analyze_unit(&reparsed.unit, &verified, &AnalysisOptions::default());
    drop(analysis_span);
    let analysis_micros = t0.elapsed().as_micros() as u64;
    let verdicts: VerdictMap = report
        .loops
        .iter()
        .map(|l| {
            let v = match l.verdict {
                LoopVerdict::Independent => RaceVerdict::Independent,
                LoopVerdict::Racy => RaceVerdict::Racy,
                LoopVerdict::Unknown => RaceVerdict::Unknown,
            };
            (l.span, v)
        })
        .collect();
    diags.extend(report.diags);

    Ok(ChainOutput {
        text,
        unit: reparsed.unit,
        declared_pure: pcc.declared_pure,
        scops_marked: pcc.scops_marked,
        regions_transformed,
        regions_parallelized,
        regions_skewed,
        regions_tiled,
        regions_fused,
        rows_hoisted,
        schedules,
        calls_reinserted,
        diags,
        verdicts,
        analysis_micros,
    })
}

/// Render one summary line per region outcome for `--dump-schedule`.
fn render_schedules(report: &PolyccReport) -> Vec<String> {
    report
        .regions
        .iter()
        .enumerate()
        .map(|(k, r)| match r {
            RegionOutcome::Transformed {
                depth,
                parallelized,
                tiled,
                skewed,
                transform,
                ..
            } => {
                let rows: Vec<String> = transform
                    .matrix
                    .iter()
                    .map(|row| {
                        let cells: Vec<String> = row.iter().map(i64::to_string).collect();
                        format!("[{}]", cells.join(","))
                    })
                    .collect();
                format!(
                    "region {k}: depth={depth} schedule=[{}] band={}{}{}{}",
                    rows.join(" "),
                    transform.band,
                    if *parallelized {
                        " parallel"
                    } else {
                        " sequential"
                    },
                    if *tiled { " tiled" } else { "" },
                    if *skewed { " skewed" } else { "" },
                )
            }
            RegionOutcome::Skipped { reason } => format!("region {k}: skipped ({reason})"),
        })
        .collect()
}

/// Reinsert substituted calls region by region, adapting iterators with
/// each region's own map.
fn reinsert_per_region(
    unit: &mut TranslationUnit,
    subst: &SubstMap,
    per_placeholder: &HashMap<String, HashMap<String, cfront::ast::Expr>>,
) -> usize {
    use cfront::visit::visit_exprs_mut;
    let mut replaced = 0;
    for item in &mut unit.items {
        let cfront::ast::Item::Function(f) = item else {
            continue;
        };
        let Some(body) = &mut f.body else { continue };
        for stmt in &mut body.stmts {
            visit_exprs_mut(stmt, &mut |e| {
                let Some(name) = e.as_ident() else { return };
                let Some(original) = subst.get(name) else {
                    return;
                };
                let mut call = original.clone();
                if let Some(iter_map) = per_placeholder.get(name) {
                    purec_core::rename_iterators(&mut call, iter_map);
                }
                *e = call;
                replaced += 1;
            });
        }
    }
    replaced
}

impl ChainOutput {
    /// Purity verdicts in the form the interpreter consumes; delegates to
    /// [`purec_core::verified_pure_set`] (the single statement of the
    /// declared-implies-verified contract).
    pub fn verified_pure_set(&self) -> std::collections::HashSet<String> {
        purec_core::verified_pure_set(&self.declared_pure)
    }

    /// Build an executable [`Program`] from the transformed unit, passing
    /// the purity verdicts through so the resolved-IR engine can memoize
    /// verified-pure calls, and the static race verdicts so the engines
    /// can skip (or statically fail) the dynamic race check.
    pub fn program(&self) -> Program {
        Program::with_pure_set_and_verdicts(&self.unit, &self.verified_pure_set(), &self.verdicts)
    }
}

/// Compile and execute on the interpreter (for validation at reduced
/// problem sizes). Purity verdicts flow from the PC-CC stage into the
/// interpreter, enabling its pure-call memo cache.
pub fn compile_and_run(
    source: &str,
    chain_opts: ChainOptions,
    interp_opts: InterpOptions,
) -> Result<(ChainOutput, RunResult), ChainError> {
    let out = compile(source, chain_opts).map_err(ChainError::Compile)?;
    let result = out
        .program()
        .run(interp_opts)
        .map_err(ChainError::Runtime)?;
    Ok((out, result))
}

/// Error of [`compile_and_run`].
#[derive(Debug)]
pub enum ChainError {
    Compile(Diagnostics),
    Runtime(RuntimeError),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Compile(d) => write!(f, "compile failed with {} error(s)", d.error_count()),
            ChainError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_chain_end_to_end() {
        let src = apps::matmul::c_source(12);
        let out = compile(&src, ChainOptions::default()).expect("chain");
        assert!(out.regions_parallelized >= 1, "{}", out.text);
        assert!(
            out.text.contains("#pragma omp parallel for"),
            "{}",
            out.text
        );
        assert!(!out.text.contains("pure "), "{}", out.text);
        assert!(!out.text.contains("tmpConst"), "{}", out.text);
        assert!(out.text.starts_with("#include <stdio.h>"));
        // dot's reduction loop is transformed but sequential.
        assert!(out.regions_transformed >= out.regions_parallelized);
    }

    #[test]
    fn matmul_transformed_computes_same_checksum() {
        let n = 10;
        let src = apps::matmul::c_source(n);

        // Original program, interpreted sequentially.
        let orig = parse(&src);
        // The raw source still has `pure`; strip via the chain's lowering
        // by running the full interpreter on the ORIGINAL through PC-CC
        // with no transformation: simplest honest check is chain-vs-chain
        // with threads 1 vs threads 8.
        assert!(!orig.diags.has_errors());

        let (out, seq) = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .expect("seq run");
        let (_, par) = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 8,
                ..Default::default()
            },
        )
        .expect("par run");
        assert_eq!(seq.output, par.output, "parallel must equal sequential");
        // Cross-check against the native Rust implementation.
        let expected = apps::matmul::c_source_checksum(n);
        let line = format!("checksum={expected:.1}\n");
        assert_eq!(seq.output, line, "transformed C: {}", out.text);
    }

    #[test]
    fn satellite_chain_parallelizes_pixel_loop() {
        let src = apps::satellite::c_source(6, 6);
        let out = compile(&src, ChainOptions::default()).expect("chain");
        assert!(out.regions_parallelized >= 1);
        let (_, run) = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 4,
                race_check: true,
                ..Default::default()
            },
        )
        .expect("runs in parallel with race check");
        assert!(run.output.starts_with("aod="), "{}", run.output);
    }

    #[test]
    fn lama_chain_runs_and_matches_across_threads() {
        let src = apps::lama::c_source(48, 7);
        let (_, seq) =
            compile_and_run(&src, ChainOptions::default(), InterpOptions::default()).expect("seq");
        let (_, par) = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 8,
                ..Default::default()
            },
        )
        .expect("par");
        assert_eq!(seq.output, par.output);
        assert!(seq.output.starts_with("spmv="));
    }

    #[test]
    fn heat_chain_transforms_children_of_time_loop() {
        let src = apps::heat::c_source(12, 3);
        let out = compile(&src, ChainOptions::default()).expect("chain");
        // Time loop stays; spatial nests are parallelized.
        assert!(
            out.text.contains("for (int t = 0; t < 3; t++)"),
            "{}",
            out.text
        );
        assert!(out.regions_parallelized >= 2, "{}", out.text);
        let (_, seq) =
            compile_and_run(&src, ChainOptions::default(), InterpOptions::default()).expect("seq");
        let (_, par) = compile_and_run(
            &src,
            ChainOptions::default(),
            InterpOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .expect("par");
        assert_eq!(seq.output, par.output);
    }

    #[test]
    fn listing5_program_is_rejected_by_the_chain() {
        let src = "\
pure int func(pure int* a, int idx) { return a[idx - 1] + a[idx]; }
int main() {
    int array[100];
    for (int i = 1; i < 100; i++)
        array[i] = func((pure int*)array, i);
    return 0;
}
";
        let err = compile(src, ChainOptions::default()).unwrap_err();
        assert!(err.has_code(cfront::diag::Code::PureParamWrittenInLoop));
    }

    #[test]
    fn sica_chain_tiles_matmul() {
        let src = apps::matmul::c_source(64);
        let opts = ChainOptions {
            pc_cc: PcCcOptions::default(),
            polycc: PolyccOptions {
                codegen: polyhedral::CodegenOptions::default(),
                sica: Some(polyhedral::SicaParams::default()),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(&src, opts).expect("chain");
        assert!(out.regions_tiled >= 1, "{}", out.text);
        assert!(out.text.contains("#pragma omp simd"), "{}", out.text);
        assert!(out.text.contains("__pc_"), "{}", out.text);
    }
}
