//! # purec — driver of the `pure-c` extended compiler chain
//!
//! Combines all stages (Fig. 1 of the paper) into [`chain::compile`] /
//! [`chain::compile_and_run`] and exposes the `purec` CLI binary.

pub mod chain;
pub mod check;

pub use chain::{compile, compile_and_run, ChainError, ChainOptions, ChainOutput};
pub use check::{check_source, CheckOptions, CheckOutcome};
