//! Macro table and expansion engine for the GCC-E emulation.
//!
//! Supports object-like (`#define N 4096`) and function-like
//! (`#define MIN(a,b) ...`) macros with recursive expansion, guarding
//! against self-recursion the same way a conforming preprocessor does
//! (a macro is not re-expanded inside its own expansion).

use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, PartialEq)]
pub enum Macro {
    Object(String),
    Function { params: Vec<String>, body: String },
}

#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    defs: HashMap<String, Macro>,
}

impl MacroTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse and register a `#define` body (the text after `#define `).
    pub fn define(&mut self, rest: &str) -> Result<(), String> {
        let rest = rest.trim();
        let name_end = rest
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        if name_end == 0 {
            return Err(format!("malformed #define: `{rest}`"));
        }
        let name = &rest[..name_end];
        let after = &rest[name_end..];

        // Function-like only when `(` directly follows the name.
        if let Some(stripped) = after.strip_prefix('(') {
            let close = stripped
                .find(')')
                .ok_or_else(|| format!("unterminated parameter list in #define {name}"))?;
            let params: Vec<String> = if stripped[..close].trim().is_empty() {
                Vec::new()
            } else {
                stripped[..close]
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .collect()
            };
            for p in &params {
                if p.is_empty() || !p.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return Err(format!("bad macro parameter `{p}` in #define {name}"));
                }
            }
            let body = stripped[close + 1..].trim().to_string();
            self.defs
                .insert(name.to_string(), Macro::Function { params, body });
        } else {
            self.defs
                .insert(name.to_string(), Macro::Object(after.trim().to_string()));
        }
        Ok(())
    }

    pub fn undef(&mut self, name: &str) {
        self.defs.remove(name);
    }

    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    pub fn get(&self, name: &str) -> Option<&Macro> {
        self.defs.get(name)
    }

    /// Expand all macros in one source line. String and char literals are
    /// left untouched.
    pub fn expand_line(&self, line: &str) -> String {
        let mut hide = HashSet::new();
        self.expand(line, &mut hide, 0)
    }

    fn expand(&self, text: &str, hide: &mut HashSet<String>, depth: usize) -> String {
        if depth > 64 {
            return text.to_string(); // runaway recursion guard
        }
        let bytes = text.as_bytes();
        let mut out = String::with_capacity(text.len());
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            // Skip string literals verbatim.
            if c == b'"' || c == b'\'' {
                let quote = c;
                out.push(c as char);
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    out.push(b as char);
                    i += 1;
                    if b == b'\\' && i < bytes.len() {
                        out.push(bytes[i] as char);
                        i += 1;
                        continue;
                    }
                    if b == quote {
                        break;
                    }
                }
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                if hide.contains(word) {
                    out.push_str(word);
                    continue;
                }
                match self.defs.get(word) {
                    Some(Macro::Object(body)) => {
                        hide.insert(word.to_string());
                        let expanded = self.expand(body, hide, depth + 1);
                        hide.remove(word);
                        out.push_str(&expanded);
                    }
                    Some(Macro::Function { params, body }) => {
                        // Only expands when immediately invoked.
                        let mut j = i;
                        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j] == b'(' {
                            match split_args(&text[j..]) {
                                Some((args, consumed))
                                    if args.len() == params.len()
                                        || (params.is_empty()
                                            && args.len() == 1
                                            && args[0].trim().is_empty()) =>
                                {
                                    i = j + consumed;
                                    let mut substituted = String::with_capacity(body.len());
                                    substitute_params(body, params, &args, &mut substituted);
                                    hide.insert(word.to_string());
                                    let expanded = self.expand(&substituted, hide, depth + 1);
                                    hide.remove(word);
                                    out.push_str(&expanded);
                                }
                                _ => {
                                    // Arity mismatch or unbalanced parens:
                                    // leave the call verbatim (matches GCC's
                                    // behaviour of reporting later).
                                    out.push_str(word);
                                }
                            }
                        } else {
                            out.push_str(word);
                        }
                    }
                    None => out.push_str(word),
                }
                continue;
            }
            out.push(c as char);
            i += 1;
        }
        out
    }
}

/// Split `(...)` at the start of `text` into comma-separated top-level
/// arguments; returns the args and the number of bytes consumed including
/// both parentheses. Returns `None` on unbalanced parens.
fn split_args(text: &str) -> Option<(Vec<String>, usize)> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes.first(), Some(&b'('));
    let mut depth = 0usize;
    let mut args = Vec::new();
    let mut current = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '(' => {
                depth += 1;
                if depth > 1 {
                    current.push(c);
                }
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    args.push(current.trim().to_string());
                    return Some((args, i + 1));
                }
                current.push(c);
            }
            ',' if depth == 1 => {
                args.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
        i += 1;
    }
    None
}

/// Replace whole-word occurrences of each parameter with the raw argument
/// tokens (standard C behaviour — bodies are expected to parenthesise).
fn substitute_params(body: &str, params: &[String], args: &[String], out: &mut String) {
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &body[start..i];
            match params.iter().position(|p| p == word) {
                Some(idx) => out.push_str(args.get(idx).map(String::as_str).unwrap_or("")),
                None => out.push_str(word),
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(defs: &[&str]) -> MacroTable {
        let mut t = MacroTable::new();
        for d in defs {
            t.define(d).unwrap();
        }
        t
    }

    #[test]
    fn object_macro_simple() {
        let t = table(&["N 4096"]);
        assert_eq!(t.expand_line("int a[N];"), "int a[4096];");
    }

    #[test]
    fn object_macro_word_boundaries() {
        let t = table(&["N 10"]);
        assert_eq!(t.expand_line("int NN = N + xN;"), "int NN = 10 + xN;");
    }

    #[test]
    fn nested_object_macros() {
        let t = table(&["A B", "B C", "C 42"]);
        assert_eq!(t.expand_line("A"), "42");
    }

    #[test]
    fn self_recursive_macro_terminates() {
        let t = table(&["X X + 1"]);
        assert_eq!(t.expand_line("X"), "X + 1");
    }

    #[test]
    fn mutually_recursive_macros_terminate() {
        let t = table(&["A B", "B A"]);
        // A → B → A (hidden) stops.
        assert_eq!(t.expand_line("A"), "A");
    }

    #[test]
    fn function_macro_basic() {
        let t = table(&["SQR(x) ((x) * (x))"]);
        assert_eq!(t.expand_line("y = SQR(a + 1);"), "y = ((a + 1) * (a + 1));");
    }

    #[test]
    fn function_macro_multiple_params() {
        let t = table(&["MAX(a, b) ((a) > (b) ? (a) : (b))"]);
        assert_eq!(
            t.expand_line("m = MAX(x, y + 2);"),
            "m = ((x) > (y + 2) ? (x) : (y + 2));"
        );
    }

    #[test]
    fn function_macro_nested_call_args() {
        let t = table(&["F(a) (a)", "G(a, b) (a + b)"]);
        assert_eq!(t.expand_line("G(F(1), F(2))"), "((1) + (2))");
    }

    #[test]
    fn function_macro_without_parens_not_expanded() {
        let t = table(&["F(a) (a)"]);
        assert_eq!(t.expand_line("int F;"), "int F;");
    }

    #[test]
    fn strings_are_not_expanded() {
        let t = table(&["N 4"]);
        assert_eq!(
            t.expand_line("printf(\"N = %d\", N);"),
            "printf(\"N = %d\", 4);"
        );
    }

    #[test]
    fn char_literals_are_not_expanded() {
        let t = table(&["N 4"]);
        assert_eq!(t.expand_line("c = 'N' + N;"), "c = 'N' + 4;");
    }

    #[test]
    fn zero_arg_function_macro() {
        let t = table(&["PI() 3.14"]);
        assert_eq!(t.expand_line("x = PI();"), "x = 3.14;");
    }

    #[test]
    fn define_rejects_garbage() {
        let mut t = MacroTable::new();
        assert!(t.define("").is_err());
        assert!(t.define("BAD(a").is_err());
    }

    #[test]
    fn undef_then_not_expanded() {
        let mut t = table(&["N 4"]);
        t.undef("N");
        assert_eq!(t.expand_line("a[N]"), "a[N]");
    }

    #[test]
    fn empty_object_macro_expands_to_nothing() {
        let t = table(&["GUARD"]);
        assert!(t.is_defined("GUARD"));
        assert_eq!(t.expand_line("GUARD int a;"), " int a;");
    }
}
