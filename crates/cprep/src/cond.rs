//! Evaluator for `#if` / `#elif` conditions.
//!
//! Grammar: C integer constant expressions with `defined(NAME)` /
//! `defined NAME`, the usual arithmetic/relational/logical/bitwise
//! operators and parentheses. Undefined identifiers evaluate to 0, as in
//! the C standard.

use crate::macros::MacroTable;

/// Evaluate a condition text to an integer (C semantics: nonzero = true).
pub fn eval(expr: &str, macros: &MacroTable) -> Result<i64, String> {
    // `defined(...)` must be resolved *before* macro expansion.
    let resolved = resolve_defined(expr, macros)?;
    let expanded = macros.expand_line(&resolved);
    let toks = tokenize(&expanded)?;
    let mut p = CondParser { toks, pos: 0 };
    let v = p.parse_expr(0)?;
    if p.pos != p.toks.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            &p.toks[p.pos..]
        ));
    }
    Ok(v)
}

fn resolve_defined(expr: &str, macros: &MacroTable) -> Result<String, String> {
    let mut out = String::with_capacity(expr.len());
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if expr[i..].starts_with("defined") {
            let before_ok =
                i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let after = i + "defined".len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            if before_ok && after_ok {
                i = after;
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                let (name, next) = if i < bytes.len() && bytes[i] == b'(' {
                    let close = expr[i..].find(')').ok_or("unterminated defined(")? + i;
                    (expr[i + 1..close].trim().to_string(), close + 1)
                } else {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    (expr[start..i].to_string(), i)
                };
                if name.is_empty() {
                    return Err("defined without a name".to_string());
                }
                out.push_str(if macros.is_defined(&name) { "1" } else { "0" });
                i = next;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(i64),
    Op(&'static str),
    LParen,
    RParen,
}

fn tokenize(s: &str) -> Result<Vec<Tok>, String> {
    let bytes = s.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&s[start + 2..i], 16).map_err(|e| e.to_string())?;
                toks.push(Tok::Num(v));
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = s[start..i].parse().map_err(|_| "bad number")?;
                toks.push(Tok::Num(v));
            }
            // Integer suffixes.
            while i < bytes.len() && matches!(bytes[i], b'u' | b'U' | b'l' | b'L') {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            // Undefined identifier → 0 per C semantics.
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok::Num(0));
            continue;
        }
        let two = if i + 1 < bytes.len() {
            &s[i..i + 2]
        } else {
            ""
        };
        let op2 = ["&&", "||", "==", "!=", "<=", ">=", "<<", ">>"];
        if let Some(op) = op2.iter().find(|o| **o == two) {
            toks.push(Tok::Op(op));
            i += 2;
            continue;
        }
        match c {
            '(' => toks.push(Tok::LParen),
            ')' => toks.push(Tok::RParen),
            '+' => toks.push(Tok::Op("+")),
            '-' => toks.push(Tok::Op("-")),
            '*' => toks.push(Tok::Op("*")),
            '/' => toks.push(Tok::Op("/")),
            '%' => toks.push(Tok::Op("%")),
            '<' => toks.push(Tok::Op("<")),
            '>' => toks.push(Tok::Op(">")),
            '!' => toks.push(Tok::Op("!")),
            '~' => toks.push(Tok::Op("~")),
            '&' => toks.push(Tok::Op("&")),
            '|' => toks.push(Tok::Op("|")),
            '^' => toks.push(Tok::Op("^")),
            other => return Err(format!("unexpected character `{other}`")),
        }
        i += 1;
    }
    Ok(toks)
}

struct CondParser {
    toks: Vec<Tok>,
    pos: usize,
}

fn prec(op: &str) -> Option<u8> {
    Some(match op {
        "*" | "/" | "%" => 10,
        "+" | "-" => 9,
        "<<" | ">>" => 8,
        "<" | ">" | "<=" | ">=" => 7,
        "==" | "!=" => 6,
        "&" => 5,
        "^" => 4,
        "|" => 3,
        "&&" => 2,
        "||" => 1,
        _ => return None,
    })
}

impl CondParser {
    fn peek_op(&self) -> Option<&'static str> {
        match self.toks.get(self.pos) {
            Some(Tok::Op(op)) => Some(op),
            _ => None,
        }
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<i64, String> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek_op() {
            let Some(p) = prec(op) else { break };
            if p < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_expr(p + 1)?;
            lhs = apply(op, lhs, rhs)?;
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<i64, String> {
        match self.toks.get(self.pos).cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(Tok::Op("-")) => {
                self.pos += 1;
                Ok(-self.parse_unary()?)
            }
            Some(Tok::Op("+")) => {
                self.pos += 1;
                self.parse_unary()
            }
            Some(Tok::Op("!")) => {
                self.pos += 1;
                Ok((self.parse_unary()? == 0) as i64)
            }
            Some(Tok::Op("~")) => {
                self.pos += 1;
                Ok(!self.parse_unary()?)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let v = self.parse_expr(0)?;
                match self.toks.get(self.pos) {
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    _ => Err("missing `)`".to_string()),
                }
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

fn apply(op: &str, l: i64, r: i64) -> Result<i64, String> {
    Ok(match op {
        "*" => l.wrapping_mul(r),
        "/" => {
            if r == 0 {
                return Err("division by zero in #if".to_string());
            }
            l / r
        }
        "%" => {
            if r == 0 {
                return Err("modulo by zero in #if".to_string());
            }
            l % r
        }
        "+" => l.wrapping_add(r),
        "-" => l.wrapping_sub(r),
        "<<" => l.wrapping_shl(r as u32),
        ">>" => l.wrapping_shr(r as u32),
        "<" => (l < r) as i64,
        ">" => (l > r) as i64,
        "<=" => (l <= r) as i64,
        ">=" => (l >= r) as i64,
        "==" => (l == r) as i64,
        "!=" => (l != r) as i64,
        "&" => l & r,
        "^" => l ^ r,
        "|" => l | r,
        "&&" => ((l != 0) && (r != 0)) as i64,
        "||" => ((l != 0) || (r != 0)) as i64,
        other => return Err(format!("unknown operator `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(expr: &str) -> i64 {
        eval(expr, &MacroTable::new()).unwrap()
    }

    fn ev_with(expr: &str, defs: &[&str]) -> i64 {
        let mut t = MacroTable::new();
        for d in defs {
            t.define(d).unwrap();
        }
        eval(expr, &t).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1 + 2 * 3"), 7);
        assert_eq!(ev("(1 + 2) * 3"), 9);
        assert_eq!(ev("10 / 3"), 3);
        assert_eq!(ev("10 % 3"), 1);
        assert_eq!(ev("1 << 6"), 64);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 > 2"), 1);
        assert_eq!(ev("3 > 2 && 1 < 2"), 1);
        assert_eq!(ev("0 || 2"), 1);
        assert_eq!(ev("!5"), 0);
        assert_eq!(ev("!0"), 1);
    }

    #[test]
    fn undefined_identifiers_are_zero() {
        assert_eq!(ev("FOO"), 0);
        assert_eq!(ev("FOO + 1"), 1);
    }

    #[test]
    fn defined_operator_both_forms() {
        assert_eq!(ev_with("defined(X)", &["X 1"]), 1);
        assert_eq!(ev_with("defined X", &["X 1"]), 1);
        assert_eq!(ev_with("defined(Y)", &["X 1"]), 0);
        assert_eq!(ev_with("!defined(Y)", &["X 1"]), 1);
    }

    #[test]
    fn macros_expand_inside_conditions() {
        assert_eq!(ev_with("CORES > 32", &["CORES 64"]), 1);
        assert_eq!(ev_with("CORES * 2", &["CORES 8"]), 16);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(eval("1 / 0", &MacroTable::new()).is_err());
    }

    #[test]
    fn unary_minus_and_bitnot() {
        assert_eq!(ev("-3 + 5"), 2);
        assert_eq!(ev("~0"), -1);
        assert_eq!(ev("-(2 + 2)"), -4);
    }

    #[test]
    fn hex_and_suffixed_literals() {
        assert_eq!(ev("0x10"), 16);
        assert_eq!(ev("1024UL"), 1024);
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(eval("1 2", &MacroTable::new()).is_err());
    }
}
