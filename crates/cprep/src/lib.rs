//! # cprep — the preprocessing stages of the `pure-c` compiler chain
//!
//! The paper's chain (Fig. 1) brackets the core pass with three text-level
//! stages:
//!
//! 1. **PC-PrePro** — remove *system* includes (`#include <...>`) so the
//!    parser never sees libc headers, remembering them for later;
//! 2. **GCC-E** — resolve the remaining (local) includes and preprocessor
//!    directives. We emulate the subset needed here: `#include "..."`,
//!    object- and function-like `#define`, `#undef`, and the conditional
//!    family `#if/#ifdef/#ifndef/#elif/#else/#endif` with `defined(...)`;
//! 3. **PC-PosPro** — re-insert the stripped system includes before the
//!    final compile.
//!
//! `#pragma` lines always pass through untouched — they carry the SCoP
//! markers and OpenMP annotations the rest of the chain depends on.

pub mod cond;
pub mod macros;

use cfront::diag::{Code, Diagnostics};
use cfront::span::Span;
use macros::MacroTable;
use std::collections::BTreeMap;

/// Outcome of [`preprocess`]: the fully expanded text plus the stripped
/// system includes (in original order) for PC-PosPro.
#[derive(Debug, Clone)]
pub struct PreprocessOutput {
    pub text: String,
    pub system_includes: Vec<String>,
    pub diags: Diagnostics,
}

/// In-memory header store standing in for the filesystem include path.
#[derive(Debug, Clone, Default)]
pub struct IncludeMap {
    files: BTreeMap<String, String>,
}

impl IncludeMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, content: impl Into<String>) {
        self.files.insert(name.into(), content.into());
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(|s| s.as_str())
    }
}

/// Stage 1+2: PC-PrePro (strip system includes) followed by the GCC-E
/// emulation (local includes, macros, conditionals).
pub fn preprocess(src: &str, includes: &IncludeMap) -> PreprocessOutput {
    let mut pp = Preprocessor {
        includes,
        macros: MacroTable::new(),
        system_includes: Vec::new(),
        diags: Diagnostics::new(),
        depth: 0,
    };
    let text = pp.process(src);
    PreprocessOutput {
        text,
        system_includes: pp.system_includes,
        diags: pp.diags,
    }
}

/// Stage 3: PC-PosPro — put the system includes back on top of the final,
/// transformed source so the (conceptual) system compiler sees them.
pub fn postprocess(transformed: &str, system_includes: &[String]) -> String {
    let mut out = String::with_capacity(
        transformed.len() + system_includes.iter().map(|s| s.len() + 12).sum::<usize>(),
    );
    for inc in system_includes {
        out.push_str("#include <");
        out.push_str(inc);
        out.push_str(">\n");
    }
    if !system_includes.is_empty() {
        out.push('\n');
    }
    out.push_str(transformed);
    out
}

struct Preprocessor<'a> {
    includes: &'a IncludeMap,
    macros: MacroTable,
    system_includes: Vec<String>,
    diags: Diagnostics,
    depth: usize,
}

/// State of one `#if` nesting level.
#[derive(Debug, Clone, Copy)]
struct CondFrame {
    /// Are we currently emitting lines in this frame?
    active: bool,
    /// Has any branch of this if-chain been taken yet?
    taken: bool,
    /// Was the *enclosing* context active? (inactive outer disables all)
    parent_active: bool,
}

impl<'a> Preprocessor<'a> {
    fn process(&mut self, src: &str) -> String {
        if self.depth > 32 {
            self.diags.error(
                Code::PpMissingInclude,
                Span::DUMMY,
                "include nesting too deep (cycle?)",
            );
            return String::new();
        }
        let mut out = String::with_capacity(src.len());
        let mut stack: Vec<CondFrame> = Vec::new();

        // Handle backslash line continuations up front.
        let joined = src.replace("\\\n", " ");

        for line in joined.lines() {
            let trimmed = line.trim_start();
            let active = stack.iter().all(|f| f.active);

            if let Some(directive) = trimmed.strip_prefix('#') {
                let directive = directive.trim();
                let (name, rest) = split_directive(directive);
                match name {
                    "include" if active => self.handle_include(rest, &mut out),
                    "define" if active => {
                        if let Err(msg) = self.macros.define(rest) {
                            self.diags.error(Code::PpBadDirective, Span::DUMMY, msg);
                        }
                    }
                    "undef" if active => {
                        self.macros.undef(rest.trim());
                    }
                    "ifdef" => {
                        let cond = self.macros.is_defined(rest.trim());
                        stack.push(CondFrame {
                            active: active && cond,
                            taken: cond,
                            parent_active: active,
                        });
                    }
                    "ifndef" => {
                        let cond = !self.macros.is_defined(rest.trim());
                        stack.push(CondFrame {
                            active: active && cond,
                            taken: cond,
                            parent_active: active,
                        });
                    }
                    "if" => {
                        let cond = self.eval_condition(rest);
                        stack.push(CondFrame {
                            active: active && cond,
                            taken: cond,
                            parent_active: active,
                        });
                    }
                    "elif" => match stack.last() {
                        Some(frame) => {
                            if frame.taken {
                                stack.last_mut().expect("nonempty").active = false;
                            } else {
                                let parent = frame.parent_active;
                                let cond = self.eval_condition(rest);
                                let frame = stack.last_mut().expect("nonempty");
                                frame.active = parent && cond;
                                frame.taken = cond;
                            }
                        }
                        None => self.unbalanced("elif"),
                    },
                    "else" => match stack.last_mut() {
                        Some(frame) => {
                            frame.active = frame.parent_active && !frame.taken;
                            frame.taken = true;
                        }
                        None => self.unbalanced("else"),
                    },
                    "endif" => {
                        if stack.pop().is_none() {
                            self.unbalanced("endif");
                        }
                    }
                    "pragma" => {
                        if active {
                            out.push_str(line.trim_start());
                            out.push('\n');
                        }
                    }
                    "error" => {
                        if active {
                            self.diags.error(
                                Code::PpBadDirective,
                                Span::DUMMY,
                                format!("#error: {rest}"),
                            );
                        }
                    }
                    _ if !active => {} // ignore directives in dead branches
                    other => {
                        self.diags.error(
                            Code::PpBadDirective,
                            Span::DUMMY,
                            format!("unsupported preprocessor directive `#{other}`"),
                        );
                    }
                }
                continue;
            }

            if active {
                out.push_str(&self.macros.expand_line(line));
                out.push('\n');
            }
        }

        if !stack.is_empty() {
            self.diags.error(
                Code::PpUnbalancedConditional,
                Span::DUMMY,
                "unterminated conditional block (missing #endif)",
            );
        }
        out
    }

    fn unbalanced(&mut self, what: &str) {
        self.diags.error(
            Code::PpUnbalancedConditional,
            Span::DUMMY,
            format!("#{what} without matching #if"),
        );
    }

    fn handle_include(&mut self, rest: &str, out: &mut String) {
        let rest = rest.trim();
        if let Some(name) = rest.strip_prefix('<').and_then(|r| r.strip_suffix('>')) {
            // PC-PrePro: system includes are stripped and remembered.
            self.system_includes.push(name.trim().to_string());
        } else if let Some(name) = rest.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
            match self.includes.get(name.trim()) {
                Some(content) => {
                    let content = content.to_string();
                    self.depth += 1;
                    let expanded = self.process(&content);
                    self.depth -= 1;
                    out.push_str(&expanded);
                }
                None => {
                    self.diags.error(
                        Code::PpMissingInclude,
                        Span::DUMMY,
                        format!("include file \"{name}\" not found"),
                    );
                }
            }
        } else {
            self.diags.error(
                Code::PpBadDirective,
                Span::DUMMY,
                format!("malformed #include: {rest}"),
            );
        }
    }

    fn eval_condition(&mut self, expr: &str) -> bool {
        match cond::eval(expr, &self.macros) {
            Ok(v) => v != 0,
            Err(msg) => {
                self.diags.error(
                    Code::PpBadDirective,
                    Span::DUMMY,
                    format!("cannot evaluate #if condition `{expr}`: {msg}"),
                );
                false
            }
        }
    }
}

fn split_directive(directive: &str) -> (&str, &str) {
    match directive.find(|c: char| c.is_whitespace()) {
        Some(i) => (&directive[..i], directive[i..].trim_start()),
        None => (directive, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> PreprocessOutput {
        preprocess(src, &IncludeMap::new())
    }

    #[test]
    fn strips_system_includes_and_remembers_them() {
        let out = pp("#include <stdio.h>\n#include <stdlib.h>\nint main() { return 0; }\n");
        assert!(!out.diags.has_errors());
        assert_eq!(out.system_includes, vec!["stdio.h", "stdlib.h"]);
        assert!(!out.text.contains("include"));
        assert!(out.text.contains("int main()"));
    }

    #[test]
    fn postprocess_reinserts_system_includes() {
        let final_text = postprocess("int main() { return 0; }\n", &["stdio.h".to_string()]);
        assert!(final_text.starts_with("#include <stdio.h>\n"));
        assert!(final_text.contains("int main()"));
    }

    #[test]
    fn resolves_local_includes() {
        let mut inc = IncludeMap::new();
        inc.insert("defs.h", "#define N 16\nint helper(int);\n");
        let out = preprocess("#include \"defs.h\"\nint a[N];\n", &inc);
        assert!(!out.diags.has_errors(), "{:?}", out.diags.items());
        assert!(out.text.contains("int helper(int);"));
        assert!(out.text.contains("int a[16];"));
    }

    #[test]
    fn missing_local_include_is_an_error() {
        let out = pp("#include \"nope.h\"\n");
        assert!(out.diags.has_errors());
        assert!(out.diags.has_code(Code::PpMissingInclude));
    }

    #[test]
    fn object_macros_expand() {
        let out = pp("#define SIZE 4096\nfloat m[SIZE][SIZE];\n");
        assert_eq!(out.text.trim(), "float m[4096][4096];");
    }

    #[test]
    fn function_macros_expand_with_args() {
        let out = pp("#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint x = MIN(p + 1, q);\n");
        assert_eq!(out.text.trim(), "int x = ((p + 1) < (q) ? (p + 1) : (q));");
    }

    #[test]
    fn ifdef_blocks_select_branches() {
        let src = "#define FAST\n#ifdef FAST\nint speed = 2;\n#else\nint speed = 1;\n#endif\n";
        let out = pp(src);
        assert!(out.text.contains("speed = 2"));
        assert!(!out.text.contains("speed = 1"));
    }

    #[test]
    fn ifndef_and_nested_conditionals() {
        let src = "\
#ifndef GUARD
#define GUARD
#ifdef INNER
int inner = 1;
#else
int outer = 1;
#endif
#endif
";
        let out = pp(src);
        assert!(out.text.contains("outer"));
        assert!(!out.text.contains("inner = 1"));
    }

    #[test]
    fn if_with_arithmetic_and_defined() {
        let src = "\
#define CORES 64
#if defined(CORES) && CORES > 32
int big = 1;
#elif CORES > 8
int mid = 1;
#else
int small = 1;
#endif
";
        let out = pp(src);
        assert!(out.text.contains("big"), "{}", out.text);
        assert!(!out.text.contains("mid"));
        assert!(!out.text.contains("small"));
    }

    #[test]
    fn elif_chain_takes_first_true_branch() {
        let src = "\
#define V 2
#if V == 1
int one;
#elif V == 2
int two;
#elif V == 3
int three;
#else
int other;
#endif
";
        let out = pp(src);
        assert!(out.text.contains("two"));
        assert!(!out.text.contains("one;"));
        assert!(!out.text.contains("three"));
        assert!(!out.text.contains("other"));
    }

    #[test]
    fn pragmas_pass_through() {
        let out = pp("#pragma scop\nfor (;;) ;\n#pragma endscop\n");
        assert!(out.text.contains("#pragma scop"));
        assert!(out.text.contains("#pragma endscop"));
    }

    #[test]
    fn unbalanced_endif_reported() {
        let out = pp("#endif\n");
        assert!(out.diags.has_code(Code::PpUnbalancedConditional));
        let out2 = pp("#ifdef X\nint a;\n");
        assert!(out2.diags.has_code(Code::PpUnbalancedConditional));
    }

    #[test]
    fn undef_removes_macro() {
        let out = pp("#define A 1\n#undef A\n#ifdef A\nint yes;\n#else\nint no;\n#endif\n");
        assert!(out.text.contains("no"));
    }

    #[test]
    fn dead_branch_directives_are_ignored() {
        let out = pp("#ifdef NOPE\n#include \"missing.h\"\n#define X 1\n#endif\nint a;\n");
        assert!(!out.diags.has_errors());
        assert!(out.text.contains("int a;"));
    }

    #[test]
    fn line_continuations_join() {
        let out = pp("#define LONG(a) \\\n ((a) * 2)\nint x = LONG(3);\n");
        assert_eq!(out.text.trim(), "int x = ((3) * 2);");
    }

    #[test]
    fn error_directive_reports() {
        let out = pp("#error unsupported platform\n");
        assert!(out.diags.has_errors());
    }

    #[test]
    fn full_chain_pre_and_post() {
        let src = "#include <math.h>\n#define N 8\nfloat grid[N];\n";
        let out = pp(src);
        let final_text = postprocess(&out.text, &out.system_includes);
        assert!(final_text.starts_with("#include <math.h>"));
        assert!(final_text.contains("float grid[8];"));
    }
}
