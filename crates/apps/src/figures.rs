//! Figure regeneration: the paper's evaluation series (Figs. 3–11) from
//! the machine model, at paper scale (4096² matrices, 200 time steps,
//! 217 918-row pwtk-like matrix, 1–64 cores, GCC vs ICC).
//!
//! Calibration anchors (paper values the model is tuned to):
//!
//! * matmul sequential GCC 22.17 s (Sect. 4.3.1);
//! * heat sequential 34.14 s GCC / 31.32 s ICC (Sect. 4.3.2);
//! * heat pure-vs-PluTo instruction ratio 87.8 G / 47.5 G ≈ 1.85 and loop
//!   time ratio 1/0.64 (Sect. 4.3.2);
//! * MKL 7.28× faster than pure at 1 core, 5.82× at 64 (Sect. 4.3.1);
//! * LAMA auto-vs-manual gap ≤ 8·10⁻⁴ s (Sect. 4.3.4).
//!
//! Everything else follows from the mechanisms in `machine::sim`
//! (first-touch NUMA, bandwidth saturation, call overhead, schedule
//! imbalance, dequeue contention, vectorization policy).

use machine::{region_time, Compiler, CostProfile, Machine, OmpSchedule, Variant, Workload};
use serde::{Deserialize, Serialize};

/// Core counts of the paper's scaling runs (2⁰ … 2⁶).
pub const CORES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One plotted line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    /// `(cores, seconds)` pairs.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    pub fn at(&self, cores: usize) -> f64 {
        self.points
            .iter()
            .find(|(c, _)| *c == cores)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN)
    }

    /// Derived speedup series against a scalar baseline.
    pub fn speedup_against(&self, t_seq: f64) -> Series {
        Series {
            label: self.label.clone(),
            points: self.points.iter().map(|(c, t)| (*c, t_seq / t)).collect(),
        }
    }
}

/// One regenerated figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    pub id: String,
    pub title: String,
    pub ylabel: String,
    /// Sequential baselines referenced by the figure (label, seconds).
    pub baselines: Vec<(String, f64)>,
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (the harness's stdout form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for (label, secs) in &self.baselines {
            out.push_str(&format!("baseline {label}: {secs:.4}\n"));
        }
        out.push_str(&format!("{:<26}", "series \\ cores"));
        for c in CORES {
            out.push_str(&format!("{c:>10}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<26}", s.label));
            for c in CORES {
                let v = s.at(c);
                if v.is_nan() {
                    out.push_str(&format!("{:>10}", "-"));
                } else if self.ylabel.contains("speedup") {
                    out.push_str(&format!("{v:>10.2}"));
                } else {
                    out.push_str(&format!("{v:>10.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    pub fn find(&self, label: &str) -> &Series {
        self.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("series '{label}' missing from {}", self.id))
    }
}

fn m() -> Machine {
    Machine::opteron_6272_quad()
}

fn series(label: &str, c: &Compiler, regions: &[(Workload, Variant, bool)]) -> Series {
    let mach = m();
    Series {
        label: label.to_string(),
        points: CORES
            .iter()
            .map(|&cores| {
                let t: f64 = regions
                    .iter()
                    .map(|(w, v, par)| region_time(&mach, c, w, v, cores, *par))
                    .sum();
                (cores, t)
            })
            .collect(),
    }
}

// ===========================================================================
// Matrix–matrix multiplication (Figs. 3, 4, 5)
// ===========================================================================

const MM_N: u64 = 4096;

/// Effective scalar work per (i,j) iteration: 2·N FLOPs fused by GCC -O2
/// into ~1.35 ops/element effective on the Opteron FPU — calibrated so the
/// sequential GCC run lands on the paper's 22.17 s.
const MM_FLOPS_PER_ITER: f64 = 5550.0;
/// DRAM traffic per (i,j) iteration after L2 reuse of the streamed row.
const MM_BYTES_PER_ITER: f64 = 2048.0;

fn matmul_compute() -> Workload {
    Workload {
        iters: MM_N * MM_N,
        flops_per_iter: MM_FLOPS_PER_ITER,
        bytes_per_iter: MM_BYTES_PER_ITER,
        calls_per_iter: 1.0, // one `dot` call; `mult` is inlined into it
        cost: CostProfile::Uniform,
        simd_friendly: true,
    }
}

/// The allocation/init loop (3 × 4096 `malloc`s + first touch of 201 MiB).
fn matmul_init() -> Workload {
    Workload {
        iters: MM_N,
        flops_per_iter: 2.0 * MM_N as f64, // streaming init of two rows
        bytes_per_iter: 3.0 * MM_N as f64 * 4.0,
        calls_per_iter: 3.0, // three mallocs per iteration
        cost: CostProfile::Uniform,
        simd_friendly: false, // allocation, nothing to vectorize
    }
}

/// Matmul program assembly per tool-chain variant.
fn matmul_regions(which: &str) -> Vec<(Workload, Variant, bool)> {
    let compute = matmul_compute();
    let init = matmul_init();
    match which {
        "seq" => vec![
            (init, Variant::sequential(), false),
            (compute, Variant::sequential(), false),
        ],
        // PluTo: compute inlined + parallel; init loop untouched (serial
        // first touch → pages on node 0).
        "pluto" => vec![
            (init, Variant::sequential(), false),
            (compute, Variant::pluto(1.0), true),
        ],
        // PluTo-SICA: + SIMD pragmas + cache tiling.
        "sica" => vec![
            (init, Variant::sequential(), false),
            (compute, Variant::pluto_sica(0.2), true),
        ],
        // pure chain: calls stay extracted; the init loop was ALSO marked
        // (malloc is in the registry) → parallel first touch, pages spread.
        "pure" => vec![
            (init, Variant::pure_chain(true), true),
            (Workload { ..compute }, Variant::pure_chain(true), true),
        ],
        // pure with the init loop manually excluded (the black bars).
        "pure-noinit" => vec![
            (init, Variant::sequential(), false),
            (compute, Variant::pure_chain(false), true),
        ],
        // Hand-tuned MKL-class code: packed blocks, full SIMD, prefetch.
        "mkl" => {
            let mut v = Variant::pluto_sica(0.174);
            v.hand_tuned = 2.05; // on top of SIMD: register blocking etc.
            v.pages_spread = true;
            vec![(compute, v, true)]
        }
        other => panic!("unknown matmul variant {other}"),
    }
}

/// Fig. 3 — matmul execution time, GCC chain.
pub fn fig3_matmul_gcc() -> Figure {
    let gcc = Compiler::gcc_o2();
    let icc = Compiler::icc16();
    let seq = series("seq (dashed)", &gcc, &matmul_regions("seq"));
    let t_seq = seq.at(1);
    Figure {
        id: "fig3".into(),
        title: "Matrix-matrix multiplication, execution time (GCC)".into(),
        ylabel: "seconds".into(),
        baselines: vec![("GCC sequential".into(), t_seq)],
        series: vec![
            series("PluTo", &gcc, &matmul_regions("pluto")),
            series("PluTo-SICA", &gcc, &matmul_regions("sica")),
            series("pure", &gcc, &matmul_regions("pure")),
            series("pure-noinit", &gcc, &matmul_regions("pure-noinit")),
            series("MKL", &icc, &matmul_regions("mkl")),
        ],
    }
}

/// Fig. 4 — matmul execution time, ICC chain.
pub fn fig4_matmul_icc() -> Figure {
    let icc = Compiler::icc16();
    let seq = series("seq (dashed)", &icc, &matmul_regions("seq"));
    Figure {
        id: "fig4".into(),
        title: "Matrix-matrix multiplication, execution time (ICC)".into(),
        ylabel: "seconds".into(),
        baselines: vec![("ICC sequential".into(), seq.at(1))],
        series: vec![
            series("PluTo", &icc, &matmul_regions("pluto")),
            series("PluTo-SICA", &icc, &matmul_regions("sica")),
            series("pure", &icc, &matmul_regions("pure")),
            series("MKL", &icc, &matmul_regions("mkl")),
        ],
    }
}

/// Fig. 5 — matmul speedups vs the GCC sequential baseline.
pub fn fig5_matmul_speedup() -> Figure {
    let gcc_fig = fig3_matmul_gcc();
    let icc_fig = fig4_matmul_icc();
    let t_seq = gcc_fig.baselines[0].1;
    let mut series_out = Vec::new();
    for s in &gcc_fig.series {
        series_out.push(Series {
            label: format!("{} (GCC)", s.label),
            ..s.speedup_against(t_seq)
        });
    }
    for s in &icc_fig.series {
        if s.label != "MKL" {
            series_out.push(Series {
                label: format!("{} (ICC)", s.label),
                ..s.speedup_against(t_seq)
            });
        }
    }
    Figure {
        id: "fig5".into(),
        title: "Matrix-matrix multiplication, speedup vs GCC sequential".into(),
        ylabel: "speedup".into(),
        baselines: vec![("GCC sequential".into(), t_seq)],
        series: series_out,
    }
}

// ===========================================================================
// Heat distribution (Figs. 6, 7)
// ===========================================================================

const HEAT_N: u64 = 4096;
const HEAT_STEPS: f64 = 200.0;

/// Per-point work of one Jacobi step (stencil + copy-back), calibrated to
/// the paper's 34.14 s sequential GCC run; ICC's 31.32 s follows from its
/// scalar IPC.
const HEAT_FLOPS_PER_ITER: f64 = 43.0;
const HEAT_BYTES_PER_ITER: f64 = 40.0;

fn heat_compute() -> Workload {
    Workload {
        iters: (HEAT_N - 2) * (HEAT_N - 2),
        flops_per_iter: HEAT_FLOPS_PER_ITER,
        bytes_per_iter: HEAT_BYTES_PER_ITER,
        calls_per_iter: 0.5, // stencil call per point, half hidden by the copy pass
        cost: CostProfile::Uniform,
        // The paper: vectorization does not help the stencil's strided
        // memory accesses — under GCC, ICC or SICA pragmas.
        simd_friendly: false,
    }
}

fn heat_regions(which: &str) -> Vec<(Workload, Variant, bool)> {
    // One region entry stands for all 200 steps (region_time is linear in
    // iters; fork overhead is charged per step below via iters scaling).
    let mut w = heat_compute();
    w.iters = (w.iters as f64 * HEAT_STEPS) as u64;
    match which {
        "seq" => vec![(w, Variant::pluto(1.0), false)], // plain code = inlined
        "pluto-sica" => vec![(w, Variant::pluto(0.95), true)],
        "pluto" => vec![(w, Variant::pluto(1.0), true)],
        // Heat's grid is allocated and first-touched before the time loop
        // in one go; the pure chain does not change its page placement.
        "pure" => vec![(w, Variant::pure_chain(false), true)],
        other => panic!("unknown heat variant {other}"),
    }
}

/// Fig. 6 — heat execution time (PluTo-SICA vs pure, GCC vs ICC).
pub fn fig6_heat_time() -> Figure {
    let gcc = Compiler::gcc_o2();
    let icc = Compiler::icc16();
    let t_seq_gcc = series("seq", &gcc, &heat_regions("seq")).at(1);
    let t_seq_icc = series("seq", &icc, &heat_regions("seq")).at(1);
    Figure {
        id: "fig6".into(),
        title: "Heat distribution, execution time".into(),
        ylabel: "seconds".into(),
        baselines: vec![
            ("GCC sequential".into(), t_seq_gcc),
            ("ICC sequential".into(), t_seq_icc),
        ],
        series: vec![
            series("PluTo-SICA (GCC)", &gcc, &heat_regions("pluto-sica")),
            series("PluTo-SICA (ICC)", &icc, &heat_regions("pluto-sica")),
            series("pure (GCC)", &gcc, &heat_regions("pure")),
            series("pure (ICC)", &icc, &heat_regions("pure")),
        ],
    }
}

/// Fig. 7 — heat speedups vs the GCC sequential baseline.
pub fn fig7_heat_speedup() -> Figure {
    let f = fig6_heat_time();
    let t_seq = f.baselines[0].1;
    Figure {
        id: "fig7".into(),
        title: "Heat distribution, speedup vs GCC sequential".into(),
        ylabel: "speedup".into(),
        baselines: f.baselines.clone(),
        series: f.series.iter().map(|s| s.speedup_against(t_seq)).collect(),
    }
}

// ===========================================================================
// Satellite AOD filter (Figs. 8, 9)
// ===========================================================================

/// Synthetic granule: 16 M pixels with a tail-heavy retrieval cost
/// (late-image pixels iterate longer — Sect. 4.3.3).
const SAT_PIXELS: u64 = 16 * 1024 * 1024;
const SAT_FLOPS_PER_PIXEL: f64 = 5200.0;
const SAT_BYTES_PER_PIXEL: f64 = 32.0;

fn sat_cost() -> CostProfile {
    CostProfile::TailHeavy {
        tail_frac: 0.15,
        tail_mult: 2.2,
    }
}

fn sat_workload() -> Workload {
    Workload {
        iters: SAT_PIXELS,
        flops_per_iter: SAT_FLOPS_PER_PIXEL,
        bytes_per_iter: SAT_BYTES_PER_PIXEL,
        calls_per_iter: 1.0,
        cost: sat_cost(),
        simd_friendly: true, // ICC vectorizes the extracted retrieval
    }
}

fn sat_regions(which: &str) -> Vec<(Workload, Variant, bool)> {
    let w = sat_workload();
    let auto = Variant {
        inlined: false, // the filter stays a call — only `pure` makes this legal
        simd_pragma: false,
        locality: 1.0,
        schedule: OmpSchedule::Static,
        pages_spread: true,
        hand_tuned: 1.0,
    };
    match which {
        "seq" => vec![(w, auto, false)],
        "auto" => vec![(w, auto, true)],
        "manual" => {
            let mut v = auto;
            v.schedule = OmpSchedule::Dynamic(1);
            vec![(w, v, true)]
        }
        other => panic!("unknown satellite variant {other}"),
    }
}

/// Fig. 8 — satellite execution time (auto = pure chain; manual = +
/// `schedule(dynamic,1)`).
pub fn fig8_satellite_time() -> Figure {
    let gcc = Compiler::gcc_o2();
    let icc = Compiler::icc16();
    let t_seq = series("seq", &gcc, &sat_regions("seq")).at(1);
    Figure {
        id: "fig8".into(),
        title: "Satellite AOD filter, execution time".into(),
        ylabel: "seconds".into(),
        baselines: vec![("GCC sequential".into(), t_seq)],
        series: vec![
            series("auto (GCC)", &gcc, &sat_regions("auto")),
            series("auto (ICC)", &icc, &sat_regions("auto")),
            series("manual dyn,1 (GCC)", &gcc, &sat_regions("manual")),
            series("manual dyn,1 (ICC)", &icc, &sat_regions("manual")),
        ],
    }
}

/// Fig. 9 — satellite speedups vs GCC sequential.
pub fn fig9_satellite_speedup() -> Figure {
    let f = fig8_satellite_time();
    let t_seq = f.baselines[0].1;
    Figure {
        id: "fig9".into(),
        title: "Satellite AOD filter, speedup vs GCC sequential".into(),
        ylabel: "speedup".into(),
        baselines: f.baselines.clone(),
        series: f.series.iter().map(|s| s.speedup_against(t_seq)).collect(),
    }
}

// ===========================================================================
// LAMA ELL SpMV (Figs. 10, 11)
// ===========================================================================

const LAMA_ROWS: u64 = 217_918;
const LAMA_MAX_NNZ: f64 = 90.0;

fn lama_workload(auto: bool) -> Workload {
    Workload {
        iters: LAMA_ROWS,
        // Per padded entry: 2 FLOPs + index arithmetic + gather latency
        // (~7.8 effective ops); the auto version carries a few percent of
        // generated-bounds overhead.
        flops_per_iter: 7.8 * LAMA_MAX_NNZ * if auto { 1.06 } else { 1.0 },
        // values + colidx stream + gathered x.
        bytes_per_iter: LAMA_MAX_NNZ * 9.0,
        calls_per_iter: 1.0,
        cost: CostProfile::Jitter { spread: 0.12 },
        simd_friendly: true,
    }
}

fn lama_regions(which: &str) -> Vec<(Workload, Variant, bool)> {
    // The value/index init loops are parallelized by the chain (first
    // touch spreads the ELL arrays) for both versions — the paper's code
    // allocates via LAMA which interleaves as well.
    let base = Variant {
        inlined: false, // ell_dot stays an extracted call in the auto path
        simd_pragma: false,
        locality: 1.0,
        schedule: OmpSchedule::Static,
        pages_spread: true,
        hand_tuned: 1.0,
    };
    match which {
        "seq" => vec![(lama_workload(false), base, false)],
        "auto" => vec![(lama_workload(true), base, true)],
        "manual" => {
            let mut v = base;
            v.inlined = true; // hand-written loop, no extracted call
            vec![(lama_workload(false), v, true)]
        }
        other => panic!("unknown lama variant {other}"),
    }
}

/// Fig. 10 — LAMA ELL SpMV execution time.
pub fn fig10_lama_time() -> Figure {
    let gcc = Compiler::gcc_o2();
    let icc = Compiler::icc16();
    let t_seq = series("seq", &gcc, &lama_regions("seq")).at(1);
    Figure {
        id: "fig10".into(),
        title: "LAMA ELL SpMV, execution time".into(),
        ylabel: "seconds".into(),
        baselines: vec![("GCC sequential".into(), t_seq)],
        series: vec![
            series("auto (GCC)", &gcc, &lama_regions("auto")),
            series("auto (ICC)", &icc, &lama_regions("auto")),
            series("manual static (GCC)", &gcc, &lama_regions("manual")),
            series("manual static (ICC)", &icc, &lama_regions("manual")),
        ],
    }
}

/// Fig. 11 — LAMA speedups vs GCC sequential.
pub fn fig11_lama_speedup() -> Figure {
    let f = fig10_lama_time();
    let t_seq = f.baselines[0].1;
    Figure {
        id: "fig11".into(),
        title: "LAMA ELL SpMV, speedup vs GCC sequential".into(),
        ylabel: "speedup".into(),
        baselines: f.baselines.clone(),
        series: f.series.iter().map(|s| s.speedup_against(t_seq)).collect(),
    }
}

/// All time/speedup figures in paper order.
pub fn all_figures() -> Vec<Figure> {
    vec![
        fig3_matmul_gcc(),
        fig4_matmul_icc(),
        fig5_matmul_speedup(),
        fig6_heat_time(),
        fig7_heat_speedup(),
        fig8_satellite_time(),
        fig9_satellite_speedup(),
        fig10_lama_time(),
        fig11_lama_speedup(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strictly_decreasing(s: &Series) -> bool {
        s.points.windows(2).all(|w| w[1].1 < w[0].1)
    }

    // ---- Fig. 3 anchors and shapes -------------------------------------

    #[test]
    fn fig3_sequential_anchor() {
        let f = fig3_matmul_gcc();
        let t_seq = f.baselines[0].1;
        assert!(
            (t_seq - 22.17).abs() / 22.17 < 0.05,
            "seq GCC must be ≈22.17 s, got {t_seq}"
        );
    }

    #[test]
    fn fig3_pure_strictly_decreasing() {
        let f = fig3_matmul_gcc();
        assert!(strictly_decreasing(f.find("pure")), "{}", f.render());
    }

    #[test]
    fn fig3_pluto_nonmonotonic_16_to_32() {
        let f = fig3_matmul_gcc();
        let pluto = f.find("PluTo");
        assert!(
            pluto.at(32) > pluto.at(16),
            "PluTo must degrade 16→32 (first-touch NUMA): {}",
            f.render()
        );
    }

    #[test]
    fn fig3_pure_beats_pluto() {
        let f = fig3_matmul_gcc();
        let pure = f.find("pure");
        let pluto = f.find("PluTo");
        // Low core counts: on par (within the call-overhead margin; the
        // init-loop advantage has nothing to parallelize at 1 core).
        for c in [1, 2, 4, 8] {
            assert!(
                pure.at(c) < pluto.at(c) * 1.03,
                "pure must stay within 3% of PluTo at {c} cores: {}",
                f.render()
            );
        }
        // High core counts: the spread first touch wins outright.
        for c in [16, 32, 64] {
            assert!(
                pure.at(c) < pluto.at(c) * 1.01,
                "pure must win at {c} cores: {}",
                f.render()
            );
        }
        // And significantly faster at the top end.
        assert!(pure.at(64) < pluto.at(64) * 0.7, "{}", f.render());
    }

    #[test]
    fn fig3_pure_noinit_close_to_pluto() {
        let f = fig3_matmul_gcc();
        let noinit = f.find("pure-noinit");
        let pluto = f.find("PluTo");
        for c in [16, 32, 64] {
            let ratio = noinit.at(c) / pluto.at(c);
            assert!(
                (0.8..1.3).contains(&ratio),
                "pure-noinit must track PluTo at {c} cores (ratio {ratio}): {}",
                f.render()
            );
        }
    }

    #[test]
    fn fig3_mkl_dominates() {
        let f = fig3_matmul_gcc();
        let mkl = f.find("MKL");
        let pure = f.find("pure");
        let r1 = pure.at(1) / mkl.at(1);
        let r64 = pure.at(64) / mkl.at(64);
        assert!(
            (5.0..10.0).contains(&r1),
            "MKL ≈7.28× faster at 1 core, got {r1}: {}",
            f.render()
        );
        assert!(
            (3.5..9.0).contains(&r64),
            "MKL ≈5.82× faster at 64 cores, got {r64}: {}",
            f.render()
        );
    }

    // ---- Fig. 4 shapes ----------------------------------------------------

    #[test]
    fn fig4_icc_vectorizes_pure_at_low_cores() {
        let gcc = fig3_matmul_gcc();
        let icc = fig4_matmul_icc();
        // Big pure win under ICC at 1-4 cores.
        for c in [1, 2, 4] {
            assert!(
                icc.find("pure").at(c) < gcc.find("pure").at(c) * 0.5,
                "ICC must vectorize the extracted dot at {c} cores"
            );
        }
        // Converging at high core counts (both bandwidth-bound).
        let conv = icc.find("pure").at(64) / gcc.find("pure").at(64);
        assert!((0.5..1.2).contains(&conv), "convergence ratio {conv}");
    }

    #[test]
    fn fig4_pluto_gains_little_from_icc() {
        let gcc = fig3_matmul_gcc();
        let icc = fig4_matmul_icc();
        for c in [1, 4, 16] {
            let ratio = icc.find("PluTo").at(c) / gcc.find("PluTo").at(c);
            assert!(
                (0.85..1.05).contains(&ratio),
                "inlined PluTo code gets only the scalar margin, got {ratio} at {c}"
            );
        }
    }

    #[test]
    fn fig4_sica_overtakes_pure_at_8_cores() {
        let icc = fig4_matmul_icc();
        // Paper: "PluTo-SICA is only able to outperform the pure directive
        // for eight or more cores" (under ICC).
        assert!(icc.find("pure").at(1) < icc.find("PluTo-SICA").at(1) * 1.35);
        for c in [8, 16, 32, 64] {
            assert!(
                icc.find("PluTo-SICA").at(c) <= icc.find("pure").at(c) * 1.05,
                "SICA must be at least on par beyond 8 cores ({c})"
            );
        }
    }

    // ---- Figs. 6/7 ---------------------------------------------------------

    #[test]
    fn fig6_sequential_anchors() {
        let f = fig6_heat_time();
        let gcc = f.baselines[0].1;
        let icc = f.baselines[1].1;
        assert!((gcc - 34.14).abs() / 34.14 < 0.05, "heat seq GCC {gcc}");
        assert!((icc - 31.32).abs() / 31.32 < 0.07, "heat seq ICC {icc}");
    }

    #[test]
    fn fig6_pluto_beats_pure() {
        let f = fig6_heat_time();
        for c in [1, 2, 4, 8] {
            assert!(
                f.find("PluTo-SICA (GCC)").at(c) < f.find("pure (GCC)").at(c),
                "inlining must win on the tiny stencil body at {c} cores: {}",
                f.render()
            );
        }
        // Call-overhead ratio at 1 core ≈ the paper's 1/0.64.
        let ratio = f.find("pure (GCC)").at(1) / f.find("PluTo-SICA (GCC)").at(1);
        assert!(
            (1.3..2.0).contains(&ratio),
            "pure/PluTo heat ratio ≈1.56, got {ratio}"
        );
    }

    #[test]
    fn fig7_speedups_decay_beyond_8_cores() {
        let f = fig7_heat_speedup();
        for s in &f.series {
            let at8 = s.at(8);
            let at64 = s.at(64);
            assert!(
                at64 < at8 * 1.6,
                "heat is bandwidth-bound: speedup must flatten beyond 8 cores \
                 ({}: {at8:.1} → {at64:.1})",
                s.label
            );
        }
        // And speedup does grow up to 8 cores.
        let p = f.find("PluTo-SICA (GCC)");
        assert!(p.at(8) > p.at(2));
    }

    // ---- Figs. 8/9 ---------------------------------------------------------

    #[test]
    fn fig8_all_versions_scale_continuously_gcc() {
        let f = fig8_satellite_time();
        assert!(strictly_decreasing(f.find("auto (GCC)")), "{}", f.render());
        assert!(
            strictly_decreasing(f.find("manual dyn,1 (GCC)")),
            "{}",
            f.render()
        );
        assert!(strictly_decreasing(f.find("auto (ICC)")), "{}", f.render());
    }

    #[test]
    fn fig9_manual_icc_drops_at_64() {
        let f = fig9_satellite_speedup();
        let s = f.find("manual dyn,1 (ICC)");
        assert!(
            s.at(64) < s.at(32),
            "dynamic,1 dequeue contention must bite ICC at 64 cores: {}",
            f.render()
        );
    }

    #[test]
    fn fig9_best_speedup_is_auto_icc_at_64() {
        let f = fig9_satellite_speedup();
        let best = f.find("auto (ICC)").at(64);
        for s in &f.series {
            assert!(
                s.at(64) <= best + 1e-9,
                "auto+ICC@64 must be the best: {} has {}, auto ICC {}",
                s.label,
                s.at(64),
                best
            );
        }
    }

    #[test]
    fn fig8_dynamic_beats_static_at_mid_cores_gcc() {
        // The reason the authors added schedule(dynamic,1).
        let f = fig8_satellite_time();
        for c in [16, 32] {
            assert!(
                f.find("manual dyn,1 (GCC)").at(c) < f.find("auto (GCC)").at(c),
                "dynamic must fix the tail imbalance at {c} cores: {}",
                f.render()
            );
        }
    }

    // ---- Figs. 10/11 ---------------------------------------------------------

    #[test]
    fn fig10_manual_slightly_better_but_within_bounds() {
        let f = fig10_lama_time();
        let auto = f.find("auto (GCC)");
        let manual = f.find("manual static (GCC)");
        for c in CORES {
            assert!(
                manual.at(c) <= auto.at(c),
                "manual must win slightly at {c}: {}",
                f.render()
            );
        }
        // The paper: difference at most 8·10⁻⁴ s (at high core counts).
        let gap = auto.at(64) - manual.at(64);
        assert!(
            gap <= 8.0e-4,
            "auto-manual gap must be ≤0.8 ms at 64 cores, got {gap}"
        );
    }

    #[test]
    fn fig11_speedup_grows_to_32_cores() {
        let f = fig11_lama_speedup();
        let s = f.find("auto (GCC)");
        assert!(s.at(32) > s.at(8), "{}", f.render());
        assert!(s.at(32) > s.at(16) * 0.99, "{}", f.render());
    }

    #[test]
    fn fig11_icc_better_below_16_worse_after() {
        let f = fig10_lama_time();
        for c in [1, 2, 4, 8] {
            assert!(
                f.find("auto (ICC)").at(c) <= f.find("auto (GCC)").at(c),
                "ICC vectorized dot must win at {c} cores: {}",
                f.render()
            );
        }
        // Beyond 16: both bandwidth-bound, ICC's advantage gone.
        let r = f.find("auto (ICC)").at(64) / f.find("auto (GCC)").at(64);
        assert!(
            (0.95..1.3).contains(&r),
            "ICC advantage vanished, ratio {r}"
        );
    }

    // ---- cross-cutting -------------------------------------------------------

    #[test]
    fn all_figures_render_and_serialize() {
        for f in all_figures() {
            let txt = f.render();
            assert!(txt.contains(&f.id));
            let json = serde_json::to_string(&f).unwrap();
            let back: Figure = serde_json::from_str(&json).unwrap();
            assert_eq!(back.id, f.id);
            for s in &f.series {
                assert_eq!(s.points.len(), CORES.len());
                assert!(s.points.iter().all(|(_, t)| t.is_finite() && *t > 0.0));
            }
        }
    }
}
