//! Small shared helpers for the app implementations.

/// A raw-pointer wrapper that is `Send + Sync`, used by the parallel
/// reference implementations to write disjoint output slots from worker
/// threads. Disjointness is exactly what the purity verification and the
/// dependence analysis guarantee for these loops; each `// SAFETY` comment
/// at the use sites states the per-loop argument.
pub(crate) struct SendPtr<T>(pub *mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessing the pointer through a method makes closures capture the
    /// whole `Sync` wrapper (2021 disjoint capture would otherwise grab
    /// the raw-pointer field itself, which is not `Sync`).
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
