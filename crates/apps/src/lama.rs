//! Application 4: ELL sparse matrix–vector multiplication from the LAMA
//! library (paper Sect. 4.1/4.3.4, Figs. 10–11).
//!
//! **Substitution** (per DESIGN.md): the Boeing/pwtk matrix (stiffness
//! matrix of a pressurized wind tunnel, 217 918 rows, 11.5 M non-zeros) is
//! not shipped; [`EllMatrix::pwtk_like`] generates a banded symmetric
//! matrix with the same row-population statistics (mean ≈ 53 nnz/row,
//! clustered bands, symmetric pattern), stored in the same ELL format
//! (column-padded to the max row length). The SpMV row loop's indirect
//! addressing is hidden inside the pure `ell_dot`, which is what lets the
//! chain parallelize the row loop.

use crate::util::SendPtr;
use machine::{parallel_for, OmpSchedule};

/// ELLPACK-R sparse matrix: `rows × rows`, every row padded to `max_nnz`.
/// Column-major padding as in LAMA: entry `(r, k)` at `k * rows + r`.
#[derive(Debug, Clone)]
pub struct EllMatrix {
    pub rows: usize,
    pub max_nnz: usize,
    /// Column indices, `rows × max_nnz`, padded with the row's own index.
    pub col_idx: Vec<u32>,
    /// Values, padded with zeros.
    pub values: Vec<f32>,
    /// Actual non-zeros per row.
    pub row_nnz: Vec<u32>,
}

impl EllMatrix {
    /// Build from per-row (col, value) lists.
    pub fn from_rows(rows: usize, row_entries: &[Vec<(u32, f32)>]) -> Self {
        assert_eq!(rows, row_entries.len());
        let max_nnz = row_entries.iter().map(Vec::len).max().unwrap_or(0).max(1);
        let mut col_idx = vec![0u32; rows * max_nnz];
        let mut values = vec![0.0f32; rows * max_nnz];
        let mut row_nnz = vec![0u32; rows];
        for (r, entries) in row_entries.iter().enumerate() {
            row_nnz[r] = entries.len() as u32;
            for (k, &(c, v)) in entries.iter().enumerate() {
                col_idx[k * rows + r] = c;
                values[k * rows + r] = v;
            }
            // Pad with the diagonal index and zero value.
            for k in entries.len()..max_nnz {
                col_idx[k * rows + r] = r as u32;
            }
        }
        EllMatrix {
            rows,
            max_nnz,
            col_idx,
            values,
            row_nnz,
        }
    }

    /// Synthetic stand-in for Boeing/pwtk: a symmetric banded FEM-like
    /// pattern. `rows` and `target_nnz_per_row` are scaled down in tests
    /// and set to (217_918, 53) at paper scale.
    pub fn pwtk_like(rows: usize, target_nnz_per_row: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let half = (target_nnz_per_row / 2).max(1);
        let mut row_entries: Vec<Vec<(u32, f32)>> = Vec::with_capacity(rows);
        for r in 0..rows {
            // Three clustered bands (node coupling in a 3-D FEM mesh):
            // near-diagonal plus two off-diagonal blocks.
            let mut cols: Vec<u32> = Vec::with_capacity(target_nnz_per_row + 3);
            cols.push(r as u32);
            for d in 1..=(half / 3 + 1) {
                if r >= d {
                    cols.push((r - d) as u32);
                }
                if r + d < rows {
                    cols.push((r + d) as u32);
                }
            }
            let block = rows / 16 + 1;
            for d in [block, block + 1, 2 * block] {
                if r >= d {
                    cols.push((r - d) as u32);
                }
                if r + d < rows {
                    cols.push((r + d) as u32);
                }
            }
            cols.sort_unstable();
            cols.dedup();
            cols.truncate(target_nnz_per_row + 4);
            let entries = cols
                .into_iter()
                .map(|c| {
                    let v = if c as usize == r {
                        4.0 + (next() % 100) as f32 / 100.0
                    } else {
                        -1.0 + (next() % 100) as f32 / 200.0
                    };
                    (c, v)
                })
                .collect();
            row_entries.push(entries);
        }
        Self::from_rows(rows, &row_entries)
    }

    pub fn nnz(&self) -> u64 {
        self.row_nnz.iter().map(|&n| n as u64).sum()
    }

    /// Pure per-row dot product (the LAMA function the paper marks pure):
    /// indirect addressing through the ELL column array.
    #[inline]
    pub fn ell_dot(&self, row: usize, x: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for k in 0..self.max_nnz {
            let idx = k * self.rows + row;
            acc += self.values[idx] * x[self.col_idx[idx] as usize];
        }
        acc
    }

    /// Sequential SpMV.
    pub fn spmv_seq(&self, x: &[f32]) -> Vec<f32> {
        (0..self.rows).map(|r| self.ell_dot(r, x)).collect()
    }

    /// Parallel SpMV on the omprt runtime.
    pub fn spmv_par(&self, x: &[f32], threads: usize, schedule: OmpSchedule) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        {
            let yptr = SendPtr(y.as_mut_ptr());
            parallel_for(self.rows as u64, threads, schedule, |r| {
                let v = self.ell_dot(r as usize, x);
                // SAFETY: row r writes y[r] only.
                unsafe { *yptr.get().add(r as usize) = v };
            });
        }
        y
    }
}

/// Annotated C source: ELL SpMV with the pure row kernel.
pub fn c_source(rows: usize, max_nnz: usize) -> String {
    format!(
        "#include <stdlib.h>\n\
         #include <stdio.h>\n\
         \n\
         float* values;\n\
         int* colidx;\n\
         float* x;\n\
         float* y;\n\
         \n\
         pure float ell_dot(pure float* vals, pure int* cols, pure float* vec, int row, int rows, int maxnnz) {{\n\
             float acc = 0.0f;\n\
             for (int k = 0; k < maxnnz; k++) {{\n\
                 acc += vals[k * rows + row] * vec[cols[k * rows + row]];\n\
             }}\n\
             return acc;\n\
         }}\n\
         \n\
         int main() {{\n\
             int rows = {rows};\n\
             int maxnnz = {max_nnz};\n\
             values = (float*) malloc(rows * maxnnz * sizeof(float));\n\
             colidx = (int*) malloc(rows * maxnnz * sizeof(int));\n\
             x = (float*) malloc(rows * sizeof(float));\n\
             y = (float*) malloc(rows * sizeof(float));\n\
             for (int r = 0; r < rows; r++) {{\n\
                 x[r] = 1.0f + 0.001f * (float)(r % 97);\n\
                 for (int k = 0; k < maxnnz; k++) {{\n\
                     int c = r + k - maxnnz / 2;\n\
                     if (c < 0) c = 0;\n\
                     if (c >= rows) c = rows - 1;\n\
                     colidx[k * rows + r] = c;\n\
                     values[k * rows + r] = (k == maxnnz / 2) ? 4.0f : -0.1f;\n\
                 }}\n\
             }}\n\
             for (int r = 0; r < rows; r++)\n\
                 y[r] = ell_dot((pure float*)values, (pure int*)colidx, (pure float*)x, r, rows, maxnnz);\n\
             float total = 0.0f;\n\
             for (int r = 0; r < rows; r++) total += y[r];\n\
             printf(\"spmv=%.3f\\n\", total);\n\
             return 0;\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_check(m: &EllMatrix, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; m.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            for k in 0..m.max_nnz {
                let idx = k * m.rows + r;
                *yr += m.values[idx] * x[m.col_idx[idx] as usize];
            }
        }
        y
    }

    #[test]
    fn ell_layout_round_trip() {
        let rows = vec![
            vec![(0u32, 2.0f32), (1, -1.0)],
            vec![(0, -1.0), (1, 2.0), (2, -1.0)],
            vec![(1, -1.0), (2, 2.0)],
        ];
        let m = EllMatrix::from_rows(3, &rows);
        assert_eq!(m.max_nnz, 3);
        assert_eq!(m.nnz(), 7);
        let x = vec![1.0, 2.0, 3.0];
        let y = m.spmv_seq(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_matches_dense_expansion() {
        let m = EllMatrix::pwtk_like(200, 12, 3);
        let x: Vec<f32> = (0..200).map(|i| 1.0 + (i % 7) as f32 * 0.1).collect();
        let y = m.spmv_seq(&x);
        let y2 = dense_check(&m, &x);
        for (a, b) in y.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_spmv_matches_sequential() {
        let m = EllMatrix::pwtk_like(500, 14, 9);
        let x: Vec<f32> = (0..500).map(|i| (i % 13) as f32 * 0.25).collect();
        let seq = m.spmv_seq(&x);
        for sched in [OmpSchedule::Static, OmpSchedule::Dynamic(8)] {
            let par = m.spmv_par(&x, 8, sched);
            assert_eq!(seq, par, "schedule {sched}");
        }
    }

    #[test]
    fn pwtk_like_statistics() {
        let m = EllMatrix::pwtk_like(2000, 53, 42);
        let avg = m.nnz() as f64 / m.rows as f64;
        // The real pwtk averages ~52.9 nnz/row; the generator's bands are
        // capped by the target.
        assert!(avg > 10.0 && avg <= 60.0, "avg nnz/row = {avg}");
        // Row populations vary (the end-of-matrix imbalance the paper
        // mentions): boundary rows are lighter.
        let first = m.row_nnz[0];
        let mid = m.row_nnz[1000];
        assert!(
            first < mid,
            "boundary rows must be lighter: {first} vs {mid}"
        );
    }

    #[test]
    fn symmetric_pattern() {
        let m = EllMatrix::pwtk_like(300, 16, 5);
        // Check pattern symmetry on a sample of entries.
        use std::collections::HashSet;
        let mut pattern = HashSet::new();
        for r in 0..m.rows {
            for k in 0..m.row_nnz[r] as usize {
                pattern.insert((r as u32, m.col_idx[k * m.rows + r]));
            }
        }
        for &(r, c) in pattern.iter().take(500) {
            assert!(
                pattern.contains(&(c, r)),
                "pattern must be symmetric: ({r},{c}) present, ({c},{r}) missing"
            );
        }
    }

    #[test]
    fn c_source_passes_the_chain() {
        let src = c_source(64, 9);
        let out =
            purec_core::run_pc_cc(&src, purec_core::PcCcOptions::default()).expect("pipeline");
        assert!(out.pure_set.contains("ell_dot"));
        assert!(out.scops_marked >= 1);
    }
}
