//! Application 3: the satellite image processor — aerosol optical depth
//! (AOD) retrieval from hyperspectral observations (paper Sect. 4.1/4.3.3,
//! Figs. 8–9).
//!
//! **Substitution** (per DESIGN.md): the MODIS/Aqua granule and the
//! proprietary retrieval code are unavailable; we generate a synthetic
//! multi-band tile whose per-pixel filter has (a) a data-dependent inner
//! iteration (the retrieval's convergence loop), and (b) a spatially
//! tail-heavy cost distribution — heavier pixels concentrated late in the
//! image — which reproduces the load imbalance that made the authors add
//! `schedule(dynamic,1)`. The filter is a pure function of its inputs, and
//! far too branchy for any polyhedral analysis — exactly why only the
//! `pure` chain can parallelize the pixel loop.

use crate::util::SendPtr;
use machine::{parallel_for, OmpSchedule};

/// Number of spectral bands per pixel.
pub const BANDS: usize = 7;

/// A synthetic hyperspectral tile: `width × height` pixels × [`BANDS`].
#[derive(Debug, Clone)]
pub struct Tile {
    pub width: usize,
    pub height: usize,
    /// Band-interleaved reflectances in `[0, 1]`.
    pub bands: Vec<f32>,
}

impl Tile {
    /// Deterministic synthetic granule. Later rows carry higher aerosol
    /// loads (→ more retrieval iterations), giving the tail-heavy cost.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut bands = Vec::with_capacity(width * height * BANDS);
        for y in 0..height {
            let load = y as f64 / height.max(1) as f64; // aerosol ramp
            for _x in 0..width {
                for b in 0..BANDS {
                    let base = 0.08 + 0.5 * load + 0.05 * b as f64;
                    bands.push((base + 0.1 * next()).min(1.0) as f32);
                }
            }
        }
        Tile {
            width,
            height,
            bands,
        }
    }

    #[inline]
    pub fn pixel(&self, idx: usize) -> &[f32] {
        &self.bands[idx * BANDS..(idx + 1) * BANDS]
    }

    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// The pure per-pixel AOD retrieval: an iterative fixed-point solve whose
/// trip count depends on the pixel's aerosol load (the "several hundred
/// lines, dynamic conditional jumps" of the real code, reduced to its
/// computational shape).
pub fn retrieve_aod(pixel: &[f32]) -> f32 {
    // Initial guess from a band ratio.
    let r_blue = pixel[0] as f64;
    let r_red = pixel[3.min(pixel.len() - 1)] as f64;
    let mut tau = (r_blue - 0.05).max(0.01) * 2.0;
    let target = (r_blue * 0.8 + r_red * 0.2).max(0.02);
    // Refinement count grows with the aerosol load: hazier pixels need
    // more radiative-transfer iterations — the data-dependent trip count
    // that produces the paper's late-image load imbalance.
    let refinements = refinement_count(r_blue);
    for _ in 0..refinements {
        let transmission = (-tau / 0.88f64).exp();
        let estimate = 0.05 + tau * 0.35 * transmission + 0.08 * (1.0 - transmission);
        let err = estimate - target;
        tau -= err * 0.9;
        if tau < 0.0 {
            tau = 0.0;
            break;
        }
    }
    // Blend in the remaining bands (spectral smoothing).
    let mut smooth = 0.0f64;
    for &b in &pixel[1..] {
        smooth += (b as f64 - r_blue).abs();
    }
    (tau + 0.01 * smooth) as f32
}

/// Radiative-transfer refinement count for a given blue-band reflectance.
#[inline]
fn refinement_count(r_blue: f64) -> u32 {
    (8.0 + 120.0 * (r_blue - 0.08).max(0.0)) as u32
}

/// Sequential retrieval over the whole tile.
pub fn filter_seq(tile: &Tile) -> Vec<f32> {
    (0..tile.pixels())
        .map(|p| retrieve_aod(tile.pixel(p)))
        .collect()
}

/// Parallel retrieval on the omprt runtime.
pub fn filter_par(tile: &Tile, threads: usize, schedule: OmpSchedule) -> Vec<f32> {
    let n = tile.pixels();
    let mut out = vec![0.0f32; n];
    {
        let optr = SendPtr(out.as_mut_ptr());
        parallel_for(n as u64, threads, schedule, |p| {
            let v = retrieve_aod(tile.pixel(p as usize));
            // SAFETY: each pixel writes its own slot.
            unsafe { *optr.get().add(p as usize) = v };
        });
    }
    out
}

/// Relative cost (≈ retrieval iterations) of each pixel — used to measure
/// the imbalance the paper describes.
pub fn cost_map(tile: &Tile) -> Vec<u32> {
    (0..tile.pixels())
        .map(|p| refinement_count(tile.pixel(p)[0] as f64) + 8)
        .collect()
}

/// Annotated C source: pixel loop calling the pure filter. The filter body
/// is a simplified (but still branchy, `while`-containing) version — the
/// point is that PluTo cannot analyze it, while the `pure` keyword lets
/// the chain parallelize the *loop around it*.
pub fn c_source(width: usize, height: usize) -> String {
    format!(
        "#include <stdlib.h>\n\
         #include <stdio.h>\n\
         \n\
         float* image;\n\
         float* aod;\n\
         \n\
         pure float retrieve(pure float* px, int bands) {{\n\
             float tau = px[0] * 2.0f - 0.1f;\n\
             if (tau < 0.01f) tau = 0.01f;\n\
             float target = px[0] * 0.8f + px[3] * 0.2f;\n\
             int it = 0;\n\
             while (it < 64) {{\n\
                 float trans = expf(-tau / 0.88f);\n\
                 float est = 0.05f + tau * 0.35f * trans + 0.08f * (1.0f - trans);\n\
                 float err = est - target;\n\
                 if (err < 0.000001f && err > -0.000001f) break;\n\
                 tau = tau - err * 1.4f;\n\
                 if (tau < 0.0f) {{ tau = 0.0f; break; }}\n\
                 it = it + 1;\n\
             }}\n\
             float smooth = 0.0f;\n\
             for (int b = 1; b < bands; b++) {{\n\
                 float d = px[b] - px[0];\n\
                 if (d < 0.0f) d = -d;\n\
                 smooth += d;\n\
             }}\n\
             return tau + 0.01f * smooth;\n\
         }}\n\
         \n\
         int main() {{\n\
             int npix = {npix};\n\
             image = (float*) malloc(npix * {bands} * sizeof(float));\n\
             aod = (float*) malloc(npix * sizeof(float));\n\
             for (int p = 0; p < npix; p++)\n\
                 for (int b = 0; b < {bands}; b++)\n\
                     image[p * {bands} + b] = 0.1f + 0.0001f * (float)((p * 7 + b * 13) % 900);\n\
             for (int p = 0; p < npix; p++)\n\
                 aod[p] = retrieve((pure float*)(image + p * {bands}), {bands});\n\
             float total = 0.0f;\n\
             for (int p = 0; p < npix; p++) total += aod[p];\n\
             printf(\"aod=%.3f\\n\", total);\n\
             return 0;\n\
         }}\n",
        npix = width * height,
        bands = BANDS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tile_is_deterministic_and_bounded() {
        let a = Tile::synthetic(16, 16, 7);
        let b = Tile::synthetic(16, 16, 7);
        assert_eq!(a.bands, b.bands);
        assert!(a.bands.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(a.pixels(), 256);
    }

    #[test]
    fn retrieval_is_pure_and_deterministic() {
        let tile = Tile::synthetic(8, 8, 3);
        let px = tile.pixel(5);
        assert_eq!(retrieve_aod(px), retrieve_aod(px));
        // Higher reflectance (more aerosol) → larger AOD.
        let low = [0.08f32; BANDS];
        let high = [0.6f32; BANDS];
        assert!(retrieve_aod(&high) > retrieve_aod(&low));
    }

    #[test]
    fn parallel_filter_matches_sequential() {
        let tile = Tile::synthetic(32, 24, 11);
        let seq = filter_seq(&tile);
        for sched in [OmpSchedule::Static, OmpSchedule::Dynamic(1)] {
            let par = filter_par(&tile, 8, sched);
            assert_eq!(seq, par, "schedule {sched}");
        }
    }

    #[test]
    fn cost_is_tail_heavy() {
        // The paper's imbalance: later rows are heavier.
        let tile = Tile::synthetic(32, 64, 5);
        let costs = cost_map(&tile);
        let n = costs.len();
        let first_half: u64 = costs[..n / 2].iter().map(|&c| c as u64).sum();
        let second_half: u64 = costs[n / 2..].iter().map(|&c| c as u64).sum();
        assert!(
            second_half as f64 > first_half as f64 * 1.3,
            "late pixels must be heavier: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn c_source_passes_the_chain() {
        let src = c_source(8, 8);
        let out =
            purec_core::run_pc_cc(&src, purec_core::PcCcOptions::default()).expect("pipeline");
        assert!(out.pure_set.contains("retrieve"));
        // The pixel loop is marked even though the filter body is
        // unanalyzable — the whole point of the paper.
        assert!(out.scops_marked >= 1);
    }
}
