//! Application 1: matrix–matrix multiplication (paper Sect. 4.1,
//! Listings 7/8, Figs. 3–5).
//!
//! `C[i][j] = dot(A[i], Bt[j])` with the dot product extracted into a
//! `pure` function. Provides the annotated C source fed to the compiler
//! chain, native Rust reference implementations (sequential, omprt-
//! parallel, and an MKL-like blocked kernel as the hand-tuned bound), and
//! the workload characterization used by the simulator at paper scale.

use crate::util::SendPtr;
use machine::{parallel_for, OmpSchedule};

/// Row-major square matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub n: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Deterministic pseudo-random fill (LCG), independent of platform.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
        };
        Matrix {
            n,
            data: (0..n * n).map(|_| next() - 0.5).collect(),
        }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.n + j] = v;
    }

    pub fn transpose(&self) -> Matrix {
        let n = self.n;
        let mut t = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                t.set(j, i, self.at(i, j));
            }
        }
        t
    }

    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// The paper's pure dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut res = 0.0f32;
    for i in 0..a.len().min(b.len()) {
        res += a[i] * b[i];
    }
    res
}

/// Sequential reference: `C = A · B` using the transposed-B layout of the
/// paper's listing.
pub fn matmul_seq(a: &Matrix, bt: &Matrix) -> Matrix {
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let v = dot(&a.data[i * n..(i + 1) * n], &bt.data[j * n..(j + 1) * n]);
            c.set(i, j, v);
        }
    }
    c
}

/// Parallel version on the omprt runtime (what the transformed program
/// does: outer loop parallel, dot extracted).
pub fn matmul_par(a: &Matrix, bt: &Matrix, threads: usize, schedule: OmpSchedule) -> Matrix {
    let n = a.n;
    let mut c = Matrix::zeros(n);
    {
        let cptr = SendPtr(c.data.as_mut_ptr());
        parallel_for(n as u64, threads, schedule, |i| {
            let i = i as usize;
            let row_a = &a.data[i * n..(i + 1) * n];
            for j in 0..n {
                let v = dot(row_a, &bt.data[j * n..(j + 1) * n]);
                // SAFETY: iteration i writes only row i of C — the
                // disjointness verified by the purity/dependence analysis.
                unsafe { *cptr.get().add(i * n + j) = v };
            }
        });
    }
    c
}

/// MKL-like hand-tuned kernel: cache blocking + 4-way unrolled inner
/// product; the "professional upper bound" series of Fig. 3.
pub fn matmul_blocked(a: &Matrix, bt: &Matrix, block: usize) -> Matrix {
    let n = a.n;
    let b = block.max(8).min(n.max(8));
    let mut c = Matrix::zeros(n);
    for ii in (0..n).step_by(b) {
        for jj in (0..n).step_by(b) {
            for i in ii..(ii + b).min(n) {
                let row_a = &a.data[i * n..(i + 1) * n];
                for j in jj..(jj + b).min(n) {
                    let row_b = &bt.data[j * n..(j + 1) * n];
                    let mut s0 = 0.0f32;
                    let mut s1 = 0.0f32;
                    let mut s2 = 0.0f32;
                    let mut s3 = 0.0f32;
                    let chunks = n / 4 * 4;
                    let mut k = 0;
                    while k < chunks {
                        s0 += row_a[k] * row_b[k];
                        s1 += row_a[k + 1] * row_b[k + 1];
                        s2 += row_a[k + 2] * row_b[k + 2];
                        s3 += row_a[k + 3] * row_b[k + 3];
                        k += 4;
                    }
                    let mut s = s0 + s1 + s2 + s3;
                    for kk in chunks..n {
                        s += row_a[kk] * row_b[kk];
                    }
                    c.set(i, j, c.at(i, j) + s);
                }
            }
        }
    }
    c
}

/// The annotated C source of the paper's Listing 7, parameterized by size
/// (the paper uses 4096; tests interpret reduced sizes).
pub fn c_source(n: usize) -> String {
    format!(
        "#include <stdio.h>\n\
         #include <stdlib.h>\n\
         \n\
         float **A, **Bt, **C;\n\
         \n\
         pure float mult(float a, float b) {{\n\
             return a * b;\n\
         }}\n\
         \n\
         pure float dot(pure float* a, pure float* b, int size) {{\n\
             float res = 0.0f;\n\
             for (int i = 0; i < size; ++i)\n\
                 res += mult(a[i], b[i]);\n\
             return res;\n\
         }}\n\
         \n\
         int main(int argc, char** argv) {{\n\
             A = (float**) malloc({n} * sizeof(float*));\n\
             Bt = (float**) malloc({n} * sizeof(float*));\n\
             C = (float**) malloc({n} * sizeof(float*));\n\
             for (int i = 0; i < {n}; ++i) {{\n\
                 A[i] = (float*) malloc({n} * sizeof(float));\n\
                 Bt[i] = (float*) malloc({n} * sizeof(float));\n\
                 C[i] = (float*) malloc({n} * sizeof(float));\n\
                 for (int j = 0; j < {n}; ++j) {{\n\
                     A[i][j] = (float)(i + 2 * j + 1);\n\
                     Bt[i][j] = (float)(i - j + 3);\n\
                 }}\n\
             }}\n\
             for (int i = 0; i < {n}; ++i)\n\
                 for (int j = 0; j < {n}; ++j)\n\
                     C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], {n});\n\
             float checksum = 0.0f;\n\
             for (int i = 0; i < {n}; ++i)\n\
                 checksum += C[i][(i * 7) % {n}];\n\
             printf(\"checksum=%.1f\\n\", checksum);\n\
             return 0;\n\
         }}\n"
    )
}

/// Inline triple-loop variant of [`c_source`]: same matrices, same
/// checksum, but the product nest accumulates in place with no pure-call
/// boundary, so the polyhedral backend sees every subscript stream — the
/// shape where schedule-aware execution (hoisted bounds, fused back
/// edges, strength-reduced row pointers) pays off in wall time rather
/// than only in dispatch counts.
pub fn c_source_inline(n: usize) -> String {
    format!(
        "#include <stdio.h>\n\
         #include <stdlib.h>\n\
         \n\
         float **A, **Bt, **C;\n\
         \n\
         int main(int argc, char** argv) {{\n\
             A = (float**) malloc({n} * sizeof(float*));\n\
             Bt = (float**) malloc({n} * sizeof(float*));\n\
             C = (float**) malloc({n} * sizeof(float*));\n\
             for (int i = 0; i < {n}; ++i) {{\n\
                 A[i] = (float*) malloc({n} * sizeof(float));\n\
                 Bt[i] = (float*) malloc({n} * sizeof(float));\n\
                 C[i] = (float*) malloc({n} * sizeof(float));\n\
                 for (int j = 0; j < {n}; ++j) {{\n\
                     A[i][j] = (float)(i + 2 * j + 1);\n\
                     Bt[i][j] = (float)(i - j + 3);\n\
                     C[i][j] = 0.0f;\n\
                 }}\n\
             }}\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < {n}; ++i)\n\
                 for (int j = 0; j < {n}; ++j)\n\
                     for (int k = 0; k < {n}; ++k)\n\
                         C[i][j] += A[i][k] * Bt[j][k];\n\
             float checksum = 0.0f;\n\
             for (int i = 0; i < {n}; ++i)\n\
                 checksum += C[i][(i * 7) % {n}];\n\
             printf(\"checksum=%.1f\\n\", checksum);\n\
             return 0;\n\
         }}\n"
    )
}

/// Native mirror of the deterministic init in [`c_source`], so interpreter
/// results can be cross-checked against Rust.
pub fn c_source_checksum(n: usize) -> f32 {
    let mut a = Matrix::zeros(n);
    let mut bt = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            a.set(i, j, (i as i64 + 2 * j as i64 + 1) as f32);
            bt.set(i, j, (i as i64 - j as i64 + 3) as f32);
        }
    }
    let c = matmul_seq(&a, &bt);
    let mut checksum = 0.0f32;
    for i in 0..n {
        checksum += c.at(i, (i * 7) % n);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_naive_definition() {
        let n = 17;
        let a = Matrix::random(n, 1);
        let b = Matrix::random(n, 2);
        let bt = b.transpose();
        let c = matmul_seq(&a, &bt);
        // Spot-check against the direct definition.
        for (i, j) in [(0, 0), (3, 11), (16, 16), (8, 2)] {
            let mut expect = 0.0f32;
            for k in 0..n {
                expect += a.at(i, k) * b.at(k, j);
            }
            assert!((c.at(i, j) - expect).abs() < 1e-3, "mismatch at {i},{j}");
        }
    }

    #[test]
    fn parallel_matches_sequential_all_schedules() {
        let n = 33;
        let a = Matrix::random(n, 3);
        let bt = Matrix::random(n, 4);
        let seq = matmul_seq(&a, &bt);
        for sched in [
            OmpSchedule::Static,
            OmpSchedule::Dynamic(1),
            OmpSchedule::Guided(2),
            OmpSchedule::StaticChunk(5),
        ] {
            let par = matmul_par(&a, &bt, 8, sched);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "schedule {sched}");
        }
    }

    #[test]
    fn blocked_matches_sequential() {
        let n = 40;
        let a = Matrix::random(n, 5);
        let bt = Matrix::random(n, 6);
        let seq = matmul_seq(&a, &bt);
        for block in [8, 16, 64] {
            let blk = matmul_blocked(&a, &bt, block);
            assert!(seq.max_abs_diff(&blk) < 1e-3, "block {block}");
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random(13, 9);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn c_source_parses_and_verifies() {
        let src = c_source(8);
        let out =
            purec_core::run_pc_cc(&src, purec_core::PcCcOptions::default()).expect("pipeline");
        assert!(out.pure_set.contains("dot"));
        assert!(out.pure_set.contains("mult"));
        // Init loop (malloc) + compute loop in main, plus dot's own loop.
        assert!(out.scops_marked >= 2, "marked {}", out.scops_marked);
    }

    #[test]
    fn checksum_helper_is_deterministic() {
        assert_eq!(c_source_checksum(8), c_source_checksum(8));
    }
}
