//! # apps — the paper's four evaluation applications
//!
//! Each module provides (a) the `pure`-annotated C source consumed by the
//! compiler chain, (b) a native Rust reference implementation executed on
//! the real omprt runtime for correctness validation, and (c) workload
//! characterizations for the machine model. [`figures`] assembles the
//! paper's Figures 3–11 from those pieces.
//!
//! | module | paper application | figures |
//! |--------|-------------------|---------|
//! | [`matmul`] | 4096² matrix–matrix multiplication | 3, 4, 5 |
//! | [`heat`] | point-heated plate, 200 Jacobi steps | 6, 7 |
//! | [`satellite`] | hyperspectral AOD retrieval (synthetic MODIS) | 8, 9 |
//! | [`lama`] | LAMA ELL SpMV (synthetic Boeing/pwtk) | 10, 11 |

mod util;

pub mod figures;
pub mod heat;
pub mod lama;
pub mod matmul;
pub mod satellite;

pub use figures::{all_figures, Figure, Series, CORES};
