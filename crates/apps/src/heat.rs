//! Application 2: heat distribution on a point-heated plate (paper
//! Sect. 4.1/4.3.2, Figs. 6–7).
//!
//! Jacobi iteration on a `n × n` grid: each step averages the four
//! neighbours into a second buffer, then the buffers swap. The plate is
//! permanently heated at one point of one side. The paper runs
//! 4096 × 4096 for 200 steps.

use crate::util::SendPtr;
use machine::{parallel_for, OmpSchedule};

/// The heated plate: two buffers, swap after each step.
#[derive(Debug, Clone)]
pub struct Plate {
    pub n: usize,
    pub cur: Vec<f32>,
    pub next: Vec<f32>,
    /// Heat source position (row on the left edge) and temperature.
    pub source: (usize, usize),
    pub source_temp: f32,
}

impl Plate {
    pub fn new(n: usize) -> Self {
        let mut p = Plate {
            n,
            cur: vec![0.0; n * n],
            next: vec![0.0; n * n],
            source: (n / 2, 0),
            source_temp: 100.0,
        };
        p.apply_source();
        p
    }

    fn apply_source(&mut self) {
        let (si, sj) = self.source;
        self.cur[si * self.n + sj] = self.source_temp;
    }

    /// The paper's per-point update, extracted as the pure function: the
    /// average of the four direct neighbours.
    #[inline]
    pub fn stencil(grid: &[f32], n: usize, i: usize, j: usize) -> f32 {
        0.25 * (grid[(i - 1) * n + j]
            + grid[(i + 1) * n + j]
            + grid[i * n + j - 1]
            + grid[i * n + j + 1])
    }

    /// One sequential Jacobi step.
    pub fn step_seq(&mut self) {
        let n = self.n;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                self.next[i * n + j] = Self::stencil(&self.cur, n, i, j);
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
        self.apply_source();
    }

    /// One parallel Jacobi step on the omprt runtime (row-parallel, the
    /// shape the transformed code has).
    pub fn step_par(&mut self, threads: usize, schedule: OmpSchedule) {
        let n = self.n;
        {
            let src = &self.cur;
            let dst = SendPtr(self.next.as_mut_ptr());
            parallel_for((n - 2) as u64, threads, schedule, |row| {
                let i = row as usize + 1;
                for j in 1..n - 1 {
                    // SAFETY: row i of `next` is written by iteration i only.
                    unsafe { *dst.get().add(i * n + j) = Self::stencil(src, n, i, j) };
                }
            });
        }
        std::mem::swap(&mut self.cur, &mut self.next);
        self.apply_source();
    }

    pub fn run_seq(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step_seq();
        }
    }

    pub fn run_par(&mut self, steps: usize, threads: usize, schedule: OmpSchedule) {
        for _ in 0..steps {
            self.step_par(threads, schedule);
        }
    }

    /// Total heat (conserved modulo boundary losses); used as a checksum.
    pub fn total_heat(&self) -> f64 {
        self.cur.iter().map(|&v| v as f64).sum()
    }

    pub fn max_abs_diff(&self, other: &Plate) -> f32 {
        self.cur
            .iter()
            .zip(&other.cur)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Annotated C source of the heat application for the compiler chain. The
/// spatial nests call the pure `stencil_avg`; the outer time loop contains
/// two nests + no calls, so the chain marks it and the polyhedral driver
/// descends to the children (the imperfect-nest path).
pub fn c_source(n: usize, steps: usize) -> String {
    format!(
        "#include <stdlib.h>\n\
         #include <stdio.h>\n\
         \n\
         float **cur, **nxt;\n\
         \n\
         pure float stencil_avg(pure float* up, pure float* row, pure float* down, int j) {{\n\
             return 0.25f * (up[j] + down[j] + row[j - 1] + row[j + 1]);\n\
         }}\n\
         \n\
         int main() {{\n\
             cur = (float**) malloc({n} * sizeof(float*));\n\
             nxt = (float**) malloc({n} * sizeof(float*));\n\
             for (int i = 0; i < {n}; i++) {{\n\
                 cur[i] = (float*) malloc({n} * sizeof(float));\n\
                 nxt[i] = (float*) malloc({n} * sizeof(float));\n\
                 for (int j = 0; j < {n}; j++) {{\n\
                     cur[i][j] = 0.0f;\n\
                     nxt[i][j] = 0.0f;\n\
                 }}\n\
             }}\n\
             cur[{mid}][0] = 100.0f;\n\
             for (int t = 0; t < {steps}; t++) {{\n\
                 for (int i = 1; i < {nm1}; i++)\n\
                     for (int j = 1; j < {nm1}; j++)\n\
                         nxt[i][j] = stencil_avg((pure float*)cur[i - 1], (pure float*)cur[i], (pure float*)cur[i + 1], j);\n\
                 for (int i = 1; i < {nm1}; i++)\n\
                     for (int j = 1; j < {nm1}; j++)\n\
                         cur[i][j] = nxt[i][j];\n\
                 cur[{mid}][0] = 100.0f;\n\
             }}\n\
             float total = 0.0f;\n\
             for (int i = 0; i < {n}; i++)\n\
                 for (int j = 0; j < {n}; j++)\n\
                     total += cur[i][j];\n\
             printf(\"heat=%.3f\\n\", total);\n\
             return 0;\n\
         }}\n",
        mid = n / 2,
        nm1 = n - 1,
    )
}

/// Native mirror of the C program above (for interpreter cross-checks).
pub fn c_source_total(n: usize, steps: usize) -> f64 {
    let mut plate = Plate::new(n);
    // The C version copies next→cur instead of swapping; semantics match
    // Jacobi with a fixed source.
    plate.run_seq(steps);
    plate.total_heat()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_diffuses_from_source() {
        let mut p = Plate::new(32);
        p.run_seq(50);
        // The source stays hot.
        assert_eq!(p.cur[16 * 32], 100.0);
        // Heat reached the neighbourhood.
        assert!(p.cur[16 * 32 + 1] > 0.0);
        assert!(p.cur[16 * 32 + 5] > 0.0);
        // Far corner is still cold-ish.
        assert!(p.cur[31] < 1.0);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut seq = Plate::new(48);
        let mut par = Plate::new(48);
        seq.run_seq(25);
        for sched in [OmpSchedule::Static, OmpSchedule::Dynamic(2)] {
            let mut p = par.clone();
            p.run_par(25, 8, sched);
            assert_eq!(seq.max_abs_diff(&p), 0.0, "schedule {sched}");
        }
        par.run_par(25, 4, OmpSchedule::Static);
        assert_eq!(seq.max_abs_diff(&par), 0.0);
    }

    #[test]
    fn heat_grows_monotonically_under_constant_source() {
        let mut p = Plate::new(24);
        let mut last = p.total_heat();
        for _ in 0..10 {
            p.step_seq();
            let now = p.total_heat();
            assert!(now >= last - 1e-6, "{now} < {last}");
            last = now;
        }
    }

    #[test]
    fn c_source_passes_the_chain() {
        let src = c_source(16, 4);
        let out =
            purec_core::run_pc_cc(&src, purec_core::PcCcOptions::default()).expect("pipeline");
        assert!(out.pure_set.contains("stencil_avg"));
        assert!(out.scops_marked >= 2);
    }
}
