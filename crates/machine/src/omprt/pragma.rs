//! Parsing of `#pragma omp parallel for` clause lists.
//!
//! One parser serves both consumers: the interpreter engines only need
//! the [`OmpSchedule`], while the static race analyzer additionally
//! consumes the `private(...)` list and wants to *warn* about clauses or
//! schedule kinds the runtime does not implement (which previously
//! degraded to `static` silently).

use crate::omprt::sched::OmpSchedule;

/// The clause list of one `omp parallel for` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmpClauses {
    /// Effective schedule (unknown kinds degrade to `Static`, recorded in
    /// [`OmpClauses::unknown_schedule`]).
    pub schedule: OmpSchedule,
    /// Variables listed in `private(...)` clauses.
    pub privates: Vec<String>,
    /// Clause names the runtime does not understand (e.g. `reduction`,
    /// `collapse`, `nowait`).
    pub unknown_clauses: Vec<String>,
    /// `schedule(kind)` kind that fell back to static (e.g. `runtime`).
    pub unknown_schedule: Option<String>,
}

/// Parse the clause list of `pragma omp parallel for ...` /
/// `pragma omp for ...`. Returns `None` when `text` is not a
/// parallel-for pragma at all (e.g. `omp simd`, `scop`).
pub fn parse_omp_parallel_for_clauses(text: &str) -> Option<OmpClauses> {
    let t = text.trim();
    let rest = t
        .strip_prefix("pragma omp parallel for")
        .or_else(|| t.strip_prefix("pragma omp for"))?;

    let mut clauses = OmpClauses {
        schedule: OmpSchedule::Static,
        privates: Vec::new(),
        unknown_clauses: Vec::new(),
        unknown_schedule: None,
    };

    let mut s = rest;
    loop {
        s = s.trim_start_matches([' ', '\t', ',']);
        if s.is_empty() {
            break;
        }
        let name_len = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(s.len());
        if name_len == 0 {
            // Stray punctuation — skip one char rather than loop forever.
            s = &s[1..];
            continue;
        }
        let name = &s[..name_len];
        s = &s[name_len..];
        let args = if let Some(open) = s.strip_prefix('(') {
            match open.find(')') {
                Some(close) => {
                    let a = &open[..close];
                    s = &open[close + 1..];
                    Some(a)
                }
                None => {
                    // Unbalanced parenthesis: consume the rest.
                    s = "";
                    Some(open)
                }
            }
        } else {
            None
        };

        match (name, args) {
            ("schedule", Some(spec)) => {
                let mut parts = spec.split(',').map(str::trim);
                let kind = parts.next().unwrap_or("");
                let chunk: u64 = parts.next().and_then(|c| c.parse().ok()).unwrap_or(1);
                clauses.schedule = match kind {
                    "dynamic" => OmpSchedule::Dynamic(chunk),
                    "guided" => OmpSchedule::Guided(chunk.max(1)),
                    "static" if chunk > 1 => OmpSchedule::StaticChunk(chunk),
                    "static" => OmpSchedule::Static,
                    other => {
                        clauses.unknown_schedule = Some(other.to_string());
                        OmpSchedule::Static
                    }
                };
            }
            ("private", Some(list)) => {
                clauses.privates.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|v| !v.is_empty())
                        .map(str::to_string),
                );
            }
            _ => clauses.unknown_clauses.push(name.to_string()),
        }
    }

    Some(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_parallel_for_is_static() {
        let c = parse_omp_parallel_for_clauses("pragma omp parallel for").unwrap();
        assert_eq!(c.schedule, OmpSchedule::Static);
        assert!(c.privates.is_empty());
        assert!(c.unknown_clauses.is_empty());
        assert!(c.unknown_schedule.is_none());
    }

    #[test]
    fn non_parallel_pragmas_are_none() {
        assert!(parse_omp_parallel_for_clauses("pragma omp simd").is_none());
        assert!(parse_omp_parallel_for_clauses("pragma scop").is_none());
    }

    #[test]
    fn schedule_kinds_parse() {
        let c = |t: &str| parse_omp_parallel_for_clauses(t).unwrap().schedule;
        assert_eq!(
            c("pragma omp parallel for schedule(dynamic, 4)"),
            OmpSchedule::Dynamic(4)
        );
        assert_eq!(
            c("pragma omp parallel for schedule(guided)"),
            OmpSchedule::Guided(1)
        );
        assert_eq!(
            c("pragma omp parallel for schedule(static, 8)"),
            OmpSchedule::StaticChunk(8)
        );
        assert_eq!(c("pragma omp for schedule(static)"), OmpSchedule::Static);
    }

    #[test]
    fn private_list_collected() {
        let c = parse_omp_parallel_for_clauses(
            "pragma omp parallel for private(t2t, t1, t2) schedule(dynamic,2)",
        )
        .unwrap();
        assert_eq!(c.privates, vec!["t2t", "t1", "t2"]);
        assert_eq!(c.schedule, OmpSchedule::Dynamic(2));
        assert!(c.unknown_clauses.is_empty());
    }

    #[test]
    fn unknown_schedule_kind_recorded_not_silent() {
        let c =
            parse_omp_parallel_for_clauses("pragma omp parallel for schedule(runtime)").unwrap();
        assert_eq!(c.schedule, OmpSchedule::Static);
        assert_eq!(c.unknown_schedule.as_deref(), Some("runtime"));
    }

    #[test]
    fn unknown_clauses_recorded() {
        let c = parse_omp_parallel_for_clauses(
            "pragma omp parallel for reduction(+:sum) collapse(2) nowait",
        )
        .unwrap();
        assert_eq!(c.unknown_clauses, vec!["reduction", "collapse", "nowait"]);
    }
}
