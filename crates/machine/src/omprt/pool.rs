//! A persistent worker pool with socket-aware virtual pinning and
//! per-worker work-stealing deques.
//!
//! The paper pins threads with `numactl` so the OS cannot migrate them
//! between the four Opteron sockets. Our pool reproduces the *assignment*:
//! each worker is labelled with a virtual core and socket, filling socket 0
//! completely before spilling onto socket 1 (the `numactl` **compact**
//! policy the paper's runs use — see [`ThreadPool::new`]), which the NUMA
//! cost model and the interpreter's first-touch accounting use.
//!
//! ## Task routing: deques + injector
//!
//! Work distribution is Chase–Lev style ([`crate::omprt::deque`]):
//!
//! * every worker owns a **deque** — tasks submitted *from* a pool worker
//!   (nested regions, pure-call futures) push onto the submitting worker's
//!   own deque (LIFO local pop, one release fence, no lock, no wakeup
//!   unless someone is idle);
//! * external threads submit through a single **injector** queue;
//! * a worker looks for work in that order — own deque (newest first),
//!   injector, then **steals** the oldest task from a sibling's deque
//!   (rotating victim order, so thieves don't convoy on worker 0).
//!
//! This replaces the previous single shared channel: divide-and-conquer
//! pure code used to serialize every spawn on one queue's lock; now a
//! worker spawning recursively touches only its own deque and the steal
//! path migrates whole subtrees (FIFO end = biggest pending subtree).
//!
//! ## Completion tracking
//!
//! Two layers, unchanged from the channel era:
//!
//! * the **pool counter** covers every task ever submitted — it is what
//!   [`ThreadPool::join`] and `Drop` wait on;
//! * a [`TaskGroup`] is a per-region *generation*: tasks submitted through
//!   [`ThreadPool::submit_to`] additionally count against their group, and
//!   [`ThreadPool::join_group`] waits for that group alone. This is what
//!   lets nested parallel regions share one process-wide pool — an inner
//!   region's join does not wait for (or wake on) unrelated outer tasks.
//!
//! ## Invariants
//!
//! * Workers are panic-safe: a panicking task is caught, its pool/group
//!   counters are still decremented (a panic must never leave `join`
//!   waiting forever — stolen tasks included), and the payload re-raises
//!   on the joining thread.
//! * A join issued *from a pool worker* (a nested region, a future await)
//!   does not block the worker: it **helps** — own deque, injector, then
//!   steals — until its group completes, so a pool of N workers can
//!   execute arbitrarily nested regions and futures without deadlock.
//! * A group's tasks are all enqueued before its join begins (regions
//!   submit everything first; each future is a single-task group), so a
//!   helping joiner that scans *every* queue empty may park on the group
//!   condvar: the group's outstanding tasks are all in flight on other
//!   threads, and `finish_one` notifies under the lock.
//! * Idle workers park on a condvar; every enqueue bumps a `queued`
//!   counter (`SeqCst`) and wakes sleepers when the sleeper count
//!   (`SeqCst`) is non-zero — the two total-ordered accesses make the
//!   check-then-park race impossible.

use crate::omprt::deque::{Steal, Task, WorkDeque};
use crate::omprt::instrument;
use parking_lot::{Condvar, Mutex, RwLock};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

type PanicPayload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// True on threads owned by *any* [`ThreadPool`] — joins from such
    /// threads must help drain the queues instead of blocking.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The owning pool (weak, so a superseded global pool can drop) and
    /// worker index of this thread, when it is a pool worker.
    static WORKER_CTX: RefCell<Option<(Weak<PoolCore>, usize)>> = const { RefCell::new(None) };
}

/// Virtual placement of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub worker: usize,
    pub core: usize,
    pub socket: usize,
}

/// Completion state shared by the pool and by each task group: an
/// outstanding-task counter, a condvar for external joiners, and the first
/// panic payload caught from a member task.
struct Completion {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

impl Completion {
    fn new() -> Self {
        Completion {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn record_panic(&self, p: PanicPayload) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }

    /// Decrement `pending`; wake joiners when it reaches zero. The notify
    /// happens under the lock so a joiner that observed `pending != 0`
    /// cannot park between our decrement and our wakeup.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// Block until `pending == 0` (external joiners only).
    fn wait(&self) {
        let mut guard = self.lock.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut guard);
        }
    }

    /// Re-raise the first recorded panic, if any.
    fn rethrow(&self) {
        if let Some(p) = self.panic.lock().take() {
            resume_unwind(p);
        }
    }
}

/// One *generation* of tasks (typically: one parallel region). Obtained
/// from [`ThreadPool::group`]; joined with [`ThreadPool::join_group`].
pub struct TaskGroup {
    shared: Arc<Completion>,
}

impl TaskGroup {
    /// Whether every task of this generation has finished (a group with
    /// no submissions yet is trivially complete).
    pub fn is_complete(&self) -> bool {
        self.shared.pending.load(Ordering::Acquire) == 0
    }
}

/// True on threads owned by any [`ThreadPool`]. Joins and awaits issued
/// from such a thread must help drain the queues instead of blocking —
/// the nested-region / future-await discipline.
pub fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// Worker index of the current thread within the pool that owns it (any
/// pool — used by the futures layer to attribute *where* a task ran).
pub fn worker_index() -> Option<usize> {
    WORKER_CTX.with(|c| c.borrow().as_ref().map(|(_, i)| *i))
}

/// Work-stealing statistics of one pool (monotonic totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks a worker claimed from a *sibling's* deque.
    pub tasks_stolen: u64,
    /// Tasks pushed onto the submitting worker's own deque.
    pub local_pushes: u64,
}

/// When instrumentation is live, wrap a task so the enqueue → claim
/// latency lands in the `queue_wait_ns` histogram. One branch when off;
/// the task is passed through untouched.
#[inline]
fn stamp_queue_wait(task: Task) -> Task {
    if instrument::enabled() {
        let enqueued_ns = instrument::now_ns();
        Box::new(move || {
            instrument::metrics()
                .queue_wait_ns
                .record(instrument::now_ns().saturating_sub(enqueued_ns));
            task();
        })
    } else {
        task
    }
}

/// Shared state of one pool: the queues, the sleep protocol and the
/// pool-wide completion counter.
struct PoolCore {
    /// External-submission queue — the only queue non-worker threads
    /// touch.
    injector: Mutex<VecDeque<Task>>,
    /// One Chase–Lev deque per worker.
    deques: Vec<WorkDeque>,
    /// Per-worker count of *exposed* futures: pushed onto that worker's
    /// deque and neither claimed by an executor nor revoked by their
    /// awaiter yet. This — not the raw deque length — is the spawn
    /// throttle's signal: revoked entries linger in the deque as no-op
    /// pops, and counting them (or missing claimed-but-queued ones)
    /// would let spawn admission churn with the thieves' pop rate.
    exposed: Vec<Arc<AtomicUsize>>,
    /// Tasks currently sitting in the injector or any deque (not yet
    /// claimed). The idle-parking signal; `SeqCst` pairs with
    /// `idle_sleepers` (see module docs).
    queued: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    idle_sleepers: AtomicUsize,
    shutdown: AtomicBool,
    shared: Completion,
    steals: AtomicU64,
    local_pushes: AtomicU64,
}

impl PoolCore {
    /// Wake one idle worker after an enqueue — one task needs one
    /// thief, and waking the whole herd just to race for a single entry
    /// costs a context switch per loser. One `SeqCst` load in the
    /// common (nobody idle) case. Safe with `notify_one`: a woken
    /// worker that finds nothing re-checks `queued` under the lock
    /// before re-parking, so a task can never strand while every worker
    /// sleeps.
    fn notify_idle(&self) {
        let sleepers = self.idle_sleepers.load(Ordering::SeqCst);
        instrument::metrics().idle_sleepers.sample(sleepers as u64);
        if sleepers > 0 {
            let _g = self.idle_lock.lock();
            self.idle_cv.notify_one();
        }
    }

    fn enqueue_injector(&self, task: Task) {
        let task = stamp_queue_wait(task);
        {
            let mut q = self.injector.lock();
            q.push_back(task);
            instrument::metrics().injector_len.sample(q.len() as u64);
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.notify_idle();
    }

    /// Owner-side push onto worker `index`'s deque. Must only be called
    /// from that worker's thread (the deque's owner contract).
    fn enqueue_local(&self, index: usize, task: Task) {
        let task = stamp_queue_wait(task);
        self.deques[index].push(task);
        instrument::metrics()
            .deque_depth
            .sample(self.deques[index].len() as u64);
        self.local_pushes.fetch_add(1, Ordering::Relaxed);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.notify_idle();
    }

    /// Claim one task: own deque first (when `index` names a worker of
    /// this pool), then the injector, then steal from siblings in
    /// rotating order. A `Retry` from a victim means a race was lost to
    /// concurrent progress — spin on that victim until it is decidably
    /// empty or yields a task.
    fn find_task(&self, index: Option<usize>) -> Option<Task> {
        if let Some(i) = index {
            if let Some(t) = self.deques[i].pop() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        // Widen the owner-vs-stealer race window before scanning victims.
        #[cfg(feature = "fault-inject")]
        crate::fault::steal_jitter();
        // Steal-scan start; 0 means "instrumentation off" (`max(1)`
        // keeps a first-nanosecond timestamp from aliasing it).
        let scan_start_ns = if instrument::enabled() {
            instrument::now_ns().max(1)
        } else {
            0
        };
        let n = self.deques.len();
        let start = index.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == index {
                continue;
            }
            loop {
                match self.deques[victim].steal() {
                    Steal::Task(t) => {
                        if scan_start_ns != 0 {
                            instrument::metrics()
                                .steal_latency_ns
                                .record(instrument::now_ns().saturating_sub(scan_start_ns));
                            instrument::instant("pool.steal", victim as u64);
                        }
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                        return Some(t);
                    }
                    Steal::Empty => break,
                    Steal::Retry => std::hint::spin_loop(),
                }
            }
        }
        None
    }

    /// Execute one task with panic containment: the payload is recorded
    /// for `join` and the pool counter is **always** decremented — a
    /// panicking task (stolen or not) must never leave a joiner waiting
    /// forever.
    fn run_task(&self, task: Task) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
            self.shared.record_panic(p);
        }
        self.shared.finish_one();
    }
}

/// Main loop of worker `index`: claim work; otherwise park on the idle
/// condvar until an enqueue (or shutdown) wakes it.
fn worker_loop(core: Arc<PoolCore>, index: usize) {
    IN_POOL_WORKER.with(|c| c.set(true));
    WORKER_CTX.with(|c| *c.borrow_mut() = Some((Arc::downgrade(&core), index)));
    loop {
        if let Some(task) = core.find_task(Some(index)) {
            core.run_task(task);
            continue;
        }
        if core.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Park. The sleeper count is raised under the idle lock and the
        // re-check of `queued` happens before waiting, so an enqueue
        // that missed the sleeper in `notify_idle` is seen here (both
        // counters are SeqCst — one side always observes the other).
        let mut guard = core.idle_lock.lock();
        core.idle_sleepers.fetch_add(1, Ordering::SeqCst);
        if core.queued.load(Ordering::SeqCst) == 0 && !core.shutdown.load(Ordering::SeqCst) {
            core.idle_cv.wait(&mut guard);
        }
        core.idle_sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Persistent thread pool with deterministic worker → socket placement
/// and per-worker work-stealing deques.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
    placements: Vec<Placement>,
}

impl ThreadPool {
    /// Create a pool of `nthreads` workers distributed over `sockets`
    /// sockets with `cores_per_socket` cores each, filling socket 0 first
    /// (the `numactl` compact policy used in the paper's runs).
    pub fn new(nthreads: usize, sockets: usize, cores_per_socket: usize) -> Self {
        let nthreads = nthreads.max(1);
        let core = Arc::new(PoolCore {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..nthreads).map(|_| WorkDeque::new()).collect(),
            exposed: (0..nthreads)
                .map(|_| Arc::new(AtomicUsize::new(0)))
                .collect(),
            queued: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle_sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            shared: Completion::new(),
            steals: AtomicU64::new(0),
            local_pushes: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(nthreads);
        let mut placements = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let vcore = w % (sockets * cores_per_socket).max(1);
            let socket = vcore / cores_per_socket.max(1);
            placements.push(Placement {
                worker: w,
                core: vcore,
                socket,
            });
            let core = Arc::clone(&core);
            workers.push(std::thread::spawn(move || worker_loop(core, w)));
        }
        ThreadPool {
            core,
            workers,
            placements,
        }
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Placement table (worker index → virtual core/socket).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of submitted tasks not yet finished (queued **or** running)
    /// across every generation — the saturation signal external future
    /// spawns throttle on.
    pub fn pending_tasks(&self) -> usize {
        self.core.shared.pending.load(Ordering::Acquire)
    }

    /// Work-stealing statistics (monotonic process-lifetime totals).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_stolen: self.core.steals.load(Ordering::Relaxed),
            local_pushes: self.core.local_pushes.load(Ordering::Relaxed),
        }
    }

    /// Worker index of the current thread **within this pool**, or
    /// `None` when called from an external thread (or a worker of a
    /// different pool).
    pub fn current_worker(&self) -> Option<usize> {
        WORKER_CTX.with(|c| {
            let b = c.borrow();
            let (weak, i) = b.as_ref()?;
            let core = weak.upgrade()?;
            Arc::ptr_eq(&core, &self.core).then_some(*i)
        })
    }

    /// Number of *exposed* futures of the current worker — pushed onto
    /// its deque, not yet claimed by any executor nor revoked by their
    /// awaiter — when this thread is a worker of this pool. The local
    /// spawn throttle's signal.
    pub fn local_depth(&self) -> Option<usize> {
        self.current_worker()
            .map(|i| self.core.exposed[i].load(Ordering::Relaxed))
    }

    /// Exposure counter of the current worker, for the futures layer:
    /// incremented at local spawn, decremented exactly once per future
    /// at claim or at cancellation.
    pub(crate) fn exposure_handle(&self) -> Option<Arc<AtomicUsize>> {
        self.current_worker()
            .map(|i| Arc::clone(&self.core.exposed[i]))
    }

    /// Number of distinct sockets the first `n` workers span.
    pub fn sockets_spanned(&self, n: usize) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for p in self.placements.iter().take(n) {
            set.insert(p.socket);
        }
        set.len().max(1)
    }

    /// Route a raw task: the submitting worker's own deque when called
    /// from a worker of this pool, the injector otherwise. The pool
    /// counter has already been incremented by the caller.
    fn push_task(&self, task: Task, allow_local: bool) {
        match if allow_local {
            self.current_worker()
        } else {
            None
        } {
            Some(i) => self.core.enqueue_local(i, task),
            None => self.core.enqueue_injector(task),
        }
    }

    /// Submit one task. From a pool worker this pushes onto the worker's
    /// own deque (stolen by idle siblings); from any other thread it
    /// goes through the shared injector.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.core.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.push_task(Box::new(f), true);
    }

    /// Open a new task generation (one parallel region's worth of tasks).
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            shared: Arc::new(Completion::new()),
        }
    }

    /// Submit one task counted against `group` (and against the pool),
    /// routed like [`ThreadPool::submit`] — local deque from a worker,
    /// injector otherwise. A panic in `f` is caught, recorded on the
    /// group, and re-raised by [`ThreadPool::join_group`].
    pub fn submit_to<F: FnOnce() + Send + 'static>(&self, group: &TaskGroup, f: F) {
        self.submit_grouped(group, f, true);
    }

    /// [`ThreadPool::submit_to`] forced through the shared injector even
    /// from a pool worker — the single-queue substrate kept for the
    /// deque-vs-channel A/B (`purec --no-steal`).
    pub fn submit_to_shared<F: FnOnce() + Send + 'static>(&self, group: &TaskGroup, f: F) {
        self.submit_grouped(group, f, false);
    }

    fn submit_grouped<F: FnOnce() + Send + 'static>(
        &self,
        group: &TaskGroup,
        f: F,
        allow_local: bool,
    ) {
        group.shared.pending.fetch_add(1, Ordering::AcqRel);
        let gs = Arc::clone(&group.shared);
        self.core.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.push_task(
            Box::new(move || {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                    // Injected panics land inside the task's unwind scope,
                    // so they are recorded on the group exactly like a
                    // genuine task panic.
                    #[cfg(feature = "fault-inject")]
                    crate::fault::maybe_panic();
                    f()
                })) {
                    gs.record_panic(p);
                }
                gs.finish_one();
            }),
            allow_local,
        );
    }

    /// Wait until every task of `group` has completed, without re-raising
    /// panics. From a pool worker this *helps*: it claims queued tasks —
    /// own deque, injector, steals; every claim is global progress —
    /// instead of blocking, so nested regions and futures cannot deadlock
    /// a fully-occupied pool. Once every queue scans empty, the worker
    /// parks on the group's condvar rather than burning a core through
    /// the stragglers' tail: every task of this group was enqueued before
    /// the join began, so after an all-queues-empty observation the
    /// group's outstanding tasks are all *in flight* on other threads —
    /// parking cannot strand a group task in a queue, and `finish_one`
    /// notifies under the lock. (A worker of a *different* pool helps on
    /// this pool's injector and deques too — it just has no own deque
    /// here.)
    ///
    /// Returns whether this join actually *helped* — executed at least
    /// one queued task while waiting (always `false` for external,
    /// non-worker joiners).
    pub fn wait_group(&self, group: &TaskGroup) -> bool {
        let mut helped = false;
        if IN_POOL_WORKER.with(|c| c.get()) {
            let me = self.current_worker();
            let mut idle_polls = 0u32;
            while group.shared.pending.load(Ordering::Acquire) != 0 {
                match self.core.find_task(me) {
                    Some(task) => {
                        self.core.run_task(task);
                        helped = true;
                        idle_polls = 0;
                    }
                    None if idle_polls < 64 => {
                        idle_polls += 1;
                        std::thread::yield_now();
                    }
                    None => {
                        let mut guard = group.shared.lock.lock();
                        if group.shared.pending.load(Ordering::Acquire) != 0 {
                            group.shared.cv.wait(&mut guard);
                        }
                        drop(guard);
                        idle_polls = 0;
                    }
                }
            }
        } else {
            group.shared.wait();
        }
        helped
    }

    /// [`ThreadPool::wait_group`], then re-raise the first panic any task
    /// of the group produced. Returns [`ThreadPool::wait_group`]'s
    /// helped flag.
    pub fn join_group(&self, group: &TaskGroup) -> bool {
        let helped = self.wait_group(group);
        group.shared.rethrow();
        helped
    }

    /// Block until every submitted task has completed, then re-raise the
    /// first panic a task produced (if any). Never hangs on a panicking
    /// task: workers decrement the counter on the unwind path too.
    pub fn join(&self) {
        self.core.shared.wait();
        self.core.shared.rethrow();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Wait without re-raising: panicking inside `drop` would abort.
        // Every queue is empty once pending reaches zero, so workers
        // observe the shutdown flag on their next idle pass.
        self.core.shared.wait();
        self.core.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.core.idle_lock.lock();
            self.core.idle_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide pool
// ---------------------------------------------------------------------------

/// The process-wide pool behind pooled `parallel_for` variants. Created
/// lazily on first use and grown (replaced by a larger pool) when a region
/// requests more threads than the current pool holds; regions hold an
/// `Arc`, so a superseded pool drains its in-flight work before its
/// workers exit. Placement uses the paper machine's 4 × 16 geometry.
static GLOBAL_POOL: RwLock<Option<Arc<ThreadPool>>> = RwLock::new(None);

/// Shared persistent pool with at least `nthreads` workers.
pub fn global_pool(nthreads: usize) -> Arc<ThreadPool> {
    let nthreads = nthreads.max(1);
    {
        let g = GLOBAL_POOL.read();
        if let Some(p) = g.as_ref() {
            if p.len() >= nthreads {
                return Arc::clone(p);
            }
        }
    }
    let mut g = GLOBAL_POOL.write();
    if let Some(p) = g.as_ref() {
        if p.len() >= nthreads {
            return Arc::clone(p);
        }
    }
    let p = Arc::new(ThreadPool::new(nthreads, 4, 16));
    *g = Some(Arc::clone(&p));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(4, 4, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_with_no_tasks_returns() {
        let pool = ThreadPool::new(2, 1, 2);
        pool.join();
        pool.join();
    }

    #[test]
    fn placements_fill_sockets_compactly() {
        let pool = ThreadPool::new(64, 4, 16);
        assert_eq!(pool.len(), 64);
        assert_eq!(pool.placements()[0].socket, 0);
        assert_eq!(pool.placements()[15].socket, 0);
        assert_eq!(pool.placements()[16].socket, 1);
        assert_eq!(pool.placements()[63].socket, 3);
        assert_eq!(pool.sockets_spanned(8), 1);
        assert_eq!(pool.sockets_spanned(16), 1);
        assert_eq!(pool.sockets_spanned(17), 2);
        assert_eq!(pool.sockets_spanned(64), 4);
    }

    #[test]
    fn reuse_across_generations() {
        let pool = ThreadPool::new(4, 1, 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _round in 0..5 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    /// Regression: a panicking task used to kill its worker *before* the
    /// pending counter was decremented, so `join` hung forever. Now the
    /// unwind is caught, the counter always reaches zero, and the panic
    /// resurfaces on the joining thread — after which the pool is still
    /// fully usable.
    #[test]
    fn join_propagates_task_panic_and_pool_survives() {
        let pool = ThreadPool::new(2, 1, 2);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.submit(|| panic!("task boom"));
        let joined = catch_unwind(AssertUnwindSafe(|| pool.join()));
        let payload = joined.expect_err("join must re-raise the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "task boom");
        // The panic is consumed: the pool keeps working and joins cleanly.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(10, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn group_join_waits_for_its_generation_only() {
        let pool = ThreadPool::new(2, 1, 2);
        let counter = Arc::new(AtomicU64::new(0));
        let g1 = pool.group();
        let g2 = pool.group();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit_to(&g1, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // A long-running task in another generation must not block g1.
        let gate = Arc::new(AtomicU64::new(0));
        let gate2 = Arc::clone(&gate);
        pool.submit_to(&g2, move || {
            while gate2.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        });
        pool.join_group(&g1);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        gate.store(1, Ordering::Release);
        pool.join_group(&g2);
    }

    #[test]
    fn group_join_propagates_panic() {
        let pool = ThreadPool::new(2, 1, 2);
        let g = pool.group();
        pool.submit_to(&g, || panic!("group boom"));
        let joined = catch_unwind(AssertUnwindSafe(|| pool.join_group(&g)));
        assert!(joined.is_err());
        // The pool-level join stays clean: group panics belong to groups.
        pool.join();
    }

    /// Nested generations on a single-worker pool: without the helping
    /// join this deadlocks (the lone worker would block waiting for a
    /// subtask that can only run on itself). The inner submits land on
    /// the worker's own deque and its helping join pops them back.
    #[test]
    fn nested_group_join_from_worker_helps_instead_of_deadlocking() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let outer = pool.group();
        let result = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let r2 = Arc::clone(&result);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            for _ in 0..4 {
                let r = Arc::clone(&r2);
                p2.submit_to(&inner, move || {
                    r.fetch_add(1, Ordering::Relaxed);
                });
            }
            p2.join_group(&inner);
            r2.fetch_add(100, Ordering::Relaxed);
        });
        pool.join_group(&outer);
        assert_eq!(result.load(Ordering::Relaxed), 104);
        assert!(pool.stats().local_pushes >= 4, "{:?}", pool.stats());
    }

    /// The helping join's parking path: the joining worker scans every
    /// queue empty, then must *park* (not spin) while the group's last
    /// task straggles on another worker — and still wake at completion.
    #[test]
    fn worker_join_parks_through_straggler_tail() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let outer = pool.group();
        let done = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let d2 = Arc::clone(&done);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            let d3 = Arc::clone(&d2);
            p2.submit_to(&inner, move || {
                std::thread::sleep(std::time::Duration::from_millis(40));
                d3.fetch_add(1, Ordering::Relaxed);
            });
            // Let the second worker steal the inner task, so this join
            // sees empty queues with one in-flight straggler and must
            // take the parked path (spin budget << 40ms of sleeping).
            std::thread::sleep(std::time::Duration::from_millis(5));
            p2.join_group(&inner);
            d2.fetch_add(10, Ordering::Relaxed);
        });
        pool.join_group(&outer);
        assert_eq!(done.load(Ordering::Relaxed), 11);
    }

    /// Local pushes from a busy worker are stolen by its idle siblings:
    /// one worker floods its own deque while blocked, the others must
    /// drain it through the steal path.
    #[test]
    fn idle_workers_steal_from_a_busy_sibling() {
        let pool = Arc::new(ThreadPool::new(4, 1, 4));
        let before = pool.stats();
        let outer = pool.group();
        let executed = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let e2 = Arc::clone(&executed);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            for _ in 0..32 {
                let e = Arc::clone(&e2);
                p2.submit_to(&inner, move || {
                    e.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
            // Hold this worker hostage until the siblings finish the
            // inner generation: every inner task they ran was a steal.
            while !inner.is_complete() {
                std::thread::yield_now();
            }
            p2.join_group(&inner);
        });
        pool.join_group(&outer);
        assert_eq!(executed.load(Ordering::Relaxed), 32);
        let after = pool.stats();
        assert!(
            after.tasks_stolen > before.tasks_stolen,
            "siblings must have stolen: {before:?} -> {after:?}"
        );
        assert!(after.local_pushes >= before.local_pushes + 32);
    }

    /// Regression (work-stealing rework): a panic inside a task that was
    /// *stolen* from another worker's deque must re-raise at the group
    /// join — not kill the thief, not hang the owner — and the pool must
    /// stay fully usable afterwards.
    #[test]
    fn panic_in_stolen_task_reraises_at_join_and_pool_survives() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let outer = pool.group();
        let p2 = Arc::clone(&pool);
        let saw_panic = Arc::new(AtomicU64::new(0));
        let sp = Arc::clone(&saw_panic);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            // Local push; this worker then refuses to pop, so only the
            // second worker's steal can run it.
            p2.submit_to(&inner, || panic!("stolen boom"));
            while !inner.is_complete() {
                std::thread::yield_now();
            }
            let joined = catch_unwind(AssertUnwindSafe(|| p2.join_group(&inner)));
            if joined.is_err() {
                sp.fetch_add(1, Ordering::Relaxed);
            }
        });
        pool.join_group(&outer);
        assert_eq!(
            saw_panic.load(Ordering::Relaxed),
            1,
            "stolen task's panic must re-raise at the group join"
        );
        assert!(pool.stats().tasks_stolen >= 1, "{:?}", pool.stats());
        // The pool survives: a fresh generation completes cleanly.
        let g = pool.group();
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit_to(&g, move || {
            c.fetch_add(7, Ordering::Relaxed);
        });
        pool.join_group(&g);
        assert_eq!(counter.load(Ordering::Relaxed), 7);
        pool.join();
    }

    #[test]
    fn submit_to_shared_bypasses_the_local_deque() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let before = pool.stats().local_pushes;
        let outer = pool.group();
        let p2 = Arc::clone(&pool);
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        pool.submit_to_shared(&outer, move || {
            let inner = p2.group();
            for _ in 0..8 {
                let c = Arc::clone(&c2);
                p2.submit_to_shared(&inner, move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            p2.join_group(&inner);
        });
        pool.join_group(&outer);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(
            pool.stats().local_pushes,
            before,
            "shared submits must not touch the deques"
        );
    }

    #[test]
    fn global_pool_is_shared_and_grows() {
        let a = global_pool(2);
        assert!(a.len() >= 2);
        let b = global_pool(1);
        assert!(Arc::ptr_eq(&a, &b) || !b.is_empty());
        let c = global_pool(a.len() + 1);
        assert!(c.len() > a.len());
        let group = c.group();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let k = Arc::clone(&counter);
            c.submit_to(&group, move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        c.join_group(&group);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
