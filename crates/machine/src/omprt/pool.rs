//! A persistent worker pool with socket-aware virtual pinning.
//!
//! The paper pins threads with `numactl` so the OS cannot migrate them
//! between the four Opteron sockets. Our pool reproduces the *assignment*:
//! each worker is labelled with a virtual core and socket, filling socket 0
//! completely before spilling onto socket 1 (the `numactl` **compact**
//! policy the paper's runs use — see [`ThreadPool::new`]), which the NUMA
//! cost model and the interpreter's first-touch accounting use. Work is
//! submitted as closures over a crossbeam channel; [`ThreadPool::join`]
//! blocks until all submitted tasks finish and re-raises the first task
//! panic.
//!
//! Two layers of completion tracking:
//!
//! * the **pool counter** covers every task ever submitted — it is what
//!   [`ThreadPool::join`] and `Drop` wait on;
//! * a [`TaskGroup`] is a per-region *generation*: tasks submitted through
//!   [`ThreadPool::submit_to`] additionally count against their group, and
//!   [`ThreadPool::join_group`] waits for that group alone. This is what
//!   lets nested parallel regions share one process-wide pool — an inner
//!   region's join does not wait for (or wake on) unrelated outer tasks.
//!
//! Workers are panic-safe: a panicking task is caught, its pool/group
//! counters are still decremented (a panic must never leave `join` waiting
//! forever), and the payload is re-raised on the joining thread. A join
//! issued *from a pool worker* (a nested region) does not block the worker:
//! it **helps**, draining queued tasks until its group completes, so a pool
//! of N workers can execute arbitrarily nested regions without deadlock.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// True on threads owned by *any* [`ThreadPool`] — joins from such
    /// threads must help drain the queue instead of blocking.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Virtual placement of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub worker: usize,
    pub core: usize,
    pub socket: usize,
}

/// Completion state shared by the pool and by each task group: an
/// outstanding-task counter, a condvar for external joiners, and the first
/// panic payload caught from a member task.
struct Completion {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

impl Completion {
    fn new() -> Self {
        Completion {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn record_panic(&self, p: PanicPayload) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(p);
        }
    }

    /// Decrement `pending`; wake joiners when it reaches zero. The notify
    /// happens under the lock so a joiner that observed `pending != 0`
    /// cannot park between our decrement and our wakeup.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// Block until `pending == 0` (external joiners only).
    fn wait(&self) {
        let mut guard = self.lock.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut guard);
        }
    }

    /// Re-raise the first recorded panic, if any.
    fn rethrow(&self) {
        if let Some(p) = self.panic.lock().take() {
            resume_unwind(p);
        }
    }
}

/// One *generation* of tasks (typically: one parallel region). Obtained
/// from [`ThreadPool::group`]; joined with [`ThreadPool::join_group`].
pub struct TaskGroup {
    shared: Arc<Completion>,
}

impl TaskGroup {
    /// Whether every task of this generation has finished (a group with
    /// no submissions yet is trivially complete).
    pub fn is_complete(&self) -> bool {
        self.shared.pending.load(Ordering::Acquire) == 0
    }
}

/// True on threads owned by any [`ThreadPool`]. Joins and awaits issued
/// from such a thread must help drain the queue instead of blocking —
/// the nested-region / future-await discipline.
pub fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// Persistent thread pool with deterministic worker → socket placement.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    /// Receiver clone used by worker-side joins to help drain the queue.
    helper_rx: Receiver<Task>,
    workers: Vec<JoinHandle<()>>,
    placements: Vec<Placement>,
    shared: Arc<Completion>,
}

impl ThreadPool {
    /// Create a pool of `nthreads` workers distributed over `sockets`
    /// sockets with `cores_per_socket` cores each, filling socket 0 first
    /// (the `numactl` compact policy used in the paper's runs).
    pub fn new(nthreads: usize, sockets: usize, cores_per_socket: usize) -> Self {
        let nthreads = nthreads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let shared = Arc::new(Completion::new());
        let mut workers = Vec::with_capacity(nthreads);
        let mut placements = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let core = w % (sockets * cores_per_socket).max(1);
            let socket = core / cores_per_socket.max(1);
            placements.push(Placement {
                worker: w,
                core,
                socket,
            });
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || {
                IN_POOL_WORKER.with(|c| c.set(true));
                while let Ok(task) = rx.recv() {
                    Self::run_task(task, &shared);
                }
            }));
        }
        ThreadPool {
            sender: Some(tx),
            helper_rx: rx,
            workers,
            placements,
            shared,
        }
    }

    /// Execute one task with panic containment: the payload is recorded
    /// for `join` and the pool counter is **always** decremented — a
    /// panicking task must never leave a joiner waiting forever.
    fn run_task(task: Task, shared: &Completion) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
            shared.record_panic(p);
        }
        shared.finish_one();
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Placement table (worker index → virtual core/socket).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of submitted tasks not yet finished (queued **or** running)
    /// across every generation — the saturation signal the pure-call
    /// futures layer throttles on.
    pub fn pending_tasks(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Number of distinct sockets the first `n` workers span.
    pub fn sockets_spanned(&self, n: usize) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for p in self.placements.iter().take(n) {
            set.insert(p.socket);
        }
        set.len().max(1)
    }

    /// Submit one task.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool is live")
            .send(Box::new(f))
            .expect("workers alive");
    }

    /// Open a new task generation (one parallel region's worth of tasks).
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            shared: Arc::new(Completion::new()),
        }
    }

    /// Submit one task counted against `group` (and against the pool).
    /// A panic in `f` is caught, recorded on the group, and re-raised by
    /// [`ThreadPool::join_group`].
    pub fn submit_to<F: FnOnce() + Send + 'static>(&self, group: &TaskGroup, f: F) {
        group.shared.pending.fetch_add(1, Ordering::AcqRel);
        let gs = Arc::clone(&group.shared);
        self.submit(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                gs.record_panic(p);
            }
            gs.finish_one();
        });
    }

    /// Wait until every task of `group` has completed, without re-raising
    /// panics. From a pool worker this *helps*: it drains queued tasks
    /// (of any group — every pop is global progress) instead of blocking,
    /// so nested regions cannot deadlock a fully-occupied pool. Once the
    /// queue stays empty, the worker parks on the group's condvar rather
    /// than burning a core through the stragglers' tail: every task of
    /// this group was submitted before the join began, so after an
    /// empty-queue observation the group's outstanding tasks are all
    /// *in flight* on other threads — parking cannot strand a group task
    /// in the queue, and `finish_one` notifies under the lock.
    ///
    /// Returns whether this join actually *helped* — executed at least
    /// one queued task while waiting (always `false` for external,
    /// non-worker joiners).
    pub fn wait_group(&self, group: &TaskGroup) -> bool {
        let mut helped = false;
        if IN_POOL_WORKER.with(|c| c.get()) {
            let mut idle_polls = 0u32;
            while group.shared.pending.load(Ordering::Acquire) != 0 {
                match self.helper_rx.try_recv() {
                    Some(task) => {
                        Self::run_task(task, &self.shared);
                        helped = true;
                        idle_polls = 0;
                    }
                    None if idle_polls < 128 => {
                        idle_polls += 1;
                        std::thread::yield_now();
                    }
                    None => {
                        let mut guard = group.shared.lock.lock();
                        if group.shared.pending.load(Ordering::Acquire) != 0 {
                            group.shared.cv.wait(&mut guard);
                        }
                        drop(guard);
                        idle_polls = 0;
                    }
                }
            }
        } else {
            group.shared.wait();
        }
        helped
    }

    /// [`ThreadPool::wait_group`], then re-raise the first panic any task
    /// of the group produced. Returns [`ThreadPool::wait_group`]'s
    /// helped flag.
    pub fn join_group(&self, group: &TaskGroup) -> bool {
        let helped = self.wait_group(group);
        group.shared.rethrow();
        helped
    }

    /// Block until every submitted task has completed, then re-raise the
    /// first panic a task produced (if any). Never hangs on a panicking
    /// task: workers decrement the counter on the unwind path too.
    pub fn join(&self) {
        self.shared.wait();
        self.shared.rethrow();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Wait without re-raising: panicking inside `drop` would abort.
        self.shared.wait();
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide pool
// ---------------------------------------------------------------------------

/// The process-wide pool behind pooled `parallel_for` variants. Created
/// lazily on first use and grown (replaced by a larger pool) when a region
/// requests more threads than the current pool holds; regions hold an
/// `Arc`, so a superseded pool drains its in-flight work before its
/// workers exit. Placement uses the paper machine's 4 × 16 geometry.
static GLOBAL_POOL: RwLock<Option<Arc<ThreadPool>>> = RwLock::new(None);

/// Shared persistent pool with at least `nthreads` workers.
pub fn global_pool(nthreads: usize) -> Arc<ThreadPool> {
    let nthreads = nthreads.max(1);
    {
        let g = GLOBAL_POOL.read();
        if let Some(p) = g.as_ref() {
            if p.len() >= nthreads {
                return Arc::clone(p);
            }
        }
    }
    let mut g = GLOBAL_POOL.write();
    if let Some(p) = g.as_ref() {
        if p.len() >= nthreads {
            return Arc::clone(p);
        }
    }
    let p = Arc::new(ThreadPool::new(nthreads, 4, 16));
    *g = Some(Arc::clone(&p));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(4, 4, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_with_no_tasks_returns() {
        let pool = ThreadPool::new(2, 1, 2);
        pool.join();
        pool.join();
    }

    #[test]
    fn placements_fill_sockets_compactly() {
        let pool = ThreadPool::new(64, 4, 16);
        assert_eq!(pool.len(), 64);
        assert_eq!(pool.placements()[0].socket, 0);
        assert_eq!(pool.placements()[15].socket, 0);
        assert_eq!(pool.placements()[16].socket, 1);
        assert_eq!(pool.placements()[63].socket, 3);
        assert_eq!(pool.sockets_spanned(8), 1);
        assert_eq!(pool.sockets_spanned(16), 1);
        assert_eq!(pool.sockets_spanned(17), 2);
        assert_eq!(pool.sockets_spanned(64), 4);
    }

    #[test]
    fn reuse_across_generations() {
        let pool = ThreadPool::new(4, 1, 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _round in 0..5 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    /// Regression: a panicking task used to kill its worker *before* the
    /// pending counter was decremented, so `join` hung forever. Now the
    /// unwind is caught, the counter always reaches zero, and the panic
    /// resurfaces on the joining thread — after which the pool is still
    /// fully usable.
    #[test]
    fn join_propagates_task_panic_and_pool_survives() {
        let pool = ThreadPool::new(2, 1, 2);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.submit(|| panic!("task boom"));
        let joined = catch_unwind(AssertUnwindSafe(|| pool.join()));
        let payload = joined.expect_err("join must re-raise the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "task boom");
        // The panic is consumed: the pool keeps working and joins cleanly.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(10, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn group_join_waits_for_its_generation_only() {
        let pool = ThreadPool::new(2, 1, 2);
        let counter = Arc::new(AtomicU64::new(0));
        let g1 = pool.group();
        let g2 = pool.group();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit_to(&g1, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // A long-running task in another generation must not block g1.
        let gate = Arc::new(AtomicU64::new(0));
        let gate2 = Arc::clone(&gate);
        pool.submit_to(&g2, move || {
            while gate2.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        });
        pool.join_group(&g1);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        gate.store(1, Ordering::Release);
        pool.join_group(&g2);
    }

    #[test]
    fn group_join_propagates_panic() {
        let pool = ThreadPool::new(2, 1, 2);
        let g = pool.group();
        pool.submit_to(&g, || panic!("group boom"));
        let joined = catch_unwind(AssertUnwindSafe(|| pool.join_group(&g)));
        assert!(joined.is_err());
        // The pool-level join stays clean: group panics belong to groups.
        pool.join();
    }

    /// Nested generations on a single-worker pool: without the helping
    /// join this deadlocks (the lone worker would block waiting for a
    /// subtask that can only run on itself).
    #[test]
    fn nested_group_join_from_worker_helps_instead_of_deadlocking() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let outer = pool.group();
        let result = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let r2 = Arc::clone(&result);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            for _ in 0..4 {
                let r = Arc::clone(&r2);
                p2.submit_to(&inner, move || {
                    r.fetch_add(1, Ordering::Relaxed);
                });
            }
            p2.join_group(&inner);
            r2.fetch_add(100, Ordering::Relaxed);
        });
        pool.join_group(&outer);
        assert_eq!(result.load(Ordering::Relaxed), 104);
    }

    /// The helping join's parking path: the joining worker drains the
    /// queue, then must *park* (not spin) while the group's last task
    /// straggles on another worker — and still wake up at completion.
    #[test]
    fn worker_join_parks_through_straggler_tail() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let outer = pool.group();
        let done = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let d2 = Arc::clone(&done);
        pool.submit_to(&outer, move || {
            let inner = p2.group();
            let d3 = Arc::clone(&d2);
            p2.submit_to(&inner, move || {
                std::thread::sleep(std::time::Duration::from_millis(40));
                d3.fetch_add(1, Ordering::Relaxed);
            });
            // Let the second worker claim the inner task, so this join
            // sees an empty queue with one in-flight straggler and must
            // take the parked path (spin budget << 40ms of sleeping).
            std::thread::sleep(std::time::Duration::from_millis(5));
            p2.join_group(&inner);
            d2.fetch_add(10, Ordering::Relaxed);
        });
        pool.join_group(&outer);
        assert_eq!(done.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn global_pool_is_shared_and_grows() {
        let a = global_pool(2);
        assert!(a.len() >= 2);
        let b = global_pool(1);
        assert!(Arc::ptr_eq(&a, &b) || !b.is_empty());
        let c = global_pool(a.len() + 1);
        assert!(c.len() > a.len());
        let group = c.group();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let k = Arc::clone(&counter);
            c.submit_to(&group, move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        c.join_group(&group);
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
