//! A persistent worker pool with socket-aware virtual pinning.
//!
//! The paper pins threads with `numactl` so the OS cannot migrate them
//! between the four Opteron sockets. Our pool reproduces the *assignment*:
//! each worker is labelled with a virtual core and socket (round-robin
//! across sockets, matching `numactl --interleave` style spreading), which
//! the NUMA cost model and the interpreter's first-touch accounting use.
//! Work is submitted as closures over a crossbeam channel; `scope_join`
//! blocks until all submitted tasks of the scope finish.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Virtual placement of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub worker: usize,
    pub core: usize,
    pub socket: usize,
}

struct Shared {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Persistent thread pool with deterministic worker → socket placement.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    placements: Vec<Placement>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Create a pool of `nthreads` workers distributed over `sockets`
    /// sockets with `cores_per_socket` cores each, filling socket 0 first
    /// (the `numactl` compact policy used in the paper's runs).
    pub fn new(nthreads: usize, sockets: usize, cores_per_socket: usize) -> Self {
        let nthreads = nthreads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let shared = Arc::new(Shared {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(nthreads);
        let mut placements = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let core = w % (sockets * cores_per_socket).max(1);
            let socket = core / cores_per_socket.max(1);
            placements.push(Placement {
                worker: w,
                core,
                socket,
            });
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || {
                while let Ok(task) = rx.recv() {
                    task();
                    if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _g = shared.lock.lock();
                        shared.cv.notify_all();
                    }
                }
            }));
        }
        ThreadPool {
            sender: Some(tx),
            workers,
            placements,
            shared,
        }
    }

    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Placement table (worker index → virtual core/socket).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of distinct sockets the first `n` workers span.
    pub fn sockets_spanned(&self, n: usize) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for p in self.placements.iter().take(n) {
            set.insert(p.socket);
        }
        set.len().max(1)
    }

    /// Submit one task.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool is live")
            .send(Box::new(f))
            .expect("workers alive");
    }

    /// Block until every submitted task has completed.
    pub fn join(&self) {
        let mut guard = self.shared.lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.cv.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_tasks() {
        let pool = ThreadPool::new(4, 4, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_with_no_tasks_returns() {
        let pool = ThreadPool::new(2, 1, 2);
        pool.join();
        pool.join();
    }

    #[test]
    fn placements_fill_sockets_compactly() {
        let pool = ThreadPool::new(64, 4, 16);
        assert_eq!(pool.len(), 64);
        assert_eq!(pool.placements()[0].socket, 0);
        assert_eq!(pool.placements()[15].socket, 0);
        assert_eq!(pool.placements()[16].socket, 1);
        assert_eq!(pool.placements()[63].socket, 3);
        assert_eq!(pool.sockets_spanned(8), 1);
        assert_eq!(pool.sockets_spanned(16), 1);
        assert_eq!(pool.sockets_spanned(17), 2);
        assert_eq!(pool.sockets_spanned(64), 4);
    }

    #[test]
    fn reuse_across_generations() {
        let pool = ThreadPool::new(4, 1, 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _round in 0..5 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
