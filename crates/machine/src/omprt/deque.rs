//! Chase–Lev work-stealing deque, specialised to boxed pool tasks.
//!
//! One deque per pool worker: the **owner** pushes and pops at the
//! bottom (LIFO — the newest task is the hottest, and in divide-and-
//! conquer spawning it is the deepest subtree, which keeps the owner's
//! working set cache-resident), while **thieves** steal from the top
//! (FIFO — the oldest task is the *largest* remaining subtree, so one
//! steal migrates the most work per synchronisation). This is the
//! classic Chase–Lev layout with the memory orderings of Lê et al.,
//! "Correct and Efficient Work-Stealing for Weak Memory Models"
//! (PPoPP'13):
//!
//! * `push` publishes the slot before the new `bottom` (release fence);
//! * `pop` reserves the bottom slot, then a `SeqCst` fence orders the
//!   reservation against thieves' `top` reads; the last element is
//!   raced for with a CAS on `top`;
//! * `steal` reads `top`, fences, reads `bottom`, and claims the top
//!   element with a CAS — a failed CAS means another thief (or the
//!   owner's last-element pop) won, and the caller should retry.
//!
//! The ring buffer grows by doubling. Superseded buffers are **retired,
//! not freed**: a thief that loaded the old buffer pointer may still
//! read a slot from it after the owner swapped in the grown copy, and
//! that read is only safe while the old allocation stays alive. Retired
//! buffers are reclaimed when the deque itself drops — bounded memory
//! (the sum of a geometric series, < 2× the final buffer) traded for
//! zero synchronisation on the read side.
//!
//! Tasks are double-boxed (`Box<Task>` around the fat `Box<dyn FnOnce>`)
//! so each slot is a single thin pointer word, loadable and storable
//! with one atomic access.

use parking_lot::Mutex;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// The pool's task type (mirrors `pool::Task`).
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Result of one steal attempt.
pub(crate) enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race (another thief or the owner took the element); the
    /// deque may still be non-empty — retry.
    Retry,
    /// Successfully claimed the top task.
    Task(Task),
}

/// Ring buffer of one capacity generation. Slots hold thin `*mut Task`
/// words; indices are taken modulo `cap` (a power of two).
struct Buffer {
    cap: usize,
    slots: Box<[AtomicPtr<Task>]>,
}

impl Buffer {
    fn boxed(cap: usize) -> Box<Buffer> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::new(Buffer { cap, slots })
    }

    #[inline]
    fn slot(&self, i: isize) -> &AtomicPtr<Task> {
        &self.slots[(i as usize) & (self.cap - 1)]
    }
}

/// One worker's deque. `push`/`pop` must only be called by the owning
/// worker thread; `steal` and `len` may be called from any thread.
pub(crate) struct WorkDeque {
    /// Steal end (oldest element).
    top: AtomicIsize,
    /// Owner end (one past the newest element).
    bottom: AtomicIsize,
    /// Current ring buffer; swapped (never mutated in place) on growth.
    buf: AtomicPtr<Buffer>,
    /// Superseded buffers, kept alive until the deque drops so racing
    /// thieves can still read slots from them (see module docs).
    retired: Mutex<Vec<*mut Buffer>>,
}

// SAFETY: all cross-thread accesses go through atomics with the
// orderings documented above; raw buffer pointers are only freed at
// `Drop`, when no other thread can hold a reference.
unsafe impl Send for WorkDeque {}
unsafe impl Sync for WorkDeque {}

impl WorkDeque {
    pub(crate) fn new() -> Self {
        WorkDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Buffer::boxed(64))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Approximate number of queued entries (live *and* revoked — the
    /// spawn throttle uses the pool's exposed-task counters instead).
    /// Racy by design (plain relaxed loads); never negative. Feeds the
    /// instrumentation layer's `deque_depth` gauge.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Owner-only: push a task at the bottom.
    pub(crate) fn push(&self, task: Task) {
        let cell = Box::into_raw(Box::new(task));
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: `buf` always points at a live Buffer (owner is the
        // only writer of the pointer, and buffers outlive the deque).
        let mut buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        if b - t >= buf.cap as isize {
            self.grow(t, b);
            buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        }
        buf.slot(b).store(cell, Ordering::Relaxed);
        // Publish the slot before the new bottom so a thief that sees
        // bottom = b + 1 also sees the task pointer.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pop the newest task (LIFO).
    pub(crate) fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: as in `push`.
        let buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom reservation against thieves' top reads.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let cell = buf.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Single element left: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            // SAFETY: winning the index (either b > t, unreachable by
            // thieves, or the CAS above) transfers ownership of `cell`.
            Some(*unsafe { Box::from_raw(cell) })
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: try to steal the oldest task (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: the pointer is live (buffers are retired, not freed);
        // a stale pointer still holds element `t` because the owner
        // never writes to a retired buffer.
        let buf = unsafe { &*self.buf.load(Ordering::Acquire) };
        let cell = buf.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // SAFETY: the CAS claimed index `t` exclusively.
        Steal::Task(*unsafe { Box::from_raw(cell) })
    }

    /// Owner-only: double the buffer, copying the live range `t..b`.
    /// The old buffer is retired (kept allocated) for racing thieves.
    fn grow(&self, t: isize, b: isize) {
        let old_ptr = self.buf.load(Ordering::Relaxed);
        // SAFETY: live buffer, owner-only path.
        let old = unsafe { &*old_ptr };
        let bigger = Buffer::boxed(old.cap * 2);
        for i in t..b {
            bigger
                .slot(i)
                .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.buf.store(Box::into_raw(bigger), Ordering::Release);
        self.retired.lock().push(old_ptr);
    }
}

impl Drop for WorkDeque {
    fn drop(&mut self) {
        // Unexecuted tasks (there are none on orderly shutdown — the
        // pool drains before dropping) are released, not run.
        while self.pop().is_some() {}
        // SAFETY: exclusive access; every pointer was Box::into_raw'd.
        unsafe {
            drop(Box::from_raw(*self.buf.get_mut()));
            for p in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = WorkDeque::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u64 {
            let log = Arc::clone(&log);
            d.push(Box::new(move || log.lock().push(i)));
        }
        assert_eq!(d.len(), 3);
        // Thief sees the oldest first.
        match d.steal() {
            Steal::Task(t) => t(),
            _ => panic!("steal must succeed"),
        }
        // Owner sees the newest first.
        d.pop().expect("pop")();
        d.pop().expect("pop")();
        assert!(d.pop().is_none());
        assert_eq!(*log.lock(), vec![0, 2, 1]);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = WorkDeque::new();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            d.push(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert_eq!(d.len(), 1000);
        while let Some(t) = d.pop() {
            t();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    /// Owner pushes and pops while three thieves hammer `steal`: every
    /// task must execute exactly once (conservation), across buffer
    /// growth and last-element races.
    #[test]
    fn concurrent_steal_hammer_conserves_tasks() {
        const TASKS: u64 = 20_000;
        let d = Arc::new(WorkDeque::new());
        let executed = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let mut thieves = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            thieves.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Task(t) => t(),
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        // Owner: bursts of pushes interleaved with pops.
        for burst in 0..(TASKS / 100) {
            for _ in 0..100 {
                let e = Arc::clone(&executed);
                d.push(Box::new(move || {
                    e.fetch_add(1, Ordering::Relaxed);
                }));
            }
            if burst % 2 == 0 {
                for _ in 0..40 {
                    if let Some(t) = d.pop() {
                        t();
                    }
                }
            }
        }
        while let Some(t) = d.pop() {
            t();
        }
        done.store(true, Ordering::Release);
        for t in thieves {
            t.join().expect("thief");
        }
        // Thieves may have claimed elements the owner's final drain
        // missed; after joining, everything ran exactly once.
        assert_eq!(executed.load(Ordering::Relaxed), TASKS);
        assert_eq!(d.len(), 0);
    }
}
