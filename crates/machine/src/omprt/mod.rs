//! omprt — a miniature OpenMP runtime.
//!
//! The paper's generated code relies on libgomp (`#pragma omp parallel
//! for`, `schedule(static)`, `schedule(dynamic,1)`). This module provides
//! the equivalent runtime on native threads so transformed programs can be
//! *executed* in parallel by the interpreter, and so the scheduling
//! policies (static contiguous chunks vs. dynamic work queues — the
//! satellite vs. LAMA distinction of Sect. 4.3.3/4.3.4) exist as real,
//! testable code rather than only as cost-model constants.

pub(crate) mod deque;
pub mod futures;
pub mod instrument;
pub mod pool;
pub mod pragma;
pub mod sched;

pub use futures::{spawn_capacity, FutureReport, PureFuture, LOCAL_QUEUE_LIMIT, SATURATION_FACTOR};
pub use instrument::{
    Event, EventKind, GaugeSnapshot, HistSnapshot, Metrics, MetricsSnapshot, SpanGuard,
};
pub use pool::{global_pool, on_worker_thread, Placement, PoolStats, TaskGroup, ThreadPool};
pub use pragma::{parse_omp_parallel_for_clauses, OmpClauses};
pub use sched::{
    parallel_for, parallel_for_pooled, parallel_for_state, parallel_for_state_pooled, OmpSchedule,
};
