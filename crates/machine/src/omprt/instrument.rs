//! Process-wide probe infrastructure: span events, latency histograms and
//! sampled gauges for the runtime (pool, deques, futures, schedules) and
//! everything layered on top of it (the interpreter's regions, memo caches
//! and fuel governor hang their probes on this module via
//! `cinterp::trace`).
//!
//! # Hot-path discipline (zero overhead when off)
//!
//! Every probe site compiles to **one relaxed atomic load and one
//! predictable branch** when instrumentation is disabled — the same
//! discipline as the interpreter's `fuel_local == 0` check. No probe ever
//! takes a lock, allocates, or reads the clock unless [`enabled`] returned
//! `true`.
//!
//! When enabled, the event path follows the Tally-shard discipline from
//! McKenney: each thread appends to its **own** buffer (a per-thread
//! `Mutex<Vec<Event>>` that is only ever contended at drain time, so the
//! owning thread's `lock()` is an uncontended CAS), and buffers are merged
//! only at session end by [`drain_events`]. Histograms and gauges are
//! plain atomic adds on log2 buckets — wait-free.
//!
//! Sessions (enable → run → disable → drain → export) are serialized one
//! level up by `cinterp::trace::TraceSession`; this module only provides
//! the mechanism.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant as StdInstant;

// ---------------------------------------------------------------------------
// Master switch + clock
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is instrumentation live? One relaxed load — this is the *only* cost a
/// probe site pays when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the master switch. `SeqCst` so a session start/stop is totally
/// ordered against the relaxed probe loads that straddle it (a probe may
/// observe the old value briefly; sessions tolerate that by draining
/// after disable).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> &'static StdInstant {
    static EPOCH: OnceLock<StdInstant> = OnceLock::new();
    EPOCH.get_or_init(StdInstant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Span events
// ---------------------------------------------------------------------------

/// Event flavour, mapping 1:1 onto Chrome trace-event phases
/// (`B`/`E`/`i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opens (`ph: "B"`).
    Begin,
    /// Span closes (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One trace record. Names are interned `&'static str` so recording never
/// allocates; `arg` carries one site-defined integer (iteration count,
/// future id, byte size, …).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub ts_ns: u64,
    pub tid: u32,
    pub kind: EventKind,
    pub name: &'static str,
    pub arg: u64,
}

/// Per-thread buffer cap; beyond it events are counted as dropped rather
/// than grow without bound on a long traced run.
const BUF_CAP: usize = 1 << 20;

struct ThreadBuf {
    tid: u32,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        REGISTRY.lock().push(Arc::clone(&buf));
        buf
    };
}

/// Small stable id for the calling thread (assigned on first probe; the
/// main thread is almost always 0). Also what the Chrome export uses as
/// `tid`.
pub fn thread_trace_id() -> u32 {
    BUF.with(|b| b.tid)
}

#[inline]
fn record(kind: EventKind, name: &'static str, arg: u64) {
    let ts_ns = now_ns();
    BUF.with(|b| {
        let mut ev = b.events.lock();
        if ev.len() < BUF_CAP {
            ev.push(Event {
                ts_ns,
                tid: b.tid,
                kind,
                name,
                arg,
            });
        } else {
            b.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Record a point event (no-op unless enabled).
#[inline(always)]
pub fn instant(name: &'static str, arg: u64) {
    if enabled() {
        record(EventKind::Instant, name, arg);
    }
}

/// Open a span; the returned guard closes it on drop (RAII, so spans stay
/// balanced across `?`/unwind paths). When disabled this is the one-branch
/// no-op and the guard is inert.
#[inline(always)]
#[must_use = "dropping the guard immediately closes the span"]
pub fn span(name: &'static str, arg: u64) -> SpanGuard {
    if enabled() {
        record(EventKind::Begin, name, arg);
        SpanGuard { name: Some(name) }
    } else {
        SpanGuard { name: None }
    }
}

/// RAII guard for [`span`]. The `End` is recorded even if the switch
/// flipped off mid-span, so every recorded `B` gets its `E`; stale events
/// recorded after a drain are discarded by the next [`clear_events`].
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record(EventKind::End, name, 0);
        }
    }
}

/// Drain every thread's buffer into one vector sorted by timestamp.
/// Called once per session, after [`set_enabled`]`(false)`.
pub fn drain_events() -> Vec<Event> {
    let mut all = Vec::new();
    for buf in REGISTRY.lock().iter() {
        all.append(&mut buf.events.lock());
    }
    all.sort_by_key(|e| (e.ts_ns, e.tid));
    all
}

/// Discard all buffered events and reset drop counts (session start).
pub fn clear_events() {
    for buf in REGISTRY.lock().iter() {
        buf.events.lock().clear();
        buf.dropped.store(0, Ordering::Relaxed);
    }
}

/// Events discarded because a per-thread buffer hit [`BUF_CAP`].
pub fn dropped_events() -> u64 {
    REGISTRY
        .lock()
        .iter()
        .map(|b| b.dropped.load(Ordering::Relaxed))
        .sum()
}

// ---------------------------------------------------------------------------
// Metrics: log2 histograms + sampled gauges
// ---------------------------------------------------------------------------

/// Log2-bucketed histogram: bucket `i` counts samples whose bit length is
/// `i` (value in `[2^(i-1), 2^i)`; bucket 0 is the value 0). Recording is
/// one wait-free atomic add.
pub struct Hist {
    buckets: [AtomicU64; 64],
}

impl Hist {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Hist {
            buckets: [ZERO; 64],
        }
    }

    /// Record one sample (no-op unless [`enabled`]).
    #[inline(always)]
    pub fn record(&self, value: u64) {
        if enabled() {
            let idx = (64 - value.leading_zeros()).min(63) as usize;
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of a [`Hist`].
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// `buckets[i]` counts samples with bit length `i` (upper bound
    /// `2^i - 1`).
    pub buckets: [u64; 64],
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (in the sample's unit) of the bucket containing the
    /// `q`-quantile sample, e.g. `quantile_upper(0.99)` for a p99 bound.
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match i {
                    0 => 0,
                    63 => u64::MAX, // top bucket is clamped
                    _ => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }

    /// `(bit_length, count)` for every non-empty bucket.
    pub fn nonzero(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }
}

/// Sampled gauge: tracks count/sum/max of sampled values (depths, queue
/// lengths, byte sizes). Wait-free adds; the mean is `sum/count`.
pub struct Gauge {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (no-op unless [`enabled`]).
    #[inline(always)]
    pub fn sample(&self, value: u64) {
        if enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`Gauge`].
#[derive(Clone, Copy, Debug)]
pub struct GaugeSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl GaugeSnapshot {
    /// Mean sampled value (0 when never sampled).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The process-wide metrics registry: every named histogram and gauge the
/// runtime records into. Fixed set — probe sites reference fields
/// directly, so a typo is a compile error, not a silent new series.
pub struct Metrics {
    /// Task enqueue → claim latency (ns), pool injector + worker deques.
    pub queue_wait_ns: Hist,
    /// Successful steal-scan latency (ns): start of the victim scan in
    /// `find_task` to the steal that yielded a task.
    pub steal_latency_ns: Hist,
    /// Parallel-region duration (ns), fork to join.
    pub region_duration_ns: Hist,
    /// Future `wait()` blocking time (ns) when the value was not ready.
    pub await_wait_ns: Hist,
    /// Worker deque depth sampled at local push.
    pub deque_depth: Gauge,
    /// Injector queue length sampled at injector push.
    pub injector_len: Gauge,
    /// Idle (parked) workers sampled at wake notification.
    pub idle_sleepers: Gauge,
    /// Exposed-task counter sampled at future spawn.
    pub exposed_tasks: Gauge,
    /// Interpreter frame-arena bytes sampled at the region join.
    pub arena_bytes: Gauge,
    /// Interpreter spill-stack bytes sampled at the region join.
    pub spill_bytes: Gauge,
}

static METRICS: Metrics = Metrics {
    queue_wait_ns: Hist::new(),
    steal_latency_ns: Hist::new(),
    region_duration_ns: Hist::new(),
    await_wait_ns: Hist::new(),
    deque_depth: Gauge::new(),
    injector_len: Gauge::new(),
    idle_sleepers: Gauge::new(),
    exposed_tasks: Gauge::new(),
    arena_bytes: Gauge::new(),
    spill_bytes: Gauge::new(),
};

/// The process-wide [`Metrics`] registry.
#[inline(always)]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// Reset every histogram and gauge (session start).
pub fn reset_metrics() {
    let m = metrics();
    m.queue_wait_ns.reset();
    m.steal_latency_ns.reset();
    m.region_duration_ns.reset();
    m.await_wait_ns.reset();
    m.deque_depth.reset();
    m.injector_len.reset();
    m.idle_sleepers.reset();
    m.exposed_tasks.reset();
    m.arena_bytes.reset();
    m.spill_bytes.reset();
}

/// Named snapshot of the whole registry, for `--stats` / `--stats-json`.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let m = metrics();
    MetricsSnapshot {
        hists: vec![
            ("queue_wait_ns", m.queue_wait_ns.snapshot()),
            ("steal_latency_ns", m.steal_latency_ns.snapshot()),
            ("region_duration_ns", m.region_duration_ns.snapshot()),
            ("await_wait_ns", m.await_wait_ns.snapshot()),
        ],
        gauges: vec![
            ("deque_depth", m.deque_depth.snapshot()),
            ("injector_len", m.injector_len.snapshot()),
            ("idle_sleepers", m.idle_sleepers.snapshot()),
            ("exposed_tasks", m.exposed_tasks.snapshot()),
            ("arena_bytes", m.arena_bytes.snapshot()),
            ("spill_bytes", m.spill_bytes.snapshot()),
        ],
    }
}

/// Everything [`metrics_snapshot`] captured, with stable series names.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    pub hists: Vec<(&'static str, HistSnapshot)>,
    pub gauges: Vec<(&'static str, GaugeSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    // Instrumentation state is process-global; tests that flip the switch
    // must not overlap (other suites in this binary never enable it).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = TEST_LOCK.lock();
        set_enabled(false);
        clear_events();
        let my_tid = thread_trace_id();
        instant("test.off", 1);
        {
            let _s = span("test.off.span", 2);
        }
        let mine: Vec<_> = drain_events()
            .into_iter()
            .filter(|e| e.tid == my_tid)
            .collect();
        assert!(mine.is_empty(), "disabled probes must be silent: {mine:?}");
    }

    #[test]
    fn spans_balance_and_timestamps_are_monotonic() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        clear_events();
        let my_tid = thread_trace_id();
        {
            let _outer = span("test.outer", 0);
            instant("test.mid", 7);
            let _inner = span("test.inner", 1);
        }
        set_enabled(false);
        let mine: Vec<_> = drain_events()
            .into_iter()
            .filter(|e| e.tid == my_tid)
            .collect();
        let names: Vec<_> = mine.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            names,
            vec![
                (EventKind::Begin, "test.outer"),
                (EventKind::Instant, "test.mid"),
                (EventKind::Begin, "test.inner"),
                (EventKind::End, "test.inner"),
                (EventKind::End, "test.outer"),
            ]
        );
        let mut depth = 0i64;
        for w in mine.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        for e in &mine {
            match e.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => depth -= 1,
                EventKind::Instant => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn hist_buckets_by_bit_length() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        let h = Hist::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(u64::MAX); // bucket 63 (clamped)
        set_enabled(false);
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.buckets[63], 1);
        assert_eq!(s.quantile_upper(0.5), 3);
        assert_eq!(s.quantile_upper(1.0), u64::MAX);
        assert_eq!(s.nonzero(), vec![(0, 1), (1, 1), (2, 2), (11, 1), (63, 1)]);
    }

    #[test]
    fn future_lifecycle_probes_fire() {
        use crate::omprt::{global_pool, PureFuture};
        let _g = TEST_LOCK.lock();
        let pool = global_pool(2);
        set_enabled(true);
        clear_events();
        // Direct spawn (mechanism, not the capacity-gated policy): the
        // task is enqueued for a worker, so spawn/claim/await probes
        // must fire regardless of host width.
        let fut = PureFuture::spawn(&pool, false, || 41 + 1);
        let (v, _report) = fut.wait();
        set_enabled(false);
        assert_eq!(v, 42);
        let names: Vec<&str> = drain_events().iter().map(|e| e.name).collect();
        for expected in ["future.spawn", "future.claim", "future.await"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn gauge_tracks_count_sum_max() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        let g = Gauge::new();
        g.sample(4);
        g.sample(10);
        g.sample(1);
        set_enabled(false);
        g.sample(100); // disabled: ignored
        let s = g.snapshot();
        assert_eq!((s.count, s.sum, s.max), (3, 15, 10));
        assert!((s.mean() - 5.0).abs() < 1e-9);
    }
}
