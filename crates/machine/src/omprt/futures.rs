//! Pure-call futures: task-level parallelism for independent pure calls.
//!
//! The paper's headline claim is that the `pure` keyword lets the
//! compiler *automatically parallelize pure function calls* — not only
//! loops. This module is the runtime half of that promise: a verified
//! pure call whose result is not needed yet can run as a **future** on
//! the persistent [`ThreadPool`] while the caller keeps executing, and
//! is *forced* at the first use of its result.
//!
//! Three disciplines keep this safe and fast on a finite pool:
//!
//! * **Saturation fallback** — [`PureFuture::spawn`] refuses to enqueue
//!   when the pool already has enough outstanding work
//!   ([`SATURATION_FACTOR`] × the requested width) and hands the closure
//!   back so the caller runs it **inline**. This is the dynamic
//!   granularity throttle: near the root of a divide-and-conquer tree
//!   the queue is short and calls spawn; once every worker is busy the
//!   recursion bottoms out inline with only an atomic load of overhead
//!   per call.
//! * **Helping awaits** — [`PureFuture::wait`] issued *from a pool
//!   worker* must not block the worker: it drains queued tasks until its
//!   future completes (via [`ThreadPool::join_group`], the same
//!   mechanism that keeps nested parallel regions deadlock-free — the
//!   "help while waiting" join discipline). A fully occupied pool
//!   whose workers all await nested futures therefore always makes
//!   progress.
//! * **Ownership** — the spawned closure owns everything it touches
//!   (`'static`), so an await abandoned by an unwinding caller leaves a
//!   detached task that finishes harmlessly; no lifetime erasure is
//!   needed (unlike the region path, which borrows the caller's frame).
//!
//! Each future is its own single-task [`TaskGroup`] generation: the
//! await waits for exactly that task, and a panic inside the closure
//! re-raises at the await (never at drop).

use crate::omprt::pool::{TaskGroup, ThreadPool};
use parking_lot::Mutex;
use std::sync::Arc;

/// Outstanding-task multiple beyond which spawns fall back to inline
/// execution: with `w` requested workers, at most `SATURATION_FACTOR *
/// w` submitted-but-unfinished tasks are allowed before new spawn sites
/// stop enqueueing. Small enough to bound queue memory and keep leaf
/// calls inline, large enough that a worker finishing its subtree always
/// finds the next one already queued.
pub const SATURATION_FACTOR: usize = 2;

/// One in-flight pure call: a single-task generation on the shared pool
/// plus the cell its result lands in.
pub struct PureFuture<T> {
    pool: Arc<ThreadPool>,
    group: TaskGroup,
    cell: Arc<Mutex<Option<T>>>,
}

impl<T: Send + 'static> PureFuture<T> {
    /// Try to run `f` as a future on `pool`. `width` is the parallelism
    /// the caller requested (the interpreter's `--threads`); when the
    /// pool already has `SATURATION_FACTOR * width` outstanding tasks
    /// the closure is handed back unrun — the caller executes it inline.
    pub fn spawn<F>(pool: &Arc<ThreadPool>, width: usize, f: F) -> Result<PureFuture<T>, F>
    where
        F: FnOnce() -> T + Send + 'static,
    {
        if pool.pending_tasks() >= width.max(1).saturating_mul(SATURATION_FACTOR) {
            return Err(f);
        }
        let group = pool.group();
        let cell = Arc::new(Mutex::new(None));
        let out = Arc::clone(&cell);
        pool.submit_to(&group, move || {
            *out.lock() = Some(f());
        });
        Ok(PureFuture {
            pool: Arc::clone(pool),
            group,
            cell,
        })
    }

    /// Whether the spawned task has already finished.
    pub fn is_ready(&self) -> bool {
        self.group.is_complete()
    }

    /// Force the future: block (or, from a pool worker, *help* — drain
    /// queued tasks) until the result is available. Returns the value
    /// and whether this await actually helped: `true` means it was
    /// issued from a pool worker and executed at least one queued task
    /// while waiting (an await that merely parked reports `false`).
    /// A panic from the closure re-raises here.
    pub fn wait(self) -> (T, bool) {
        let helped = self.pool.join_group(&self.group);
        let v = self
            .cell
            .lock()
            .take()
            .expect("future task stored its result");
        (v, helped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawn_and_wait_returns_value() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let fut = PureFuture::spawn(&pool, 2, || 6 * 7).ok().expect("spawns");
        let (v, helped) = fut.wait();
        assert_eq!(v, 42);
        // The await came from this (non-worker) thread.
        assert!(!helped);
    }

    #[test]
    fn saturated_pool_returns_the_closure() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        // Block the lone worker and fill the backlog allowance.
        let gate = Arc::new(AtomicU64::new(0));
        let mut futs = Vec::new();
        for _ in 0..SATURATION_FACTOR {
            let g = Arc::clone(&gate);
            futs.push(
                PureFuture::spawn(&pool, 1, move || {
                    while g.load(Ordering::Acquire) == 0 {
                        std::thread::yield_now();
                    }
                    1u64
                })
                .ok()
                .expect("backlog allowance"),
            );
        }
        // The next spawn must bounce: the closure comes back for inline
        // execution.
        match PureFuture::spawn(&pool, 1, || 7u64) {
            Err(f) => assert_eq!(f(), 7),
            Ok(_) => panic!("saturated pool must refuse to enqueue"),
        }
        gate.store(1, Ordering::Release);
        let total: u64 = futs.into_iter().map(|f| f.wait().0).sum();
        assert_eq!(total, SATURATION_FACTOR as u64);
    }

    #[test]
    fn nested_await_from_worker_helps() {
        // One worker: the outer future's await of the inner future can
        // only complete because the awaiting worker helps (executes the
        // inner task itself).
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let p2 = Arc::clone(&pool);
        let fut = PureFuture::spawn(&pool, 4, move || {
            let inner = PureFuture::spawn(&p2, 4, || 10u64).ok().expect("spawns");
            let (v, helped) = inner.wait();
            assert!(helped, "a worker await with the task queued must help");
            v + 1
        })
        .ok()
        .expect("spawns");
        assert_eq!(fut.wait().0, 11);
    }

    #[test]
    fn panic_in_future_reraises_at_wait() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let fut = PureFuture::spawn(&pool, 2, || -> u64 { panic!("future boom") })
            .ok()
            .expect("spawns");
        let r = catch_unwind(AssertUnwindSafe(|| fut.wait()));
        assert!(r.is_err(), "closure panic must surface at the await");
        // The pool survives.
        let ok = PureFuture::spawn(&pool, 2, || 5u64).ok().expect("spawns");
        assert_eq!(ok.wait().0, 5);
    }

    #[test]
    fn deep_recursive_spawns_complete_on_a_tiny_pool() {
        // Recursive spawner: every level tries to spawn its left child
        // and computes the right inline — the interpreter's pattern.
        fn tree(pool: &Arc<ThreadPool>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let p = Arc::clone(pool);
            match PureFuture::spawn(pool, 2, move || tree(&p, n - 1)) {
                Ok(fut) => {
                    let right = tree(pool, n - 2);
                    fut.wait().0 + right
                }
                Err(f) => f() + tree(pool, n - 2),
            }
        }
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        assert_eq!(tree(&pool, 15), 610); // fib(15)
    }
}
