//! Pure-call futures: task-level parallelism for independent pure calls.
//!
//! The paper's headline claim is that the `pure` keyword lets the
//! compiler *automatically parallelize pure function calls* — not only
//! loops. This module is the runtime half of that promise: a verified
//! pure call whose result is not needed yet can run as a **future** on
//! the persistent [`ThreadPool`] while the caller keeps executing, and
//! is *forced* at the first use of its result.
//!
//! Five disciplines keep this safe and fast on a finite pool:
//!
//! * **Local spawning** — a *worker* that spawns a future pushes it onto
//!   its **own deque** (one release fence, no lock, no contention); idle
//!   siblings steal the oldest entry, which in divide-and-conquer
//!   recursion is the *largest* pending subtree. External (non-worker)
//!   spawns go through the pool's injector. `steal = false` forces the
//!   injector from workers too — the single-queue substrate kept for
//!   A/B comparison.
//! * **Exposure throttle** — a worker stops spawning once
//!   [`LOCAL_QUEUE_LIMIT`] of its pushed futures sit unclaimed
//!   ([`spawn_capacity`], the admission policy the engines consult,
//!   trips and the call runs **inline**; a 1-hardware-thread host
//!   admits no task parallelism at all). The exposed count —
//!   pushed, not yet claimed by an executor, not yet revoked by an
//!   awaiter — is the *right* granularity signal: it measures
//!   parallelism this worker has offered that nobody has taken — once
//!   siblings stop stealing, recursion bottoms out inline at the cost of
//!   two relaxed loads per call. (The raw deque length would not do:
//!   revoked entries linger as no-op pops, and thieves popping them
//!   would re-admit spawns at the churn rate.) Injector spawns keep the
//!   coarser pool-wide throttle ([`SATURATION_FACTOR`] × width).
//! * **Await-time cancellation** — before waiting, an awaiter tries to
//!   *revoke* its future with one CAS ([`PureFuture::cancel`]): if no
//!   worker has claimed the task yet, the caller runs the call inline
//!   (no result cell, no cross-thread marshalling) and the queued entry
//!   becomes a no-op pop. Spawned subtrees therefore stay stealable for
//!   their whole spawn-to-await window, yet the bottomed-out recursion
//!   (nobody idle, nothing stolen) pays only push + CAS per call.
//! * **Helping awaits** — [`PureFuture::wait`] issued *from a pool
//!   worker* must not block the worker: it claims queued tasks (own
//!   deque first — usually the awaited future itself, still unstolen —
//!   then injector, then steals) until its future completes, via
//!   [`ThreadPool::join_group`]. A fully occupied pool whose workers all
//!   await nested futures therefore always makes progress.
//! * **Ownership** — the spawned closure owns everything it touches
//!   (`'static`), so an await abandoned by an unwinding caller leaves a
//!   detached task that finishes harmlessly; no lifetime erasure is
//!   needed (unlike the region path, which borrows the caller's frame).
//!
//! Each future is its own single-task [`TaskGroup`] generation: the
//! await waits for exactly that task, and a panic inside the closure
//! re-raises at the await (never at drop) — including panics in tasks
//! that were *stolen* by another worker.

use crate::omprt::instrument;
use crate::omprt::pool::{worker_index, TaskGroup, ThreadPool};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Outstanding-task multiple beyond which **injector** spawns fall back
/// to inline execution: with `w` requested workers, at most
/// `SATURATION_FACTOR * w` submitted-but-unfinished tasks are allowed
/// before external spawn sites stop enqueueing.
pub const SATURATION_FACTOR: usize = 2;

/// Exposed-task budget at which a **worker** stops spawning futures and
/// runs the call inline instead: at most this many of a worker's pushed
/// futures may sit unclaimed-and-unrevoked at once. Deep enough that a
/// thief always finds the next subtree queued, shallow enough that leaf
/// calls never pay spawn overhead once every sibling is busy.
pub const LOCAL_QUEUE_LIMIT: usize = 8;

/// Sentinel for "executed, but not on a pool worker" (unreachable in
/// practice — futures only run on pool workers).
const EXEC_NONE: usize = usize::MAX;

/// Claim states of a future's task: enqueued and up for grabs, claimed
/// by the worker about to run it, or revoked by the awaiting caller.
const STATE_QUEUED: u8 = 0;
const STATE_CLAIMED: u8 = 1;
const STATE_CANCELLED: u8 = 2;

/// What one await learned about its future's scheduling: whether the
/// waiting worker *helped* (executed queued tasks while waiting) and
/// whether the task was *stolen* (executed by a different worker than
/// the one that pushed it onto its local deque).
#[derive(Debug, Clone, Copy, Default)]
pub struct FutureReport {
    pub helped: bool,
    pub stolen: bool,
}

/// State shared between a future's handle and its queued task, in one
/// allocation (spawn is the hot path — one `Arc` beats three): the
/// claim state ([`STATE_QUEUED`] / [`STATE_CLAIMED`] /
/// [`STATE_CANCELLED`], the cancellation handshake), the executor
/// attribution, and the cell the result lands in.
struct FutureShared<T> {
    state: AtomicU8,
    executed_by: AtomicUsize,
    cell: Mutex<Option<T>>,
}

/// One in-flight pure call: a single-task generation on the shared pool
/// plus the cell its result lands in.
pub struct PureFuture<T> {
    pool: Arc<ThreadPool>,
    group: TaskGroup,
    shared: Arc<FutureShared<T>>,
    /// Worker index that pushed this task onto its own deque (`None`
    /// for injector submits).
    pusher: Option<usize>,
    /// The pushing worker's exposed-task counter (local pushes only);
    /// decremented once, by whichever of claim/cancel wins.
    exposure: Option<Arc<AtomicUsize>>,
}

/// Host hardware parallelism, cached (the spawn throttle consults it on
/// every spawn attempt).
fn hardware_width() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Whether a spawn would be accepted right now — the engines' cheap
/// pre-check before marshalling arguments. Every spawn is subject to
/// the pool-wide saturation throttle: `pending` (queued *and* running)
/// below [`SATURATION_FACTOR`] × the *effective* width — the requested
/// `--threads`, clamped to the host's hardware parallelism, because
/// exposing more in-flight tasks than the machine can physically run
/// buys nothing and costs a queue round trip per task (asking for 4
/// threads on a 1-core box must not pay 4-way spawn overhead). A worker
/// of `pool` (with `steal` on) is additionally subject to its own
/// exposed-task budget, which stops any one worker from hoarding offers
/// nobody takes.
pub fn spawn_capacity(pool: &ThreadPool, width: usize, steal: bool) -> bool {
    let hw = hardware_width();
    if hw == 1 {
        // A single hardware thread can never run tasks in parallel:
        // every spawn would be a queue round trip for nothing (the
        // oversubscribed workers would churn tasks at timeslice speed).
        // Spawn sites degrade to plain inline calls.
        return false;
    }
    if steal {
        if let Some(depth) = pool.local_depth() {
            if depth >= LOCAL_QUEUE_LIMIT {
                return false;
            }
        }
    }
    pool.pending_tasks() < width.clamp(1, hw).saturating_mul(SATURATION_FACTOR)
}

impl<T: Send + 'static> PureFuture<T> {
    /// Run `f` as a future on `pool`. This is the *mechanism* — it
    /// always enqueues; admission *policy* is the caller's, via
    /// [`spawn_capacity`] (the engines consult it before marshalling
    /// arguments and fall back to a plain inline call when it trips).
    /// `steal = false` (the `--no-steal` A/B) routes the spawn through
    /// the shared injector instead of the spawning worker's deque.
    pub fn spawn<F>(pool: &Arc<ThreadPool>, steal: bool, f: F) -> PureFuture<T>
    where
        F: FnOnce() -> T + Send + 'static,
    {
        let group = pool.group();
        let shared = Arc::new(FutureShared {
            state: AtomicU8::new(STATE_QUEUED),
            executed_by: AtomicUsize::new(EXEC_NONE),
            cell: Mutex::new(None),
        });
        let pusher = if steal { pool.current_worker() } else { None };
        // Exposure accounting: a locally-pushed future counts against
        // its worker's exposed-task budget until it is claimed or
        // revoked — exactly one of the two CASes below wins, and the
        // winner releases the budget slot.
        let exposure = if pusher.is_some() {
            let h = pool.exposure_handle().expect("pusher is a worker");
            let prev = h.fetch_add(1, Ordering::Relaxed);
            instrument::metrics().exposed_tasks.sample(prev as u64 + 1);
            Some(h)
        } else {
            None
        };
        instrument::instant(
            "future.spawn",
            pusher.map_or(u64::MAX, |p| p as u64), // MAX: injector submit
        );
        let sh = Arc::clone(&shared);
        let claim_exposure = exposure.clone();
        let task = move || {
            // Claim the task; a future the awaiter already revoked
            // (it ran the call inline) degenerates to a no-op pop.
            if sh
                .state
                .compare_exchange(
                    STATE_QUEUED,
                    STATE_CLAIMED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                return;
            }
            if let Some(h) = &claim_exposure {
                h.fetch_sub(1, Ordering::Relaxed);
            }
            let executor = worker_index().unwrap_or(EXEC_NONE);
            instrument::instant("future.claim", executor as u64);
            sh.executed_by.store(executor, Ordering::Relaxed);
            *sh.cell.lock() = Some(f());
        };
        if pusher.is_some() {
            pool.submit_to(&group, task);
        } else {
            pool.submit_to_shared(&group, task);
        }
        PureFuture {
            pool: Arc::clone(pool),
            group,
            shared,
            pusher,
            exposure,
        }
    }

    /// Try to revoke the future before anyone claims it — the awaiter's
    /// fast path. `Ok(())` means the queued task will never run the
    /// call: the caller owns it again and executes it **inline** (a
    /// plain call, no future machinery), while the revoked queue entry
    /// degenerates to a no-op pop whenever a worker reaches it. `Err`
    /// hands the future back: some worker already claimed (or finished)
    /// it, so the caller must [`PureFuture::wait`].
    ///
    /// This is what makes deque spawning affordable when nobody steals:
    /// every spawn stays *available* to idle siblings between push and
    /// await, but un-stolen work never pays for result marshalling —
    /// the common bottomed-out case costs one CAS.
    pub fn cancel(self) -> Result<(), Self> {
        if self
            .shared
            .state
            .compare_exchange(
                STATE_QUEUED,
                STATE_CANCELLED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            if let Some(h) = &self.exposure {
                h.fetch_sub(1, Ordering::Relaxed);
            }
            instrument::instant("future.cancel", self.pusher.map_or(u64::MAX, |p| p as u64));
            Ok(())
        } else {
            Err(self)
        }
    }

    /// Whether this future went onto the spawning worker's own deque
    /// (`false`: injector submit, or spawned from an external thread).
    pub fn pushed_local(&self) -> bool {
        self.pusher.is_some()
    }

    /// Whether the spawned task has already finished.
    pub fn is_ready(&self) -> bool {
        self.group.is_complete()
    }

    /// Force the future: block (or, from a pool worker, *help* — claim
    /// queued tasks) until the result is available. Returns the value
    /// and a [`FutureReport`]: `helped` means the await was issued from
    /// a pool worker and executed at least one queued task while waiting
    /// (an await that merely parked reports `false`); `stolen` means a
    /// locally-pushed task ended up executed by a *different* worker —
    /// the deque's steal path actually migrated it. A panic from the
    /// closure re-raises here.
    pub fn wait(self) -> (T, FutureReport) {
        // Only a wait that actually has to block (or help) counts toward
        // the await-wait histogram; an already-finished future is free.
        let wait_start_ns = if instrument::enabled() && !self.group.is_complete() {
            instrument::now_ns().max(1)
        } else {
            0
        };
        let _span = instrument::span("future.await", 0);
        let helped = self.pool.join_group(&self.group);
        if wait_start_ns != 0 {
            instrument::metrics()
                .await_wait_ns
                .record(instrument::now_ns().saturating_sub(wait_start_ns));
        }
        let executed = self.shared.executed_by.load(Ordering::Relaxed);
        let stolen = match self.pusher {
            Some(p) => executed != EXEC_NONE && executed != p,
            None => false,
        };
        if stolen {
            instrument::instant("future.stolen", executed as u64);
        }
        let v = self
            .shared
            .cell
            .lock()
            .take()
            .expect("future task stored its result");
        (v, FutureReport { helped, stolen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawn_and_wait_returns_value() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let fut = PureFuture::spawn(&pool, true, || 6 * 7);
        // Spawned from this (non-worker) thread: injector, not a deque.
        assert!(!fut.pushed_local());
        let (v, report) = fut.wait();
        assert_eq!(v, 42);
        assert!(!report.helped);
        assert!(!report.stolen);
    }

    /// The admission policy: a saturated pool (pending at the width
    /// cap) refuses capacity, and a single-hardware-thread host refuses
    /// outright — task parallelism cannot win there.
    #[test]
    fn spawn_capacity_trips_on_saturation() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        if hardware_width() == 1 {
            assert!(
                !spawn_capacity(&pool, 64, true),
                "1-wide hosts must refuse task parallelism"
            );
            return;
        }
        assert!(spawn_capacity(&pool, 2, true), "an idle pool has room");
        // Block the lone worker and fill the backlog allowance.
        let gate = Arc::new(AtomicU64::new(0));
        let mut futs = Vec::new();
        for _ in 0..2 * SATURATION_FACTOR {
            let g = Arc::clone(&gate);
            futs.push(PureFuture::spawn(&pool, true, move || {
                while g.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
                1u64
            }));
        }
        assert!(
            !spawn_capacity(&pool, 2, true),
            "a full backlog must refuse capacity"
        );
        gate.store(1, Ordering::Release);
        let total: u64 = futs.into_iter().map(|f| f.wait().0).sum();
        assert_eq!(total, 2 * SATURATION_FACTOR as u64);
    }

    #[test]
    fn nested_await_from_worker_helps() {
        // One worker: the outer future's await of the inner future can
        // only complete because the awaiting worker helps (pops the
        // inner task back off its own deque and runs it).
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let p2 = Arc::clone(&pool);
        let fut = PureFuture::spawn(&pool, true, move || {
            let inner = PureFuture::spawn(&p2, true, || 10u64);
            assert!(inner.pushed_local(), "worker spawns push locally");
            let (v, report) = inner.wait();
            assert!(
                report.helped,
                "a worker await with the task queued must help"
            );
            assert!(!report.stolen, "nobody else could have taken it");
            v + 1
        });
        assert_eq!(fut.wait().0, 11);
    }

    /// The exposure budget: a worker with [`LOCAL_QUEUE_LIMIT`]
    /// unclaimed offers outstanding gets no more capacity, and awaiting
    /// them (revoking, here — nobody else can claim them) restores it.
    #[test]
    fn exposure_budget_caps_worker_spawns() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let p2 = Arc::clone(&pool);
        let fut = PureFuture::spawn(&pool, true, move || {
            // The lone worker is executing *this* closure, so nothing
            // claims its pushes while it spawns.
            let mut futs = Vec::new();
            for i in 0..LOCAL_QUEUE_LIMIT as u64 {
                futs.push((i, PureFuture::spawn(&p2, true, move || i * 2)));
            }
            assert_eq!(p2.local_depth(), Some(LOCAL_QUEUE_LIMIT));
            assert!(
                !spawn_capacity(&p2, 64, true),
                "a full exposure budget must refuse capacity"
            );
            for (i, f) in futs {
                match f.cancel() {
                    Ok(()) => {}
                    Err(f) => assert_eq!(f.wait().0, i * 2),
                }
            }
            assert_eq!(p2.local_depth(), Some(0), "awaits restore the budget");
            7u64
        });
        assert_eq!(fut.wait().0, 7);
    }

    /// Cancellation: an unclaimed future is revoked (the caller runs the
    /// call inline), a finished one is handed back for a normal wait —
    /// and the revoked queue entry never runs the closure.
    #[test]
    fn cancel_revokes_unclaimed_futures_only() {
        let pool = Arc::new(ThreadPool::new(1, 1, 1));
        let ran = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&pool);
        let r2 = Arc::clone(&ran);
        let outer = PureFuture::spawn(&pool, true, move || {
            // Locally pushed, never stolen (lone worker is busy right
            // here): cancel must win, and the closure must never run.
            let r3 = Arc::clone(&r2);
            let fut = PureFuture::spawn(&p2, true, move || {
                r3.fetch_add(1, Ordering::Relaxed);
                7u64
            });
            let cancelled = fut.cancel().is_ok();
            (cancelled, r2)
        });
        let ((cancelled, ran2), _) = outer.wait();
        assert!(cancelled, "unclaimed local future must be revocable");
        // Drain the zombie entry; the closure still must not run.
        pool.join();
        assert_eq!(ran2.load(Ordering::Relaxed), 0, "revoked closure ran");

        // A completed future refuses cancellation and waits normally.
        let fut = PureFuture::spawn(&pool, true, || 9u64);
        while !fut.is_ready() {
            std::thread::yield_now();
        }
        match fut.cancel() {
            Ok(()) => panic!("a claimed future must not cancel"),
            Err(fut) => assert_eq!(fut.wait().0, 9),
        }
    }

    #[test]
    fn panic_in_future_reraises_at_wait() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let fut = PureFuture::spawn(&pool, true, || -> u64 { panic!("future boom") });
        let r = catch_unwind(AssertUnwindSafe(|| fut.wait()));
        assert!(r.is_err(), "closure panic must surface at the await");
        // The pool survives.
        let ok = PureFuture::spawn(&pool, true, || 5u64);
        assert_eq!(ok.wait().0, 5);
    }

    /// A future pushed onto a blocked worker's deque is stolen by the
    /// idle sibling; the report says so, and a panicking stolen task
    /// still re-raises at the await.
    #[test]
    fn stolen_future_is_reported_and_its_panic_surfaces() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let p2 = Arc::clone(&pool);
        let outcome = PureFuture::spawn(&pool, true, move || {
            let good = PureFuture::spawn(&p2, true, || 21u64);
            let bad = PureFuture::spawn(&p2, true, || -> u64 { panic!("stolen boom") });
            assert!(good.pushed_local() && bad.pushed_local());
            // Refuse to pop: only the sibling's steals can run them.
            while !(good.is_ready() && bad.is_ready()) {
                std::thread::yield_now();
            }
            let (v, report) = good.wait();
            assert!(report.stolen, "the sibling must have stolen it");
            let panicked = catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err();
            (v, panicked)
        });
        let ((v, panicked), _) = outcome.wait();
        assert_eq!(v, 21);
        assert!(panicked, "stolen task's panic must re-raise at the await");
    }

    #[test]
    fn no_steal_mode_routes_worker_spawns_through_the_injector() {
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        let p2 = Arc::clone(&pool);
        let fut = PureFuture::spawn(&pool, false, move || {
            let inner = PureFuture::spawn(&p2, false, || 3u64);
            assert!(!inner.pushed_local(), "--no-steal must use the injector");
            inner.wait().0
        });
        assert_eq!(fut.wait().0, 3);
    }

    #[test]
    fn deep_recursive_spawns_complete_on_a_tiny_pool() {
        // Recursive spawner: every level spawns its left child (policy
        // permitting, like the engines) and computes the right inline.
        fn tree(pool: &Arc<ThreadPool>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let p = Arc::clone(pool);
            if spawn_capacity(pool, 2, true) || n > 12 {
                let fut = PureFuture::spawn(pool, true, move || tree(&p, n - 1));
                let right = tree(pool, n - 2);
                let left = match fut.cancel() {
                    Ok(()) => tree(pool, n - 1),
                    Err(fut) => fut.wait().0,
                };
                left + right
            } else {
                tree(pool, n - 1) + tree(pool, n - 2)
            }
        }
        let pool = Arc::new(ThreadPool::new(2, 1, 2));
        assert_eq!(tree(&pool, 15), 610); // fib(15)
    }
}
