//! Loop scheduling policies: `static`, `static,chunk`, `dynamic,chunk`,
//! `guided` — the subset of OpenMP `schedule(...)` clauses the paper's
//! evaluation uses.
//!
//! Each policy comes in two execution substrates: the original *scoped*
//! form ([`parallel_for`] / [`parallel_for_state`]) spawns fresh OS
//! threads per region via `std::thread::scope`, and the *pooled* form
//! ([`parallel_for_pooled`] / [`parallel_for_state_pooled`]) routes the
//! same per-thread work items through the persistent process-wide
//! [`crate::omprt::pool::ThreadPool`] as one [`TaskGroup`] generation —
//! the paper's pinned-worker execution model, without a thread spawn per
//! region. Both substrates assign identical static chunks per `tid` and
//! share one dynamic/guided claiming loop, so a region's observable
//! behaviour is independent of the substrate.

use crate::omprt::instrument;
use crate::omprt::pool::{global_pool, TaskGroup, ThreadPool};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// OpenMP loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmpSchedule {
    /// Contiguous near-equal chunks, one per thread (`schedule(static)`).
    Static,
    /// Round-robin chunks of the given size (`schedule(static, c)`).
    StaticChunk(u64),
    /// Threads grab chunks of the given size from a shared counter
    /// (`schedule(dynamic, c)`); the satellite application's fix.
    Dynamic(u64),
    /// Exponentially shrinking chunks with a minimum (`schedule(guided)`).
    Guided(u64),
}

impl fmt::Display for OmpSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpSchedule::Static => write!(f, "static"),
            OmpSchedule::StaticChunk(c) => write!(f, "static,{c}"),
            OmpSchedule::Dynamic(c) => write!(f, "dynamic,{c}"),
            OmpSchedule::Guided(c) => write!(f, "guided,{c}"),
        }
    }
}

impl OmpSchedule {
    /// The chunks thread `tid` of `nthreads` executes for `n` iterations
    /// under a *static* policy, as `(start, end)` half-open ranges.
    /// Dynamic/guided schedules are execution-order dependent and handled
    /// by [`parallel_for`] directly.
    pub fn static_chunks(&self, n: u64, nthreads: u64, tid: u64) -> Vec<(u64, u64)> {
        assert!(nthreads > 0 && tid < nthreads);
        match *self {
            OmpSchedule::Static => {
                // libgomp: first `rem` threads get `base+1` iterations.
                let base = n / nthreads;
                let rem = n % nthreads;
                let (start, len) = if tid < rem {
                    (tid * (base + 1), base + 1)
                } else {
                    (rem * (base + 1) + (tid - rem) * base, base)
                };
                if len == 0 {
                    vec![]
                } else {
                    vec![(start, start + len)]
                }
            }
            OmpSchedule::StaticChunk(c) => {
                let c = c.max(1);
                let mut out = Vec::new();
                let mut start = tid * c;
                while start < n {
                    out.push((start, (start + c).min(n)));
                    start += nthreads * c;
                }
                out
            }
            OmpSchedule::Dynamic(_) | OmpSchedule::Guided(_) => {
                panic!("dynamic/guided schedules have no static chunk assignment")
            }
        }
    }
}

/// Execute `body(i)` for every `i` in `0..n` using `nthreads` OS threads
/// under the given schedule. The body must be `Sync` (data-race freedom is
/// the *caller's* obligation — exactly what the purity verification
/// guarantees for transformed programs).
pub fn parallel_for<F>(n: u64, nthreads: usize, schedule: OmpSchedule, body: F)
where
    F: Fn(u64) + Sync,
{
    parallel_for_state(n, nthreads, schedule, |_| (), |(), i| body(i));
}

/// [`parallel_for`] with **worker-scoped state**: each of the `nthreads`
/// workers builds one `S` via `init(tid)` before its first iteration,
/// threads it mutably through every iteration it executes, and hands it
/// back in the returned `Vec` once the loop joins.
///
/// This is the frame/arena handoff the bytecode interpreter relies on: a
/// worker's private frame arena, operation tally and memo-cache shard
/// live in `S`, are **reused across all iterations that worker runs**
/// (no per-iteration allocation), and are merged by the caller exactly
/// once at the join — turning per-op shared-atomic traffic and memo-lock
/// contention into a single merge per worker per region.
///
/// The returned vector has one entry per worker that was started (a
/// single entry on the sequential fast path); workers that happened to
/// execute zero iterations still return their freshly-`init`ed state.
pub fn parallel_for_state<S, G, F>(
    n: u64,
    nthreads: usize,
    schedule: OmpSchedule,
    init: G,
    body: F,
) -> Vec<S>
where
    S: Send,
    G: Fn(usize) -> S + Sync,
    F: Fn(&mut S, u64) + Sync,
{
    let nthreads = nthreads.max(1);
    let timer = RegionTimer::start();
    if nthreads == 1 || n <= 1 {
        return vec![run_sequential(n, &init, &body)];
    }
    let body = &body;
    let init = &init;
    let next = AtomicU64::new(0);
    let next = &next;
    let mut states = Vec::with_capacity(nthreads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|tid| {
                scope.spawn(move || worker_share(tid, n, nthreads, schedule, next, init, body))
            })
            .collect();
        for h in handles {
            states.push(h.join().expect("omprt worker panicked"));
        }
    });
    drop(timer);
    states
}

/// RAII fork-to-join stopwatch feeding the `region_duration_ns`
/// histogram; inert (one branch) when instrumentation is off.
struct RegionTimer {
    start_ns: u64,
}

impl RegionTimer {
    #[inline(always)]
    fn start() -> Self {
        RegionTimer {
            // 0 means "instrumentation off" (`max(1)` keeps a genuine
            // first-nanosecond timestamp from aliasing it).
            start_ns: if instrument::enabled() {
                instrument::now_ns().max(1)
            } else {
                0
            },
        }
    }
}

impl Drop for RegionTimer {
    fn drop(&mut self) {
        if self.start_ns != 0 {
            instrument::metrics()
                .region_duration_ns
                .record(instrument::now_ns().saturating_sub(self.start_ns));
        }
    }
}

/// [`parallel_for`] routed through the persistent process-wide
/// [`ThreadPool`] instead of spawning OS threads per region.
pub fn parallel_for_pooled<F>(n: u64, nthreads: usize, schedule: OmpSchedule, body: F)
where
    F: Fn(u64) + Sync,
{
    parallel_for_state_pooled(n, nthreads, schedule, |_| (), |(), i| body(i));
}

/// [`parallel_for_state`] routed through the persistent process-wide
/// [`ThreadPool`]: identical worker-share semantics (same static chunk
/// assignment per `tid`, same dynamic/guided claiming loop, one `S` per
/// started worker), but the `nthreads` work items are submitted to the
/// shared pool as one [`TaskGroup`] generation and joined with
/// `join_group` — no thread spawn, and a panic in `init`/`body`
/// resurfaces here exactly as the scoped variant's `join` would.
///
/// Nested regions are safe on a finite pool: a join issued from a pool
/// worker helps drain the queue instead of blocking (see
/// [`ThreadPool::wait_group`]).
pub fn parallel_for_state_pooled<S, G, F>(
    n: u64,
    nthreads: usize,
    schedule: OmpSchedule,
    init: G,
    body: F,
) -> Vec<S>
where
    S: Send,
    G: Fn(usize) -> S + Sync,
    F: Fn(&mut S, u64) + Sync,
{
    let nthreads = nthreads.max(1);
    let _timer = RegionTimer::start();
    if nthreads == 1 || n <= 1 {
        return vec![run_sequential(n, &init, &body)];
    }
    let pool = global_pool(nthreads);
    let group = pool.group();
    let next = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<S>>> = (0..nthreads).map(|_| Mutex::new(None)).collect();

    // The submitted tasks borrow `init`/`body`/`next`/`slots` from this
    // stack frame; the guard guarantees we never unwind past those
    // borrows with a task still in flight, which is what makes the
    // lifetime erasure below sound.
    let mut guard = GroupWaitGuard {
        pool: &pool,
        group: &group,
        armed: true,
    };
    for tid in 0..nthreads {
        let task: Box<dyn FnOnce() + Send + '_> = {
            let (next, init, body, slots) = (&next, &init, &body, &slots);
            Box::new(move || {
                let state = worker_share(tid, n, nthreads, schedule, next, init, body);
                *slots[tid].lock() = Some(state);
            })
        };
        // SAFETY: the task only borrows locals of this frame, and every
        // submitted task is guaranteed to finish (or be panic-caught)
        // before this frame is left: `join_group` waits for the whole
        // generation before returning *or* re-raising a task panic, and
        // `guard` waits on any other unwind path.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        pool.submit_to(&group, task);
    }
    guard.armed = false;
    pool.join_group(&group);
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("pooled worker completed"))
        .collect()
}

/// Last-resort cleanup for [`parallel_for_state_pooled`]: if anything
/// unwinds between the first `submit_to` and the normal `join_group`,
/// block until the generation drains so no task outlives the borrows it
/// captured. (Waits without re-raising — we are already unwinding.)
struct GroupWaitGuard<'a> {
    pool: &'a ThreadPool,
    group: &'a TaskGroup,
    armed: bool,
}

impl Drop for GroupWaitGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.pool.wait_group(self.group);
        }
    }
}

/// The sequential fast path shared by both substrates.
fn run_sequential<S, G, F>(n: u64, init: &G, body: &F) -> S
where
    G: Fn(usize) -> S,
    F: Fn(&mut S, u64),
{
    let mut state = init(0);
    for i in 0..n {
        body(&mut state, i);
    }
    state
}

/// One worker's share of a region under `schedule` — the single
/// implementation both the scoped and the pooled substrate execute, so
/// chunk assignment (static) and the claiming protocol (dynamic/guided,
/// via the shared `next` counter) are identical in both.
fn worker_share<S, G, F>(
    tid: usize,
    n: u64,
    nthreads: usize,
    schedule: OmpSchedule,
    next: &AtomicU64,
    init: &G,
    body: &F,
) -> S
where
    G: Fn(usize) -> S,
    F: Fn(&mut S, u64),
{
    // One span per worker per region: its whole chunk share, on the
    // thread that executed it (scoped thread or pool worker alike).
    let _span = instrument::span("region.worker", tid as u64);
    let mut state = init(tid);
    match schedule {
        OmpSchedule::Static | OmpSchedule::StaticChunk(_) => {
            for (s, e) in schedule.static_chunks(n, nthreads as u64, tid as u64) {
                for i in s..e {
                    body(&mut state, i);
                }
            }
        }
        OmpSchedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(&mut state, i);
                }
            }
        }
        OmpSchedule::Guided(min_chunk) => {
            let min_chunk = min_chunk.max(1);
            loop {
                // Chunk ≈ remaining / nthreads, floored at min.
                let cur = next.load(Ordering::Relaxed);
                if cur >= n {
                    break;
                }
                let remaining = n - cur;
                let chunk = (remaining / nthreads as u64).max(min_chunk);
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(&mut state, i);
                }
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn coverage(schedule: OmpSchedule, n: u64, nthreads: usize) {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, nthreads, schedule, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "iteration {i} executed wrong number of times under {schedule}"
            );
        }
    }

    #[test]
    fn every_schedule_covers_every_iteration_exactly_once() {
        for sched in [
            OmpSchedule::Static,
            OmpSchedule::StaticChunk(3),
            OmpSchedule::Dynamic(1),
            OmpSchedule::Dynamic(7),
            OmpSchedule::Guided(2),
        ] {
            for (n, t) in [(0u64, 4usize), (1, 4), (17, 4), (100, 7), (64, 64), (5, 16)] {
                coverage(sched, n, t);
            }
        }
    }

    #[test]
    fn static_chunks_partition_range() {
        for n in [0u64, 1, 7, 64, 100, 4096] {
            for nthreads in [1u64, 2, 3, 8, 64] {
                let mut all: Vec<(u64, u64)> = Vec::new();
                for tid in 0..nthreads {
                    all.extend(OmpSchedule::Static.static_chunks(n, nthreads, tid));
                }
                all.sort_unstable();
                let total: u64 = all.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, n);
                // Chunks are disjoint and contiguous.
                let mut pos = 0;
                for (s, e) in all {
                    assert_eq!(s, pos);
                    pos = e;
                }
            }
        }
    }

    #[test]
    fn static_balance_is_within_one_iteration() {
        let n = 103u64;
        let t = 8u64;
        let sizes: Vec<u64> = (0..t)
            .map(|tid| {
                OmpSchedule::Static
                    .static_chunks(n, t, tid)
                    .iter()
                    .map(|(s, e)| e - s)
                    .sum()
            })
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn static_chunk_round_robins() {
        let chunks = OmpSchedule::StaticChunk(2).static_chunks(10, 2, 0);
        assert_eq!(chunks, vec![(0, 2), (4, 6), (8, 10)]);
        let chunks1 = OmpSchedule::StaticChunk(2).static_chunks(10, 2, 1);
        assert_eq!(chunks1, vec![(2, 4), (6, 8)]);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let n = 10_000u64;
        let total = AtomicU64::new(0);
        parallel_for(n, 8, OmpSchedule::Dynamic(16), |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn dynamic_handles_imbalanced_work() {
        // Tail-heavy cost: dynamic,1 must still terminate and cover all.
        let n = 256u64;
        let done = AtomicU64::new(0);
        parallel_for(n, 8, OmpSchedule::Dynamic(1), |i| {
            if i > 240 {
                std::thread::yield_now();
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), n);
    }

    #[test]
    fn state_workers_cover_all_iterations_and_return_states() {
        for sched in [
            OmpSchedule::Static,
            OmpSchedule::StaticChunk(3),
            OmpSchedule::Dynamic(2),
            OmpSchedule::Guided(1),
        ] {
            let states = parallel_for_state(
                1000,
                6,
                sched,
                |tid| (tid, 0u64, Vec::new()),
                |s, i| {
                    s.1 += i;
                    s.2.push(i);
                },
            );
            assert_eq!(states.len(), 6, "{sched}");
            let total: u64 = states.iter().map(|s| s.1).sum();
            assert_eq!(total, 1000 * 999 / 2, "{sched}");
            let mut all: Vec<u64> = states.iter().flat_map(|s| s.2.iter().copied()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>(), "{sched}");
            // Worker ids are handed through.
            let mut tids: Vec<usize> = states.iter().map(|s| s.0).collect();
            tids.sort_unstable();
            assert_eq!(tids, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn state_sequential_fast_path_returns_single_state() {
        let states = parallel_for_state(10, 1, OmpSchedule::Dynamic(4), |_| 0u64, |s, i| *s += i);
        assert_eq!(states, vec![45]);
        // n <= 1 with many threads also stays sequential.
        let states = parallel_for_state(1, 8, OmpSchedule::Static, |_| 0u64, |s, i| *s += i + 7);
        assert_eq!(states, vec![7]);
    }

    #[test]
    fn single_thread_runs_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        parallel_for(16, 1, OmpSchedule::Dynamic(4), |i| {
            order.lock().unwrap().push(i);
        });
        let o = order.into_inner().unwrap();
        assert_eq!(o, (0..16).collect::<Vec<u64>>());
    }

    // -- pooled substrate ----------------------------------------------------

    #[test]
    fn pooled_covers_every_iteration_exactly_once() {
        for sched in [
            OmpSchedule::Static,
            OmpSchedule::StaticChunk(3),
            OmpSchedule::Dynamic(1),
            OmpSchedule::Dynamic(7),
            OmpSchedule::Guided(2),
        ] {
            for (n, t) in [(0u64, 4usize), (1, 4), (17, 4), (100, 7), (64, 16), (5, 16)] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                parallel_for_pooled(n, t, sched, |i| {
                    hits[i as usize].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "iteration {i} under {sched}");
                }
            }
        }
    }

    #[test]
    fn pooled_state_matches_scoped_state() {
        for sched in [
            OmpSchedule::Static,
            OmpSchedule::StaticChunk(3),
            OmpSchedule::Dynamic(2),
            OmpSchedule::Guided(1),
        ] {
            let run = |pooled: bool| {
                let init = |tid: usize| (tid, 0u64, Vec::new());
                let body = |s: &mut (usize, u64, Vec<u64>), i: u64| {
                    s.1 += i;
                    s.2.push(i);
                };
                if pooled {
                    parallel_for_state_pooled(1000, 6, sched, init, body)
                } else {
                    parallel_for_state(1000, 6, sched, init, body)
                }
            };
            for states in [run(false), run(true)] {
                assert_eq!(states.len(), 6, "{sched}");
                let total: u64 = states.iter().map(|s| s.1).sum();
                assert_eq!(total, 1000 * 999 / 2, "{sched}");
                let mut all: Vec<u64> = states.iter().flat_map(|s| s.2.iter().copied()).collect();
                all.sort_unstable();
                assert_eq!(all, (0..1000).collect::<Vec<_>>(), "{sched}");
                let mut tids: Vec<usize> = states.iter().map(|s| s.0).collect();
                tids.sort_unstable();
                assert_eq!(tids, (0..6).collect::<Vec<_>>());
            }
            // Static chunk assignment is bit-identical across substrates:
            // worker `tid` sees exactly the same iterations in the same
            // order.
            if matches!(sched, OmpSchedule::Static | OmpSchedule::StaticChunk(_)) {
                assert_eq!(run(false), run(true), "{sched}");
            }
        }
    }

    #[test]
    fn pooled_sequential_fast_path_returns_single_state() {
        let states =
            parallel_for_state_pooled(10, 1, OmpSchedule::Dynamic(4), |_| 0u64, |s, i| *s += i);
        assert_eq!(states, vec![45]);
        let states =
            parallel_for_state_pooled(1, 8, OmpSchedule::Static, |_| 0u64, |s, i| *s += i + 7);
        assert_eq!(states, vec![7]);
    }

    #[test]
    fn pooled_nested_regions_complete() {
        // Outer pooled region whose every iteration runs an inner pooled
        // region: exercises the worker-side helping join on the shared
        // global pool.
        let total = AtomicU64::new(0);
        parallel_for_pooled(8, 4, OmpSchedule::Dynamic(1), |_i| {
            parallel_for_pooled(16, 4, OmpSchedule::Static, |j| {
                total.fetch_add(j, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (16 * 15 / 2));
    }

    #[test]
    fn pooled_body_panic_propagates_after_region_drains() {
        let ran = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for_pooled(64, 4, OmpSchedule::Dynamic(1), |i| {
                if i == 13 {
                    panic!("iteration boom");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "body panic must resurface at the join");
        // Every non-panicking iteration still executed (the region drains
        // before the panic is re-raised — no task left in flight).
        assert_eq!(ran.load(Ordering::Relaxed), 63);
    }
}
