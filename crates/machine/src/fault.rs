//! Deterministic fault injection for robustness testing.
//!
//! Compiled only under the `fault-inject` feature; release builds carry
//! none of this code. When **armed** via [`seed`], a process-global
//! seeded LCG drives three kinds of injected misbehaviour:
//!
//! * [`maybe_panic`] — called by the thread pool at the top of every
//!   grouped task; occasionally panics, exercising the panic-containment
//!   path (record on the group, decrement counters, re-raise at join).
//! * [`should_fail_alloc`] — consulted by `Memory::try_alloc`;
//!   occasionally reports an at-limit allocation failure, exercising the
//!   `Trap::MemoryLimit` unwind through whatever engine is running.
//! * [`steal_jitter`] — called by the pool's task-claim path before the
//!   steal scan; spins a pseudo-random number of iterations so stealers
//!   collide with owners far more often than they would naturally.
//!
//! The stream is deterministic for a given seed *and* interleaving: the
//! state is one shared atomic advanced by CAS, so concurrent draws race
//! for positions in a single reproducible sequence. Tests that need
//! strict reproducibility run single-threaded; the hammer tests only
//! need "same seed → same fault density".
//!
//! [`disarm`] returns the process to fault-free behaviour (every hook
//! becomes a no-op), so one test binary can run a faulty phase and then
//! assert clean recovery.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel state: hooks are inert until [`seed`] is called.
const DISARMED: u64 = 0;

static STATE: AtomicU64 = AtomicU64::new(DISARMED);

/// One draw in ~`PANIC_PERIOD` grouped tasks panics while armed.
const PANIC_PERIOD: u64 = 61;
/// One draw in ~`ALLOC_PERIOD` allocations fails while armed.
const ALLOC_PERIOD: u64 = 53;
/// Upper bound on injected spin iterations before a steal scan.
const JITTER_SPAN: u64 = 64;

/// Arm the injector with a deterministic seed (0 is mapped to 1 so it
/// cannot collide with the disarmed sentinel).
pub fn seed(s: u64) {
    STATE.store(s.max(1), Ordering::SeqCst);
}

/// Disarm the injector: all hooks become no-ops until re-seeded.
pub fn disarm() {
    STATE.store(DISARMED, Ordering::SeqCst);
}

/// True while the injector is armed.
pub fn armed() -> bool {
    STATE.load(Ordering::Relaxed) != DISARMED
}

/// Advance the shared LCG and return the new state, or `None` when
/// disarmed. Lock-free: concurrent callers race for positions in one
/// sequence via compare-exchange.
fn next() -> Option<u64> {
    let mut cur = STATE.load(Ordering::Relaxed);
    loop {
        if cur == DISARMED {
            return None;
        }
        // Knuth's MMIX multiplier; the +1 keeps the low bits moving.
        let stepped = cur
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            .max(1); // never step onto the disarmed sentinel
        match STATE.compare_exchange_weak(cur, stepped, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(stepped),
            Err(seen) => cur = seen,
        }
    }
}

/// Panic with probability ~1/61 while armed. Wired into the pool's
/// grouped-task wrapper so the panic is recorded on the task's group
/// exactly like a genuine task panic.
pub fn maybe_panic() {
    if let Some(r) = next() {
        if r % PANIC_PERIOD == 0 {
            panic!("injected fault: task panic");
        }
    }
}

/// Report an allocation failure with probability ~1/53 while armed.
pub fn should_fail_alloc() -> bool {
    next().is_some_and(|r| r % ALLOC_PERIOD == 0)
}

/// Spin 0–63 iterations while armed, widening the window in which a
/// steal and an owner pop collide on the same deque slot.
pub fn steal_jitter() {
    if let Some(r) = next() {
        for _ in 0..(r % JITTER_SPAN) {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the injector state is process-global and the
    // harness runs tests concurrently.
    #[test]
    fn arm_replay_disarm_lifecycle() {
        disarm();
        assert!(!armed());
        maybe_panic(); // must not panic
        assert!(!should_fail_alloc());
        steal_jitter();

        seed(42);
        let a: Vec<bool> = (0..256).map(|_| should_fail_alloc()).collect();
        seed(42);
        let b: Vec<bool> = (0..256).map(|_| should_fail_alloc()).collect();
        assert_eq!(a, b, "same seed must replay the same fault stream");
        assert!(
            a.iter().any(|&f| f),
            "256 draws at period 53 must inject at least one failure"
        );

        disarm();
        assert!(!armed());
    }
}
