//! # machine — parallel runtime and machine model
//!
//! Two halves:
//!
//! * [`omprt`] — a real miniature OpenMP runtime (thread pool, static /
//!   dynamic / guided loop schedules) used to *execute* transformed
//!   programs in parallel;
//! * [`sim`] — the analytic cost model of the paper's evaluation machine
//!   (4 × AMD Opteron 6272) and compilers (GCC 7.2 -O2, ICC 16), used by
//!   the benchmark harness to regenerate every figure's series at paper
//!   scale (4096² matrices, 64 cores) where direct execution is
//!   infeasible.

#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod omprt;
pub mod sim;

pub use omprt::{
    global_pool, instrument, on_worker_thread, parallel_for, parallel_for_pooled,
    parallel_for_state, parallel_for_state_pooled, parse_omp_parallel_for_clauses, spawn_capacity,
    FutureReport, OmpClauses, OmpSchedule, PoolStats, PureFuture, TaskGroup, ThreadPool,
    LOCAL_QUEUE_LIMIT, SATURATION_FACTOR,
};
pub use sim::{
    program_time, region_time, speedup, Compiler, CompilerKind, CostProfile, Machine, Variant,
    Workload,
};
