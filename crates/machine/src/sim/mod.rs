//! sim — the machine + compiler cost model replacing the paper's testbed
//! (4× AMD Opteron 6272, GCC 7.2 / ICC 16, libgomp).
//!
//! See [`topology`] for the NUMA bandwidth model, [`compiler`] for the
//! GCC/ICC code-generation differences, [`workload`] for loop
//! characterization, and [`roofline`] for the wall-clock model.

pub mod compiler;
pub mod roofline;
pub mod topology;
pub mod workload;

pub use compiler::{Compiler, CompilerKind};
pub use roofline::{program_time, region_time, speedup, OmpCosts};
pub use topology::Machine;
pub use workload::{CostProfile, Variant, Workload};
