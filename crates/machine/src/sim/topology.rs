//! Machine model: the paper's testbed — four AMD Opteron 6272 processors
//! (16 cores each, 2.1 GHz), 512 GiB RAM, ~100 GiB/s aggregate memory
//! bandwidth — as an explicit NUMA topology with a bandwidth model.
//!
//! The bandwidth model carries the two effects the paper's curves hinge
//! on:
//!
//! * **saturation** — per-socket bandwidth saturates around 8 cores, which
//!   is why the heat stencil's speedup decays beyond 8 cores (Sect. 4.3.2);
//! * **first-touch page placement** — memory initialised by a serial loop
//!   lands on socket 0 only, capping bandwidth at one node even when 64
//!   cores compute; the `pure` chain's accidental parallelization of the
//!   `malloc` loop spreads pages across nodes and is why the pure matmul
//!   outruns plain PluTo (Sect. 4.3.1, Fig. 3).

use serde::{Deserialize, Serialize};

/// NUMA machine description.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Machine {
    pub sockets: usize,
    pub cores_per_socket: usize,
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Peak DRAM bandwidth of one NUMA node, bytes/s.
    pub node_bw: f64,
    /// A single core cannot exceed this stream bandwidth, bytes/s.
    pub core_bw: f64,
    /// Multiplicative penalty per additional socket touched when all pages
    /// live on one node (remote-access mix).
    pub remote_penalty: f64,
    /// Efficiency factor per additional socket for spread pages (OS/page
    /// interleave imperfection).
    pub spread_efficiency: f64,
}

impl Machine {
    /// The paper's node: 4 × Opteron 6272.
    pub fn opteron_6272_quad() -> Self {
        Machine {
            sockets: 4,
            cores_per_socket: 16,
            freq_hz: 2.1e9,
            node_bw: 26.0e9, // ~100 GiB/s aggregate over 4 nodes
            core_bw: 6.0e9,
            remote_penalty: 0.90,
            spread_efficiency: 0.95,
        }
    }

    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Sockets spanned by `threads` threads under compact pinning
    /// (fill socket 0 first — the paper's `numactl` policy).
    pub fn sockets_spanned(&self, threads: usize) -> usize {
        threads
            .div_ceil(self.cores_per_socket)
            .clamp(1, self.sockets)
    }

    /// Effective DRAM bandwidth available to `threads` compute threads.
    ///
    /// `pages_spread == false`: all pages on node 0 (serial first touch).
    /// Bandwidth is capped by that node and *degrades* as more sockets
    /// must reach it remotely — the source of the PluTo matmul's
    /// non-monotonic 16 → 32 core step.
    ///
    /// `pages_spread == true`: pages interleaved over the spanned nodes
    /// (parallel first touch), bandwidth scales with spanned sockets at
    /// `spread_efficiency` per extra node.
    pub fn bandwidth(&self, threads: usize, pages_spread: bool) -> f64 {
        let threads = threads.max(1);
        let spanned = self.sockets_spanned(threads);
        let core_limit = self.core_bw * threads as f64;
        let node_limit = if pages_spread {
            let eff = self.spread_efficiency.powi(spanned as i32 - 1);
            self.node_bw * spanned as f64 * eff
        } else {
            self.node_bw * self.remote_penalty.powi(spanned as i32 - 1)
        };
        core_limit.min(node_limit)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::opteron_6272_quad()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_counts() {
        let m = Machine::opteron_6272_quad();
        assert_eq!(m.total_cores(), 64);
        assert_eq!(m.sockets_spanned(1), 1);
        assert_eq!(m.sockets_spanned(16), 1);
        assert_eq!(m.sockets_spanned(17), 2);
        assert_eq!(m.sockets_spanned(64), 4);
        assert_eq!(m.sockets_spanned(999), 4);
    }

    #[test]
    fn bandwidth_saturates_within_a_socket() {
        let m = Machine::default();
        // 1..4 cores: core-limited (linear).
        assert!(m.bandwidth(2, true) > m.bandwidth(1, true) * 1.9);
        // 8 → 16 cores on one socket: node-limited (flat).
        assert_eq!(m.bandwidth(8, true), m.bandwidth(16, true));
    }

    #[test]
    fn spread_pages_scale_with_sockets() {
        let m = Machine::default();
        let one = m.bandwidth(16, true);
        let four = m.bandwidth(64, true);
        assert!(four > 3.0 * one, "spread pages must scale: {one} -> {four}");
    }

    #[test]
    fn unspread_pages_degrade_across_sockets() {
        let m = Machine::default();
        let one = m.bandwidth(16, false);
        let two = m.bandwidth(32, false);
        let four = m.bandwidth(64, false);
        assert!(two < one, "remote mix must degrade node-0 bandwidth");
        assert!(four < two);
    }

    #[test]
    fn aggregate_bandwidth_close_to_100_gib() {
        let m = Machine::default();
        let bw = m.bandwidth(64, true);
        let gib = bw / 1.074e9 / 1e0; // bytes/s → GiB/s approx
        assert!(gib > 80.0 && gib < 110.0, "{gib} GiB/s");
    }
}
