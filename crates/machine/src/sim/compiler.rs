//! Compiler models: GCC 7.2 `-O2` vs Intel ICC 16, plus the hand-tuned
//! MKL code-generation quality used as the upper-bound series.
//!
//! These encode the *documented qualitative differences* the paper's
//! curves depend on (Sect. 4.3.1):
//!
//! * ICC auto-vectorizes the small *extracted* pure functions (the `dot`
//!   kernel) — GCC at `-O2` does not;
//! * neither compiler vectorizes the function once PluTo has inlined it
//!   into a transformed loop ("this automatic vectorization is not carried
//!   out when the function is inlined");
//! * explicit SIMD pragmas from PluTo-SICA vectorize either way;
//! * call overhead differs slightly (ICC's IPO trims frame setup).

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompilerKind {
    GccO2,
    Icc16,
}

impl std::fmt::Display for CompilerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompilerKind::GccO2 => write!(f, "GCC 7.2 -O2"),
            CompilerKind::Icc16 => write!(f, "ICC 16 -O2"),
        }
    }
}

/// Code-generation model of one compiler.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Compiler {
    pub kind: CompilerKind,
    /// Scalar floating-point operations per cycle per core.
    pub scalar_ipc: f64,
    /// Cycles per (non-inlined) function call: frame + spill + ret.
    pub call_overhead_cycles: f64,
    /// Auto-vectorizes small extracted (out-of-line) functions?
    pub vectorizes_extracted: bool,
    /// SIMD speedup factor achieved when vectorization happens
    /// (width × efficiency; Opteron AVX on f32 ≈ 8 × 0.45).
    pub simd_speedup: f64,
}

impl Compiler {
    pub fn gcc_o2() -> Self {
        Compiler {
            kind: CompilerKind::GccO2,
            scalar_ipc: 2.0,
            call_overhead_cycles: 32.0,
            vectorizes_extracted: false,
            simd_speedup: 3.2,
        }
    }

    pub fn icc16() -> Self {
        Compiler {
            kind: CompilerKind::Icc16,
            // ICC's scalar code on this app class is a few percent better
            // (paper: heat 34.14 s GCC vs 31.32 s ICC sequential).
            scalar_ipc: 2.18,
            call_overhead_cycles: 26.0,
            vectorizes_extracted: true,
            simd_speedup: 3.6,
        }
    }

    /// Effective floating-point throughput multiplier for a loop body.
    ///
    /// * `extracted_call` — body is a call to a small pure function that
    ///   remained out-of-line (the `pure` chain's shape);
    /// * `simd_pragma` — SICA emitted an explicit vectorization pragma.
    pub fn vector_factor(&self, extracted_call: bool, simd_pragma: bool) -> f64 {
        if simd_pragma || (extracted_call && self.vectorizes_extracted) {
            self.simd_speedup
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icc_vectorizes_extracted_gcc_does_not() {
        let gcc = Compiler::gcc_o2();
        let icc = Compiler::icc16();
        assert_eq!(gcc.vector_factor(true, false), 1.0);
        assert!(icc.vector_factor(true, false) > 3.0);
    }

    #[test]
    fn inlined_code_is_not_auto_vectorized_by_either() {
        // The paper: "this automatic vectorization is not carried out when
        // the function is inlined".
        assert_eq!(Compiler::gcc_o2().vector_factor(false, false), 1.0);
        assert_eq!(Compiler::icc16().vector_factor(false, false), 1.0);
    }

    #[test]
    fn sica_pragma_vectorizes_under_both() {
        assert!(Compiler::gcc_o2().vector_factor(false, true) > 3.0);
        assert!(Compiler::icc16().vector_factor(false, true) > 3.0);
    }

    #[test]
    fn icc_scalar_slightly_faster() {
        assert!(Compiler::icc16().scalar_ipc > Compiler::gcc_o2().scalar_ipc);
        assert!(Compiler::icc16().call_overhead_cycles < Compiler::gcc_o2().call_overhead_cycles);
    }
}
