//! Workload and code-variant descriptions consumed by the simulator.
//!
//! A [`Workload`] characterizes the parallel loop itself (iterations,
//! arithmetic, memory traffic, per-iteration cost shape); a [`Variant`]
//! characterizes what the tool chain did to it (inlined or extracted
//! calls, SIMD, tiling locality, schedule, first-touch behaviour). The
//! same workload is simulated under different variants to produce the
//! paper's per-tool series.

use crate::omprt::OmpSchedule;
use serde::{Deserialize, Serialize};

/// Shape of the per-iteration cost across the iteration space — drives
/// load (im)balance under static schedules.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum CostProfile {
    /// All iterations cost the same.
    Uniform,
    /// The last `tail_frac` of the iteration space costs `tail_mult`× the
    /// base cost (the satellite application's late-phase imbalance,
    /// Sect. 4.3.3).
    TailHeavy { tail_frac: f64, tail_mult: f64 },
    /// Mild per-iteration jitter around the mean, e.g. sparse rows with
    /// varying population (LAMA, Sect. 4.3.4). `spread` is the relative
    /// half-width of a smooth sawtooth.
    Jitter { spread: f64 },
}

impl CostProfile {
    /// Mean relative cost (base = 1).
    pub fn mean(&self) -> f64 {
        match *self {
            CostProfile::Uniform => 1.0,
            CostProfile::TailHeavy {
                tail_frac,
                tail_mult,
            } => (1.0 - tail_frac) + tail_frac * tail_mult,
            CostProfile::Jitter { .. } => 1.0,
        }
    }

    /// Total relative cost of the contiguous range `[a, b)` of a unit
    /// iteration space (`0.0..1.0`).
    pub fn range_cost(&self, a: f64, b: f64) -> f64 {
        debug_assert!(a <= b);
        match *self {
            CostProfile::Uniform => b - a,
            CostProfile::TailHeavy {
                tail_frac,
                tail_mult,
            } => {
                let cut = 1.0 - tail_frac;
                let light = (b.min(cut) - a.min(cut)).max(0.0);
                let heavy = (b.max(cut) - a.max(cut)).max(0.0);
                light + heavy * tail_mult
            }
            CostProfile::Jitter { spread } => {
                // Sawtooth with period 1/8 of the space; integrates to ~(b-a).
                let f = |x: f64| x + spread * (8.0 * x).sin() / 8.0;
                f(b) - f(a)
            }
        }
    }

    /// Load imbalance factor (max thread share / ideal share) for a static
    /// contiguous partition into `t` threads.
    pub fn static_imbalance(&self, t: usize) -> f64 {
        if t <= 1 {
            return 1.0;
        }
        let t = t as f64;
        let ideal = self.mean() / t;
        let mut max_share: f64 = 0.0;
        let n = t as usize;
        for k in 0..n {
            let share = self.range_cost(k as f64 / t, (k + 1) as f64 / t);
            max_share = max_share.max(share);
        }
        (max_share / ideal).max(1.0)
    }
}

/// The parallel loop being simulated.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Workload {
    /// Parallel (outermost) iterations.
    pub iters: u64,
    /// Floating-point operations per iteration.
    pub flops_per_iter: f64,
    /// DRAM traffic per iteration in bytes (after cache filtering for the
    /// *untransformed* layout).
    pub bytes_per_iter: f64,
    /// Function-call count per iteration when calls stay out-of-line.
    pub calls_per_iter: f64,
    pub cost: CostProfile,
    /// Whether the body vectorizes at all. Strided stencils defeat SIMD
    /// (the paper's heat result: "the advanced vectorization capabilities
    /// ... do not have a positive impact on this application").
    pub simd_friendly: bool,
}

/// What the tool chain produced.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Variant {
    /// Calls inlined (PluTo path) → no call overhead, but the body is a
    /// big loop the compilers refuse to auto-vectorize.
    pub inlined: bool,
    /// SICA emitted explicit SIMD pragmas.
    pub simd_pragma: bool,
    /// Multiplier (< 1) on DRAM traffic from cache-aware tiling.
    pub locality: f64,
    pub schedule: OmpSchedule,
    /// Pages spread over NUMA nodes by a parallel first touch?
    pub pages_spread: bool,
    /// Overall hand-tuning quality multiplier on compute throughput
    /// (1.0 = compiler-generated; MKL ≈ 4–5).
    pub hand_tuned: f64,
}

impl Variant {
    /// Compiler-generated sequential baseline: extracted calls, no
    /// parallel pragmas.
    pub fn sequential() -> Self {
        Variant {
            inlined: false,
            simd_pragma: false,
            locality: 1.0,
            schedule: OmpSchedule::Static,
            pages_spread: false,
            hand_tuned: 1.0,
        }
    }

    /// Plain PluTo: inlined, tiled locality, static schedule, serial init.
    pub fn pluto(locality: f64) -> Self {
        Variant {
            inlined: true,
            simd_pragma: false,
            locality,
            schedule: OmpSchedule::Static,
            pages_spread: false,
            hand_tuned: 1.0,
        }
    }

    /// PluTo-SICA: + SIMD pragmas and better cache behaviour.
    pub fn pluto_sica(locality: f64) -> Self {
        Variant {
            simd_pragma: true,
            ..Variant::pluto(locality)
        }
    }

    /// The pure chain: calls stay extracted; the accidental parallel
    /// `malloc`/init loop spreads pages (matmul, Fig. 3).
    pub fn pure_chain(pages_spread: bool) -> Self {
        Variant {
            inlined: false,
            simd_pragma: false,
            locality: 1.0,
            schedule: OmpSchedule::Static,
            pages_spread,
            hand_tuned: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_is_balanced() {
        let p = CostProfile::Uniform;
        assert!((p.static_imbalance(8) - 1.0).abs() < 1e-9);
        assert!((p.mean() - 1.0).abs() < 1e-12);
        assert!((p.range_cost(0.25, 0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tail_heavy_imbalance_grows_with_threads() {
        let p = CostProfile::TailHeavy {
            tail_frac: 0.1,
            tail_mult: 6.0,
        };
        let i2 = p.static_imbalance(2);
        let i8 = p.static_imbalance(8);
        let i64 = p.static_imbalance(64);
        assert!(i2 > 1.0);
        assert!(i8 > i2, "{i8} vs {i2}");
        assert!(i64 >= i8);
        // With 64 threads the whole tail sits in the last few threads: the
        // max share approaches tail_mult / mean × ... bounded by mult.
        assert!(i64 <= 6.0 / p.mean() + 1e-9);
    }

    #[test]
    fn tail_range_cost_splits_correctly() {
        let p = CostProfile::TailHeavy {
            tail_frac: 0.2,
            tail_mult: 3.0,
        };
        // Whole space: 0.8·1 + 0.2·3 = 1.4.
        assert!((p.range_cost(0.0, 1.0) - 1.4).abs() < 1e-12);
        assert!((p.mean() - 1.4).abs() < 1e-12);
        // Pure light region.
        assert!((p.range_cost(0.0, 0.5) - 0.5).abs() < 1e-12);
        // Pure heavy region.
        assert!((p.range_cost(0.9, 1.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_mild() {
        let p = CostProfile::Jitter { spread: 0.15 };
        let imb = p.static_imbalance(16);
        assert!(imb > 1.0 && imb < 1.3, "{imb}");
    }

    #[test]
    fn variant_presets_have_expected_shape() {
        assert!(Variant::pluto(0.6).inlined);
        assert!(!Variant::pluto(0.6).simd_pragma);
        assert!(Variant::pluto_sica(0.5).simd_pragma);
        assert!(!Variant::pure_chain(true).inlined);
        assert!(Variant::pure_chain(true).pages_spread);
    }
}
