//! The execution-time model: a NUMA-aware roofline with OpenMP runtime
//! overheads.
//!
//! `wall = max(compute/threads × imbalance, traffic/bandwidth)
//!        + fork/join + scheduler overhead`
//!
//! Each term maps to a mechanism the paper itself uses to explain its
//! measurements: call overhead (heat, Sect. 4.3.2: 87.8 G vs 47.5 G
//! instructions), bandwidth saturation (heat speedup decay > 8 cores),
//! first-touch NUMA placement (matmul pure vs PluTo), static-schedule
//! imbalance vs `schedule(dynamic,1)` dequeue contention (satellite), and
//! vectorization differences between GCC/ICC/SICA (matmul under ICC).

use super::compiler::Compiler;
use super::topology::Machine;
use super::workload::{Variant, Workload};
use crate::omprt::OmpSchedule;

/// Fixed OpenMP runtime constants (libgomp-class).
#[derive(Debug, Clone, Copy)]
pub struct OmpCosts {
    /// Parallel-region fork/join base cost, seconds.
    pub fork_base: f64,
    /// Additional fork/join cost per thread, seconds.
    pub fork_per_thread: f64,
    /// Uncontended cost of one dynamic-queue dequeue, seconds.
    pub dequeue: f64,
    /// Extra dequeue serialization per contending thread (cache-line
    /// bouncing on the shared counter), seconds.
    pub dequeue_contention: f64,
}

impl Default for OmpCosts {
    fn default() -> Self {
        OmpCosts {
            fork_base: 4.0e-6,
            fork_per_thread: 0.35e-6,
            dequeue: 60.0e-9,
            dequeue_contention: 5.0e-9,
        }
    }
}

/// Simulated wall-clock seconds for one parallel region execution.
///
/// `threads == 1` models the sequential program when the variant has no
/// parallel pragma (no fork cost is charged for a plain sequential run —
/// pass `parallel = false`).
pub fn region_time(
    m: &Machine,
    c: &Compiler,
    w: &Workload,
    v: &Variant,
    threads: usize,
    parallel: bool,
) -> f64 {
    let threads = threads.clamp(1, m.total_cores());

    // --- compute term -----------------------------------------------------
    let vector = if w.simd_friendly {
        c.vector_factor(!v.inlined, v.simd_pragma)
    } else {
        1.0
    };
    let flop_cycles = w.flops_per_iter / (c.scalar_ipc * vector * v.hand_tuned);
    let call_cycles = if v.inlined {
        0.0
    } else {
        w.calls_per_iter * c.call_overhead_cycles
    };
    let secs_per_iter = (flop_cycles + call_cycles) / m.freq_hz;
    let compute_total = w.iters as f64 * secs_per_iter * w.cost.mean();

    // Load balance: static partitions suffer the cost profile; dynamic
    // schedules approach perfect balance (bounded by one chunk).
    let imbalance = if !parallel || threads == 1 {
        1.0
    } else {
        match v.schedule {
            OmpSchedule::Static | OmpSchedule::StaticChunk(_) => w.cost.static_imbalance(threads),
            OmpSchedule::Dynamic(_) | OmpSchedule::Guided(_) => 1.02,
        }
    };
    let compute_wall = compute_total * imbalance / threads as f64;

    // --- memory term -------------------------------------------------------
    let traffic = w.iters as f64 * w.bytes_per_iter * v.locality;
    let bw = if parallel {
        m.bandwidth(threads, v.pages_spread)
    } else {
        m.bandwidth(1, v.pages_spread)
    };
    let memory_wall = traffic / bw;

    // --- runtime overheads ---------------------------------------------------
    let omp = OmpCosts::default();
    let mut overhead = 0.0;
    if parallel && threads > 1 {
        overhead += omp.fork_base + omp.fork_per_thread * threads as f64;
        if let OmpSchedule::Dynamic(chunk) = v.schedule {
            let chunks = (w.iters as f64 / chunk.max(1) as f64).ceil();
            // The shared counter serializes: with more threads each
            // successful fetch_add costs more (line ping-pong).
            let per_dequeue = omp.dequeue + omp.dequeue_contention * threads as f64;
            // Serialized component lower-bounded by chunks × bounce, but
            // spread over threads while they still have work.
            let serialized = chunks * per_dequeue;
            overhead += serialized / (threads as f64).sqrt();
        }
    }

    compute_wall.max(memory_wall) + overhead
}

/// A full program may be several regions (e.g. the heat application's 200
/// time steps, or matmul's init loop + compute loop). This helper sums
/// per-region times.
pub fn program_time(
    regions: &[(Workload, Variant, bool)],
    m: &Machine,
    c: &Compiler,
    threads: usize,
) -> f64 {
    regions
        .iter()
        .map(|(w, v, parallel)| region_time(m, c, w, v, threads, *parallel))
        .sum()
}

/// Speedup helper: `T_seq / T_par` (the paper's definition, against the
/// GCC sequential baseline).
pub fn speedup(t_seq: f64, t_par: f64) -> f64 {
    t_seq / t_par
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::workload::CostProfile;

    fn cpu_bound_workload() -> Workload {
        Workload {
            iters: 1 << 20,
            flops_per_iter: 4000.0,
            bytes_per_iter: 16.0,
            calls_per_iter: 1.0,
            cost: CostProfile::Uniform,
            simd_friendly: true,
        }
    }

    fn bw_bound_workload() -> Workload {
        Workload {
            iters: 1 << 22,
            flops_per_iter: 8.0,
            bytes_per_iter: 64.0,
            calls_per_iter: 0.0,
            cost: CostProfile::Uniform,
            simd_friendly: true,
        }
    }

    #[test]
    fn cpu_bound_scales_nearly_linearly() {
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = cpu_bound_workload();
        let v = Variant::pure_chain(true);
        let t1 = region_time(&m, &c, &w, &v, 1, false);
        let t16 = region_time(&m, &c, &w, &v, 16, true);
        let sp = t1 / t16;
        assert!(sp > 12.0 && sp <= 16.5, "speedup {sp}");
    }

    #[test]
    fn bw_bound_saturates_after_8_cores() {
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = bw_bound_workload();
        let v = Variant::pluto(1.0);
        let t8 = region_time(&m, &c, &w, &v, 8, true);
        let t16 = region_time(&m, &c, &w, &v, 16, true);
        assert!((t16 / t8 - 1.0).abs() < 0.05, "{t8} vs {t16}");
    }

    #[test]
    fn serial_first_touch_gets_worse_crossing_sockets() {
        // The PluTo matmul 16→32 step of Fig. 3.
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = bw_bound_workload();
        let unspread = Variant::pluto(1.0);
        let t16 = region_time(&m, &c, &w, &unspread, 16, true);
        let t32 = region_time(&m, &c, &w, &unspread, 32, true);
        assert!(t32 > t16, "unspread pages must degrade: {t16} -> {t32}");
        // Whereas spread pages keep improving (or at least not degrade).
        let spread = Variant::pure_chain(true);
        let s16 = region_time(&m, &c, &w, &spread, 16, true);
        let s32 = region_time(&m, &c, &w, &spread, 32, true);
        assert!(s32 <= s16 * 1.01, "{s16} -> {s32}");
    }

    #[test]
    fn call_overhead_penalizes_extracted_variant() {
        // Heat: pure (calls) vs PluTo (inlined) — Sect. 4.3.2.
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = Workload {
            iters: 1 << 20,
            flops_per_iter: 8.0,
            bytes_per_iter: 0.5,
            calls_per_iter: 1.0,
            cost: CostProfile::Uniform,
            simd_friendly: true,
        };
        let extracted = region_time(&m, &c, &w, &Variant::pure_chain(false), 1, false);
        let inlined = region_time(&m, &c, &w, &Variant::pluto(1.0), 1, false);
        assert!(
            extracted > inlined * 1.5,
            "call overhead must dominate small bodies: {extracted} vs {inlined}"
        );
    }

    #[test]
    fn icc_vectorizes_extracted_dot() {
        // Matmul under ICC: pure variant gets the SIMD boost, PluTo not.
        let m = Machine::default();
        let w = cpu_bound_workload();
        let gcc = Compiler::gcc_o2();
        let icc = Compiler::icc16();
        let pure_gcc = region_time(&m, &gcc, &w, &Variant::pure_chain(false), 1, false);
        let pure_icc = region_time(&m, &icc, &w, &Variant::pure_chain(false), 1, false);
        assert!(pure_icc < pure_gcc / 2.5, "{pure_icc} vs {pure_gcc}");
        let pluto_gcc = region_time(&m, &gcc, &w, &Variant::pluto(1.0), 1, false);
        let pluto_icc = region_time(&m, &icc, &w, &Variant::pluto(1.0), 1, false);
        assert!(
            pluto_icc > pluto_gcc * 0.8,
            "inlined gains only scalar margin"
        );
    }

    #[test]
    fn static_schedule_suffers_tail_imbalance_dynamic_does_not() {
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = Workload {
            cost: CostProfile::TailHeavy {
                tail_frac: 0.08,
                tail_mult: 8.0,
            },
            ..cpu_bound_workload()
        };
        let mut static_v = Variant::pure_chain(true);
        static_v.schedule = OmpSchedule::Static;
        let mut dyn_v = static_v;
        dyn_v.schedule = OmpSchedule::Dynamic(1);
        let ts = region_time(&m, &c, &w, &static_v, 32, true);
        let td = region_time(&m, &c, &w, &dyn_v, 32, true);
        assert!(
            td < ts * 0.7,
            "dynamic must beat static on tails: {td} vs {ts}"
        );
    }

    #[test]
    fn dynamic_chunk1_contention_shows_at_64_threads() {
        // Satellite manual-ICC drop 32→64 (Fig. 9): tiny iterations, huge
        // chunk count → dequeue serialization.
        let m = Machine::default();
        let c = Compiler::icc16();
        let w = Workload {
            iters: 1 << 22,
            flops_per_iter: 40.0,
            bytes_per_iter: 4.0,
            calls_per_iter: 0.0,
            cost: CostProfile::Uniform,
            simd_friendly: true,
        };
        let mut v = Variant::pure_chain(true);
        v.inlined = true;
        v.schedule = OmpSchedule::Dynamic(1);
        let t32 = region_time(&m, &c, &w, &v, 32, true);
        let t64 = region_time(&m, &c, &w, &v, 64, true);
        assert!(t64 > t32, "contention must bite at 64: {t32} -> {t64}");
    }

    #[test]
    fn hand_tuned_factor_scales_compute() {
        let m = Machine::default();
        let c = Compiler::icc16();
        let w = cpu_bound_workload();
        let mut mkl = Variant::pluto_sica(0.4);
        mkl.hand_tuned = 2.0;
        let base = region_time(&m, &c, &w, &Variant::pluto_sica(0.4), 1, false);
        let tuned = region_time(&m, &c, &w, &mkl, 1, false);
        assert!((base / tuned - 2.0).abs() < 0.2, "{base} / {tuned}");
    }

    #[test]
    fn program_time_sums_regions() {
        let m = Machine::default();
        let c = Compiler::gcc_o2();
        let w = cpu_bound_workload();
        let v = Variant::pure_chain(false);
        let single = region_time(&m, &c, &w, &v, 1, false);
        let double = program_time(&[(w, v, false), (w, v, false)], &m, &c, 1);
        assert!((double - 2.0 * single).abs() < 1e-12);
    }
}
