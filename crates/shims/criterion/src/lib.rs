//! Offline stand-in for `criterion`: wall-clock timing with the API
//! surface the workspace's benches use (`benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `sample_size`,
//! `criterion_group!`, `criterion_main!`). No statistics machinery —
//! each benchmark reports min/mean over a modest number of timed
//! samples, printed as one line per benchmark.
//!
//! The harness honours two environment variables:
//!
//! * `BENCH_SAMPLES` — override the per-benchmark sample count;
//! * `BENCH_QUICK` — when set, run exactly one sample per benchmark
//!   (used by CI to smoke-test benches without hour-long runs).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirrors criterion's batch-size hint; ignored by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if std::env::var_os("BENCH_QUICK").is_some() {
                1
            } else {
                10
            });
        Criterion { default_samples }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let samples = self.default_samples;
        run_one("", &name.into(), samples, &mut f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        run_one(&self.name, &name.into(), self.samples, &mut f);
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, f: &mut F) {
    let samples = if std::env::var_os("BENCH_QUICK").is_some() {
        1
    } else {
        samples
    };
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters == 0 {
        println!("bench {label:<48} (no iterations)");
    } else {
        let mean = b.total / b.iters as u32;
        println!(
            "bench {label:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean, b.min, b.iters
        );
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

/// Expands to a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0;
        g.bench_function("counts", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_passes_setup_value() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut seen = Vec::new();
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21, |x| seen.push(x * 2), BatchSize::SmallInput)
        });
        assert_eq!(seen, vec![42, 42]);
    }
}
