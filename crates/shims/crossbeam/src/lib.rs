//! Offline stand-in for the `crossbeam` crate: an MPMC unbounded channel
//! with cloneable receivers (std's `mpsc::Receiver` is single-consumer,
//! which the omprt worker pool cannot use). Implemented as a shared
//! `Mutex<VecDeque>` + condvar; throughput is more than sufficient for the
//! pool's task granularity.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] — kept for API parity; sends
    /// only fail once all receivers are gone, which the pool never does
    /// while a sender is live.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection. The queue mutex must be held for
                // the notification — otherwise a receiver that has checked
                // `senders` but not yet parked would miss this wakeup and
                // block forever (check-then-wait races with bare notify).
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fan_out_to_multiple_receivers() {
        let (tx, rx) = unbounded::<u64>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            }));
        }
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
