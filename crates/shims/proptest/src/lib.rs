//! Offline stand-in for `proptest`: deterministic pseudo-random property
//! testing with the API subset this workspace's tests use — the
//! `proptest!` macro (with `#![proptest_config]` headers), integer-range
//! / `Just` / char-class / tuple strategies, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `BoxedStrategy`, `any::<bool>()` and
//! `proptest::collection::vec`.
//!
//! No shrinking: a failing case panics with the generated inputs in the
//! assertion message (cases are reproducible — the RNG is seeded from
//! the test name, so a failure repeats on every run).

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, deterministic, good enough for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Deterministic seed derived from the test name (FNV-1a).
    pub fn seed_for(&self, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of `Self::Value`.
pub trait Strategy: 'static {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: 'static, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = Rc::new(self);
        BoxedStrategy {
            sampler: Rc::new(move |rng| s.sample(rng)),
        }
    }

    /// Bounded recursive strategy: applies `recurse` up to `depth` times,
    /// mixing each level with the leaf strategy so all depths appear.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = one_of(vec![leaf.clone(), deeper]);
        }
        cur
    }
}

/// Type-erased, cloneable strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        sampler: Rc::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].sample(rng)
        }),
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// String "strategies": a `&'static str` pattern. Supports single
/// char-class patterns (`"[a-d]"`) — anything else yields the literal
/// text itself.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let b = self.as_bytes();
        if b.len() == 5 && b[0] == b'[' && b[2] == b'-' && b[4] == b']' && b[1] <= b[3] {
            let width = (b[3] - b[1] + 1) as u64;
            let c = (b[1] + rng.below(width) as u8) as char;
            c.to_string()
        } else {
            (*self).to_string()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized + 'static {
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy {
            sampler: Rc::new(|rng| rng.next_u64() & 1 == 1),
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy {
                    sampler: Rc::new(|rng| rng.next_u64() as $t),
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::rc::Rc;

    /// `Vec` strategy with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(
        element: S,
        len: std::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        assert!(len.start < len.end, "empty length range");
        let element = Rc::new(element);
        BoxedStrategy {
            sampler: Rc::new(move |rng: &mut TestRng| {
                let width = (len.end - len.start) as u64;
                let n = len.start + rng.below(width) as usize;
                (0..n).map(|_| element.sample(rng)).collect()
            }),
        }
    }
}

pub mod option {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::rc::Rc;

    /// `Option` strategy: `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        let inner = Rc::new(inner);
        BoxedStrategy {
            sampler: Rc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(inner.sample(rng))
                }
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// `proptest! { ... }` — runs each contained test function over
/// `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new(cfg.seed_for(stringify!($name)));
                for __case in 0..cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assertion macros — no shrinking, so these are plain panics.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategy expressions of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        any, one_of, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (10i64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-3i64..=3).sample(&mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn char_class_pattern_samples_class() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = "[a-d]".sample(&mut rng);
            assert!(matches!(s.as_str(), "a" | "b" | "c" | "d"), "{s}");
        }
    }

    #[test]
    fn oneof_map_and_vec_compose() {
        let mut rng = TestRng::new(11);
        let strat = prop_oneof![(0i64..5).prop_map(|v| v * 2), Just(100i64),];
        let vecs = collection::vec(strat, 1..4);
        for _ in 0..50 {
            let v = vecs.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            for x in v {
                assert!(x == 100 || (x % 2 == 0 && x < 10));
            }
        }
    }

    #[test]
    fn recursion_is_bounded_and_mixed() {
        let leaf = (0i64..10).prop_map(|v| v.to_string());
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::new(5);
        let mut saw_leaf = false;
        let mut saw_composite = false;
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            if s.starts_with('(') {
                saw_composite = true;
            } else {
                saw_leaf = true;
            }
            assert!(s.matches('(').count() <= 7, "depth bound exceeded: {s}");
        }
        assert!(saw_leaf && saw_composite);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b as u64 <= 1, true);
        }
    }
}
