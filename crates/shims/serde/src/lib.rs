//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this package
//! provides the subset the workspace uses: `Serialize` / `Deserialize`
//! traits with `#[derive(...)]` support (via the sibling `serde_derive`
//! shim) over a small JSON-like [`Value`] data model. `serde_json`
//! (also shimmed) renders and parses that model. Field order is
//! preserved, enums use serde's externally-tagged encoding, and numbers
//! travel as `f64` (every integer the workspace serializes is well below
//! 2^53, so round-trips are exact).

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model shared by `Serialize`/`Deserialize` and the
/// `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (stable output without a map dependency).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    pub message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// `Value` round-trips through itself (real serde's `serde_json::Value`
// behaves the same way) so callers can parse/emit free-form JSON.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Helper used by derived code: fetch a named field of an object.
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field '{name}'")))
}

/// Helper used by derived code: fetch a positional element of an array.
pub fn index(items: &[Value], i: usize) -> Result<&Value, DeError> {
    items
        .get(i)
        .ok_or_else(|| DeError::new(format!("missing tuple element {i}")))
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::new("expected number"))
            }
        }
    )*};
}

impl_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($t::from_value(index(items, $n)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, 1.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        let err = field(obj.as_object().unwrap(), "b").unwrap_err();
        assert!(err.message.contains("'b'"));
    }
}
