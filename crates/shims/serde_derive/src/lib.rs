//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly over `proc_macro`
//! token trees (no `syn`/`quote`, which are unavailable without a
//! registry).
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit, tuple (any arity) or struct-like.
//!
//! Encoding matches serde's externally-tagged JSON convention: structs
//! become objects, unit variants become strings, newtype variants become
//! `{"Variant": value}`, wider tuple variants `{"Variant": [..]}` and
//! struct variants `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Drop `#[...]` attribute pairs from a token list.
fn strip_attrs(tokens: Vec<TokenTree>) -> Vec<TokenTree> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut iter = tokens.into_iter().peekable();
    while let Some(t) = iter.next() {
        if let TokenTree::Punct(p) = &t {
            if p.as_char() == '#' {
                // Swallow the following group (`[...]`).
                let _ = iter.next();
                continue;
            }
        }
        out.push(t);
    }
    out
}

/// Split a token list at top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            if p.as_char() == ',' {
                out.push(std::mem::take(&mut cur));
                continue;
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field name = the identifier immediately before the first top-level ':'
/// (this skips visibility modifiers like `pub` / `pub(crate)`).
fn field_name(tokens: &[TokenTree]) -> Option<String> {
    let mut last_ident: Option<String> = None;
    for t in tokens {
        match t {
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            _ => {}
        }
    }
    None
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens = strip_attrs(input.into_iter().collect());
    let mut iter = tokens.into_iter();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    while let Some(t) = iter.next() {
        match &t {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if kind.is_none() && (s == "struct" || s == "enum") {
                    kind = Some(if s == "struct" { "struct" } else { "enum" });
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        name = Some(n.to_string());
                    }
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && kind.is_some() => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive target must be a named struct or enum");
    let body = body.expect("derive target must have a braced body");
    let entries = split_commas(strip_attrs(body.into_iter().collect()));
    match kind.unwrap() {
        "struct" => {
            let fields = entries
                .iter()
                .filter_map(|f| field_name(f))
                .collect::<Vec<_>>();
            Shape::Struct { name, fields }
        }
        _ => {
            let mut variants = Vec::new();
            for entry in entries {
                let entry = strip_attrs(entry);
                let mut vname: Option<String> = None;
                let mut vkind = VariantKind::Unit;
                for t in &entry {
                    match t {
                        TokenTree::Ident(id) if vname.is_none() => {
                            vname = Some(id.to_string());
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            let elems = split_commas(strip_attrs(g.stream().into_iter().collect()));
                            vkind = VariantKind::Tuple(elems.len());
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            let fields =
                                split_commas(strip_attrs(g.stream().into_iter().collect()))
                                    .iter()
                                    .filter_map(|f| field_name(f))
                                    .collect::<Vec<_>>();
                            vkind = VariantKind::Struct(fields);
                        }
                        _ => {}
                    }
                }
                if let Some(vname) = vname {
                    variants.push(Variant {
                        name: vname,
                        kind: vkind,
                    });
                }
            }
            Shape::Enum { name, variants }
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                            let elems = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{elems}]))]),"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{pairs}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(fields, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let tagged_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(::serde::index(items, {i})?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                                     return ::std::result::Result::Ok({name}::{vn}({elems}));\n\
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::field(vfields, \"{f}\")?)?,"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("\n");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let vfields = inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                                     return ::std::result::Result::Ok({name}::{vn} {{\n{inits}\n}});\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{\n{unit_arms}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let ::std::option::Option::Some(fields) = v.as_object() {{\n\
                             if fields.len() == 1 {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 let _ = inner; // silence unused warning for unit-only enums\n\
                                 match tag.as_str() {{\n{tagged_arms}\n_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::DeError::new(\"no matching variant of {name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
