//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! package provides the exact API subset the codebase uses — `Mutex`,
//! `RwLock` and `Condvar` with parking_lot's non-poisoning semantics —
//! implemented over `std::sync`. Poisoned std locks are recovered
//! transparently (parking_lot has no poisoning), which is the behaviour
//! the interpreter relies on when a worker thread panics under test.

use std::sync;

/// Non-poisoning mutex with parking_lot's `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard wrapper; the `Option` lets [`Condvar::wait`] temporarily take the
/// inner std guard out while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Non-poisoning reader–writer lock.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable operating on [`MutexGuard`] (parking_lot signature:
/// `wait(&mut guard)` instead of std's guard-consuming `wait(guard)`).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }
}
