//! Offline stand-in for `serde_json`: renders and parses the [`serde`]
//! shim's [`Value`] model as JSON. Covers `to_string`, `to_string_pretty`
//! and `from_str` — the full surface this workspace uses.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type covering both parse and convert failures.
#[derive(Debug, Clone)]
pub struct Error {
    pub message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => render_num(*n, out),
        Value::Str(s) => render_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json does for
        // non-finite f64 behind its default behaviour of erroring — we
        // choose null to keep figure output total.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf8 in number"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number '{s}' at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let ch_start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = ch_start + width;
                    let s = std::str::from_utf8(
                        self.bytes
                            .get(ch_start..end)
                            .ok_or_else(|| Error::new("truncated utf8"))?,
                    )
                    .map_err(|_| Error::new("invalid utf8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig 3 — \"matmul\"".into())),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Num(1.0), Value::Num(2.5)]),
                    Value::Array(vec![Value::Num(64.0), Value::Num(0.125)]),
                ]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let text = {
            let mut s = String::new();
            render(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&text).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            render(&v, &mut s, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"points\": ["));
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut s = String::new();
        render(&Value::Num(64.0), &mut s, None, 0);
        assert_eq!(s, "64");
        let mut s2 = String::new();
        render(&Value::Num(0.5), &mut s2, None, 0);
        assert_eq!(s2, "0.5");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
