//! The bytecode VM: third (and fastest) execution tier.
//!
//! Executes the flat instruction arrays produced by [`crate::bytecode`]
//! over NaN-boxed [`Packed`] operands. Four structural choices give this
//! tier its speed over the resolved tree-walker:
//!
//! * **Flat dispatch** — one `loop { match op }` over a contiguous
//!   `Vec<Insn>` replaces recursive `exec`/`eval` descent through
//!   `Box`-linked trees; jumps assign the program counter.
//! * **NaN-boxed frames** — locals, operands and globals are single
//!   `u64` words ([`crate::value::Packed`]), so frames are half the size
//!   of `Scalar` frames and a parallel iteration's private frame setup
//!   is one flat `u64` copy out of a shared snapshot.
//! * **Bump-arena frames** — call frames live in one growing
//!   `Vec<Packed>` per VM (extend on call, truncate on return) instead
//!   of a fresh `Vec` allocation per call; each parallel **worker** owns
//!   one arena reused across every iteration it executes, and regions
//!   run on the persistent process-wide thread pool by default
//!   ([`machine::parallel_for_state_pooled`]; `InterpOptions::pool =
//!   false` falls back to scoped spawn-per-region threads).
//! * **Thread-local accounting** — executed-operation counters are plain
//!   [`Tally`] fields flushed into the shared atomics once per worker at
//!   region join (and once at run end), and the pure-call memo cache is
//!   a per-worker **shard** over a frozen snapshot of the parent's
//!   entries, merged at join — no lock traffic inside the loop.
//!
//! Observable behaviour (exit code, output, executed-op counters modulo
//! memo statistics, error messages) is bit-identical to the resolved
//! engine, which serves as this tier's differential oracle exactly as the
//! legacy tree-walker served the resolved engine. One documented
//! scheduling difference: memo shards mean parallel workers do not see
//! each other's in-flight inserts, so `memo_hits`/`memo_misses` may split
//! differently across a parallel region than under the resolved engine's
//! single locked cache (the differential tests compare counters modulo
//! memo for exactly this reason).

use crate::builtins::{call_builtin, format_printf};
use crate::bytecode::{binop_decode, BFunc, BRegion, BSpawn, BytecodeProgram, Insn, Op};
use crate::cache::ClockCache;
use crate::interp::{InterpOptions, RunResult, RuntimeError, Trap};
use crate::opt::PairProfile;
use crate::resolve::{Coerce, MemoCache, MemoKey, MEMO_CAPACITY};
use crate::value::{
    Counters, FuelBudget, GlobalTable, Memory, Packed, Ptr, RaceAccumulator, Scalar, SpillPool,
    Tally, TrackSets,
};
use cfront::ast::BinOp;
use cfront::intern::Symbol;
use cfront::span::Span;
use machine::omprt::instrument;
use machine::{global_pool, parallel_for_state, parallel_for_state_pooled, PureFuture, ThreadPool};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type RtResult<T> = Result<T, RuntimeError>;

// ---------------------------------------------------------------------------
// Sharded pure-call memo cache
// ---------------------------------------------------------------------------

/// Bound on one worker's private memo shard. Kept below the process-wide
/// [`MEMO_CAPACITY`] so the state a region join must merge (and a
/// `freeze` must clone) stays small even on memo-heavy workloads.
pub(crate) const SHARD_CAPACITY: usize = MEMO_CAPACITY / 4;

/// Per-worker view of the pure-call memo cache: a read-only frozen
/// snapshot shared by `Arc` plus a private bounded write shard
/// ([`ClockCache`], so a long run recycles cold entries instead of
/// refusing new ones). Lookups probe the shard then the snapshot — no
/// lock either way. At a parallel-region join the parent absorbs every
/// worker's shard; entering a region freezes the parent's merged view
/// for the children.
pub(crate) struct MemoShard {
    frozen: Arc<HashMap<MemoKey, Scalar>>,
    local: ClockCache<MemoKey, Scalar>,
}

impl MemoShard {
    fn new() -> Self {
        MemoShard {
            frozen: Arc::new(HashMap::new()),
            local: ClockCache::new(SHARD_CAPACITY),
        }
    }

    fn with_frozen(frozen: Arc<HashMap<MemoKey, Scalar>>) -> Self {
        MemoShard {
            frozen,
            local: ClockCache::new(SHARD_CAPACITY),
        }
    }

    #[inline]
    fn get(&mut self, key: &MemoKey) -> Option<Scalar> {
        if let Some(v) = self.local.get(key) {
            return Some(v);
        }
        self.frozen.get(key).copied()
    }

    /// Insert a result; returns `true` when a cold entry was evicted to
    /// make room (callers count it into `Tally::memo_evictions`).
    fn insert(&mut self, key: MemoKey, v: Scalar) -> bool {
        if !matches!(v, Scalar::I(_) | Scalar::F(_)) {
            return false;
        }
        self.local.insert(key, v)
    }

    /// The local shard's resident entries, cloned out for a region-join
    /// or future-join merge into another shard.
    fn local_entries(&self) -> Vec<(MemoKey, Scalar)> {
        self.local.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Merged read-only snapshot handed to parallel children (region
    /// workers and spawned futures). The local shard is *promoted* into
    /// the shared `Arc` — but only once it has grown past a fraction of
    /// the frozen map, so spawn-heavy workloads don't clone the whole
    /// map per spawn site: a child may miss the most recent handful of
    /// inserts, which is already true of sibling shards (memo contents
    /// are best-effort; the differential projection excludes memo
    /// counts). Amortized, each entry is cloned O(1) times. The frozen
    /// map is capped at [`MEMO_CAPACITY`]: promotion past the cap drops
    /// the excess (best-effort, like sibling-shard invisibility).
    fn freeze(&mut self) -> Arc<HashMap<MemoKey, Scalar>> {
        if self.local.len() * 4 > self.frozen.len() + 64 {
            let mut merged = (*self.frozen).clone();
            for (k, v) in self.local.iter() {
                if merged.len() >= MEMO_CAPACITY {
                    break;
                }
                merged.insert(k.clone(), *v);
            }
            self.frozen = Arc::new(merged);
            self.local = ClockCache::new(SHARD_CAPACITY);
        }
        Arc::clone(&self.frozen)
    }

    /// Fold a worker's shard back in at region join; returns the number
    /// of entries evicted to make room.
    fn absorb(&mut self, other: Vec<(MemoKey, Scalar)>) -> u64 {
        let mut evicted = 0;
        for (k, v) in other {
            // Keep an existing entry (or-insert semantics: the local
            // value is at least as fresh as the worker's).
            if self.local.get(&k).is_some() || self.frozen.contains_key(&k) {
                continue;
            }
            if self.local.insert(k, v) {
                evicted += 1;
            }
        }
        evicted
    }
}

// ---------------------------------------------------------------------------
// VM state
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct VmShared {
    prog: Arc<BytecodeProgram>,
    mem: Memory,
    counters: Arc<Counters>,
    /// Globals live in a lock-free [`GlobalTable`]: NaN-boxed words in
    /// atomic slots whose overflow entries sit in a *shared* append-only
    /// spill (per-VM [`SpillPool`] indices must never travel between
    /// VMs, shared-table indices are valid everywhere). Loads and stores
    /// are single atomic accesses; compound assigns and `++`/`--` go
    /// through a CAS loop so concurrent RMWs on one global cannot tear.
    globals: Arc<GlobalTable>,
    output: Arc<Mutex<String>>,
    /// One instruction budget shared by every thread of the run
    /// (region workers and pure-call futures included).
    fuel: Option<Arc<FuelBudget>>,
    opts: InterpOptions,
}

struct Vm {
    s: VmShared,
    /// Operand stack.
    stack: Vec<Packed>,
    /// Bump arena of call frames: extend on call, truncate on return.
    arena: Vec<Packed>,
    /// This VM's NaN-box overflow pool (single-owner, lock-free).
    spill: SpillPool,
    /// Entries below this index are an immutable prefix inherited from
    /// the parent VM of a parallel region; never truncated or compacted.
    spill_floor: usize,
    depth: usize,
    steps: u64,
    /// Locally-held fuel (dispatches left before a shared-budget
    /// refill); `u64::MAX` when no budget is configured, so the hot
    /// path is one predictable branch plus a decrement.
    fuel_local: u64,
    tally: Tally,
    memo: Option<MemoShard>,
    track: Option<TrackSets>,
    /// In-flight pure-call futures, keyed by *absolute* arena index of
    /// their target slot (the spawn analysis guarantees every batch is
    /// forced before its frame is left, so on success paths entries
    /// never dangle and the tail of this list always belongs to the
    /// innermost open batch). Entries carry plain `Scalar`s, never
    /// `Packed` words, so spill compaction stays oblivious to them.
    pending: PendingFutures,
    /// Cached handle of the process-wide pool (pure-call futures).
    futures_pool: Option<Arc<ThreadPool>>,
    /// Monomorphic inline caches, one per optimizer-assigned `CallUser`
    /// site (`BytecodeProgram::ic_slots`); lazily sized on first use.
    /// Each entry short-circuits the memo-shard probe when the same
    /// cacheable call repeats with the same arguments (memo-gated: only
    /// consulted when a memo key exists). A site that keeps missing is
    /// demoted to [`IcSlot::Poly`] and stops comparing keys entirely —
    /// a polymorphic site must cost one branch, not a key compare.
    icache: Vec<IcSlot>,
    /// Sampled opcode-pair profile (`--profile-pairs`, root VM only).
    pairs: Option<Box<PairProfile>>,
}

/// Misses a `Mono` inline-cache entry tolerates before the site is
/// written off as polymorphic.
const IC_POLY_LIMIT: u32 = 8;

/// State of one monomorphic inline-cache slot.
#[derive(Clone)]
enum IcSlot {
    /// Never filled.
    Cold,
    /// Caches the first observed `(key, value)`; counts misses since.
    Mono(MemoKey, Scalar, u32),
    /// Demoted: the site saw `IC_POLY_LIMIT` distinct keys — probing is
    /// a guaranteed loss, skip it forever.
    Poly,
}

/// One in-flight pure call of this VM. `fid`/`args` duplicate what the
/// queued task owns so that a future revoked at its await
/// ([`PureFuture::cancel`]) can run as a plain inline call on this VM —
/// no child VM, no state merge.
struct VmPending {
    abs: usize,
    coerce: Coerce,
    fid: u32,
    args: Vec<Scalar>,
    fut: PureFuture<VmFutureOut>,
}

/// The VM's in-flight future list. On error paths — an await that
/// propagates a failure, a region worker whose iteration failed
/// mid-batch, or a VM abandoned with spawns in flight — the remaining
/// futures must be waited out, not leaked: an orphaned task would keep
/// occupying (and saturating) the *shared* process-wide pool after the
/// run failed, and a reused region-worker VM would find stale entries
/// whose slot indices alias the next iteration's frame. `Drop` covers
/// the abandonment paths; [`PendingFutures::drain`] the reuse path.
#[derive(Default)]
struct PendingFutures(Vec<VmPending>);

impl PendingFutures {
    /// Wait out every in-flight future, discarding results (error
    /// paths only — the run has already failed).
    fn drain(&mut self) {
        for p in self.0.drain(..) {
            let _ = p.fut.wait();
        }
    }
}

impl Drop for PendingFutures {
    fn drop(&mut self) {
        self.drain();
    }
}

/// What a spawned pure call hands back at its join: the value (or the
/// runtime error), the worker's private op tally, and its memo-shard
/// inserts — merged into the awaiting VM exactly like a parallel-region
/// worker's state is merged at region join.
struct VmFutureOut {
    value: RtResult<Scalar>,
    tally: Tally,
    memo_local: Option<Vec<(MemoKey, Scalar)>>,
}

/// Execute one spawned pure call on its own child VM (fresh arena,
/// spill pool and tally; frozen memo snapshot; the spawner's call
/// `depth`, so the stack-overflow guard trips exactly where the inline
/// call would have). The callee is const-like — it touches no globals
/// and no `Memory` — so this is observationally the inline call, minus
/// *where* it runs.
fn run_future_task(
    shared: VmShared,
    frozen: Option<Arc<HashMap<MemoKey, Scalar>>>,
    fid: u32,
    args: Vec<Scalar>,
    depth: usize,
) -> VmFutureOut {
    let mut vm = Vm::new(shared);
    vm.memo = frozen.map(MemoShard::with_frozen);
    vm.depth = depth;
    for a in &args {
        let p = vm.pack(*a);
        vm.stack.push(p);
    }
    let value = match vm.call_user(fid, args.len(), 0, Span::DUMMY) {
        Ok(()) => {
            let v = vm.pop();
            Ok(vm.unpack(v))
        }
        Err(e) => Err(e),
    };
    vm.refund_fuel();
    VmFutureOut {
        value,
        tally: vm.tally,
        memo_local: vm.memo.as_ref().map(|m| m.local_entries()),
    }
}

/// Execute a bytecode program's entry function to completion.
pub(crate) fn run_vm(
    prog: &Arc<BytecodeProgram>,
    entry: &str,
    opts: InterpOptions,
) -> RtResult<RunResult> {
    let shared = VmShared {
        prog: Arc::clone(prog),
        mem: Memory::with_limit(opts.max_memory_bytes),
        counters: Arc::new(Counters::new()),
        globals: Arc::new(GlobalTable::new(prog.nglobals)),
        output: Arc::new(Mutex::new(String::new())),
        fuel: opts.fuel.map(|f| Arc::new(FuelBudget::new(f))),
        opts,
    };
    let mut vm = Vm::new(shared.clone());
    vm.memo = (opts.memo && prog.any_cacheable).then(MemoShard::new);
    if opts.profile_pairs {
        vm.pairs = Some(Box::new(PairProfile::new()));
    }

    // Global initialisers run on an (almost always empty) frame —
    // `frame_size` is 0 from the lowerer, but the optimizer may add
    // hoist slots.
    let prog2 = Arc::clone(prog);
    vm.arena
        .resize(prog2.global_code.frame_size, Packed::UNINIT);
    vm.exec(&prog2.global_code, 0, 0)?;
    debug_assert!(vm.stack.is_empty() || vm.stack.len() == 1);
    vm.stack.clear();
    vm.arena.clear();

    let exit = match prog.by_name.get(entry) {
        Some(&fid) => {
            vm.call_user(fid, 0, 0, Span::DUMMY)?;
            vm.stack.pop().expect("entry result")
        }
        None => {
            // Mirror the other engines: unknown entry falls through to
            // the builtin table, then errors.
            vm.tally.calls += 1;
            let mut out = String::new();
            match call_builtin(entry, &[], &shared.mem, &mut out) {
                Some(Ok(v)) => {
                    if !out.is_empty() {
                        shared.output.lock().push_str(&out);
                    }
                    vm.pack(v)
                }
                Some(Err(e)) => return Err(RuntimeError::from_mem(e, Span::DUMMY)),
                None => {
                    return Err(RuntimeError::at(
                        format!("call to undefined function '{entry}'"),
                        Span::DUMMY,
                    ))
                }
            }
        }
    };
    let exit_code = vm.to_i64(exit);
    // Single flush of the root tally into the shared atomics.
    vm.tally.flush(&shared.counters);
    let output = shared.output.lock().clone();
    let counters = shared.counters.snapshot();
    Ok(RunResult {
        exit_code,
        output,
        counters,
        pairs: vm.pairs.take().map(|p| *p),
    })
}

impl Vm {
    fn new(s: VmShared) -> Self {
        let fuel_local = if s.fuel.is_some() { 0 } else { u64::MAX };
        Vm {
            s,
            stack: Vec::with_capacity(32),
            arena: Vec::with_capacity(64),
            spill: SpillPool::new(),
            spill_floor: 0,
            depth: 0,
            steps: 0,
            fuel_local,
            tally: Tally::new(),
            memo: None,
            track: None,
            pending: PendingFutures::default(),
            futures_pool: None,
            icache: Vec::new(),
            pairs: None,
        }
    }

    /// Grab the next fuel block from the shared budget (slow path of the
    /// dispatch loop, at most once per [`crate::value::FUEL_BLOCK`]
    /// dispatches).
    #[cold]
    fn refill_fuel(&mut self, span: Span) -> RtResult<()> {
        let Some(budget) = &self.s.fuel else {
            // Unlimited runs only land here after 2^64 dispatches.
            self.fuel_local = u64::MAX;
            return Ok(());
        };
        let granted = budget.take_block();
        if granted == 0 {
            return Err(RuntimeError::trap_at(
                Trap::FuelExhausted,
                "fuel exhausted",
                span,
            ));
        }
        instrument::instant("fuel.refill", granted);
        self.fuel_local = granted;
        Ok(())
    }

    /// Sampled memo-hit probe: hits are far too frequent for one event
    /// each (a memo-heavy run would blow the event buffers and the
    /// traced-overhead budget), so every 64th hit per worker emits one
    /// instant carrying the running total. One branch when tracing is
    /// off, like every probe site.
    #[inline(always)]
    fn probe_memo_hit(&self) {
        if instrument::enabled() && self.tally.memo_hits.is_multiple_of(64) {
            instrument::instant("memo.hit", self.tally.memo_hits);
        }
    }

    /// Hand unused local fuel back when a region-worker or future child
    /// retires, so a finishing worker's block stays available to its
    /// siblings instead of silently burned.
    fn refund_fuel(&mut self) {
        if let Some(budget) = &self.s.fuel {
            budget.refund(std::mem::take(&mut self.fuel_local));
        }
    }

    /// Child VM for a parallel region / race check: inherits a frozen
    /// memo view and the parent's spill entries as an immutable prefix
    /// (so spill references inside the frame snapshot stay resolvable).
    fn new_child(
        s: VmShared,
        frozen: Option<Arc<HashMap<MemoKey, Scalar>>>,
        spill_prefix: &[Scalar],
    ) -> Self {
        let mut vm = Vm::new(s);
        vm.memo = frozen.map(MemoShard::with_frozen);
        vm.spill = SpillPool::with_entries(spill_prefix.to_vec());
        vm.spill_floor = spill_prefix.len();
        vm
    }

    /// Compact the spill pool down to its live entries. Sound only at a
    /// statement boundary (or region entry): every live spill reference
    /// is then a word in `arena` or `stack` — region frame snapshots,
    /// memo entries, globals and `Memory` all hold unpacked `Scalar`s.
    /// The inherited `spill_floor` prefix is kept verbatim (a parallel
    /// child's frame template references it by index every iteration).
    fn compact_spills(&mut self) {
        let floor = self.spill_floor;
        let mut fresh = self.spill.prefix(floor);
        fresh.reserve(64);
        for word in self.arena.iter_mut().chain(self.stack.iter_mut()) {
            if let Some(idx) = word.spill_index() {
                if idx >= floor {
                    let v = self.spill.get_entry(idx);
                    *word = Packed::from_spill_index(fresh.len());
                    fresh.push(v);
                }
            }
        }
        self.spill.replace_entries(fresh);
    }

    #[inline]
    fn pack(&self, v: Scalar) -> Packed {
        Packed::pack(v, &self.spill)
    }

    #[inline]
    fn unpack(&self, p: Packed) -> Scalar {
        p.unpack(&self.spill)
    }

    #[inline]
    fn truthy(&self, p: Packed) -> bool {
        if let Some(i) = p.as_inline_int() {
            return i != 0;
        }
        match self.unpack(p) {
            Scalar::I(v) => v != 0,
            Scalar::F(f) => f != 0.0,
            Scalar::P(_) => true,
            Scalar::Null | Scalar::Uninit => false,
        }
    }

    #[inline]
    fn to_i64(&self, p: Packed) -> i64 {
        if let Some(i) = p.as_inline_int() {
            return i;
        }
        self.unpack(p).as_i64()
    }

    #[inline]
    fn pop(&mut self) -> Packed {
        self.stack.pop().expect("operand stack underflow")
    }

    // -- memory with tallies --------------------------------------------------

    #[inline]
    fn mem_load(&mut self, p: Ptr, span: Span) -> RtResult<Packed> {
        self.tally.loads += 1;
        if let Some(t) = &mut self.track {
            t.reads.insert((p.alloc, p.index));
        }
        match self.s.mem.load(p) {
            Ok(v) => Ok(self.pack(v)),
            Err(e) => Err(RuntimeError::from_mem(e, span)),
        }
    }

    #[inline]
    fn mem_store(&mut self, p: Ptr, v: Packed, span: Span) -> RtResult<()> {
        self.tally.stores += 1;
        if let Some(t) = &mut self.track {
            t.writes.insert((p.alloc, p.index));
        }
        let v = self.unpack(v);
        self.s
            .mem
            .store(p, v)
            .map_err(|e| RuntimeError::from_mem(e, span))
    }

    /// Packed word → pointer for an indexing operation, with the shared
    /// "indexing a non-pointer value" error (`PtrIndex`, `LoadIdxLL`,
    /// `StoreIdxLL`).
    #[inline]
    fn index_ptr(&self, v: Packed, span: Span) -> RtResult<Ptr> {
        if let Some(p) = v.as_inline_ptr() {
            return Ok(p);
        }
        match self.unpack(v) {
            Scalar::P(p) => Ok(p),
            other => Err(RuntimeError::at(
                format!("indexing a non-pointer value {other:?}"),
                span,
            )),
        }
    }

    /// Pop a value that the compiler guarantees is a pointer (produced by
    /// a `Ptr*` place instruction).
    #[inline]
    fn pop_ptr(&mut self) -> Ptr {
        let v = self.pop();
        if let Some(p) = v.as_inline_ptr() {
            return p;
        }
        match self.unpack(v) {
            Scalar::P(p) => p,
            other => unreachable!("compiler emitted a non-pointer place: {other:?}"),
        }
    }

    #[inline]
    fn coerce_packed(&self, c: Coerce, v: Packed) -> Packed {
        match c {
            Coerce::None => v,
            Coerce::ToFloat => {
                if let Some(i) = v.as_inline_int() {
                    return self.pack(Scalar::F(i as f64));
                }
                match self.unpack(v) {
                    Scalar::I(i) => self.pack(Scalar::F(i as f64)),
                    _ => v,
                }
            }
            Coerce::ToInt => {
                if v.is_inline_float() {
                    let f = match self.unpack(v) {
                        Scalar::F(f) => f,
                        _ => unreachable!("inline float unpacks to F"),
                    };
                    return Packed::pack_i64(f as i64, &self.spill);
                }
                match self.unpack(v) {
                    Scalar::F(f) => Packed::pack_i64(f as i64, &self.spill),
                    _ => v,
                }
            }
        }
    }

    // -- operators ------------------------------------------------------------

    /// Integer fast path of [`Self::binop`]; both operands are inline
    /// ints. Mirrors the resolved engine's integer branch bit for bit.
    #[inline]
    fn int_binop(&mut self, op: BinOp, a: i64, b: i64, span: Span) -> RtResult<Packed> {
        use BinOp::*;
        let out = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return Err(RuntimeError::at("integer division by zero", span));
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return Err(RuntimeError::at("integer modulo by zero", span));
                }
                a.wrapping_rem(b)
            }
            Shl => a.wrapping_shl(b as u32),
            Shr => a.wrapping_shr(b as u32),
            Lt => i64::from(a < b),
            Gt => i64::from(a > b),
            Le => i64::from(a <= b),
            Ge => i64::from(a >= b),
            Eq => i64::from(a == b),
            Ne => i64::from(a != b),
            BitAnd => a & b,
            BitXor => a ^ b,
            BitOr => a | b,
            And | Or => unreachable!("lowered to jumps"),
        };
        self.tally.int_ops += 1;
        Ok(Packed::pack_i64(out, &self.spill))
    }

    #[inline]
    fn binop(&mut self, op: BinOp, l: Packed, r: Packed, span: Span) -> RtResult<Packed> {
        if let (Some(a), Some(b)) = (l.as_inline_int(), r.as_inline_int()) {
            return self.int_binop(op, a, b, span);
        }
        let lv = self.unpack(l);
        let rv = self.unpack(r);
        let s = self.apply_binop(op, lv, rv, span)?;
        Ok(self.pack(s))
    }

    /// General binary-operator semantics — a faithful copy of the
    /// resolved engine's `apply_binop` with tally bumps in place of
    /// shared-atomic bumps.
    fn apply_binop(&mut self, op: BinOp, lv: Scalar, rv: Scalar, span: Span) -> RtResult<Scalar> {
        use BinOp::*;
        match (lv, rv, op) {
            (Scalar::P(p), i, Add) if !matches!(i, Scalar::P(_)) => {
                self.tally.int_ops += 1;
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (i, Scalar::P(p), Add) if !matches!(i, Scalar::P(_)) => {
                self.tally.int_ops += 1;
                return Ok(Scalar::P(p.offset(i.as_i64())));
            }
            (Scalar::P(p), i, Sub) if !matches!(i, Scalar::P(_)) => {
                self.tally.int_ops += 1;
                return Ok(Scalar::P(p.offset(-i.as_i64())));
            }
            (Scalar::P(a), Scalar::P(b), Sub) => {
                self.tally.int_ops += 1;
                return Ok(Scalar::I(a.index - b.index));
            }
            (Scalar::P(a), Scalar::P(b), Eq) => {
                return Ok(Scalar::I(i64::from(a == b)));
            }
            (Scalar::P(a), Scalar::P(b), Ne) => {
                return Ok(Scalar::I(i64::from(a != b)));
            }
            (Scalar::P(_), Scalar::Null, Eq) | (Scalar::Null, Scalar::P(_), Eq) => {
                return Ok(Scalar::I(0));
            }
            (Scalar::P(_), Scalar::Null, Ne) | (Scalar::Null, Scalar::P(_), Ne) => {
                return Ok(Scalar::I(1));
            }
            _ => {}
        }

        let float = lv.is_float() || rv.is_float();
        if float {
            let a = lv.as_f64();
            let b = rv.as_f64();
            let out = match op {
                Add => Scalar::F(a + b),
                Sub => Scalar::F(a - b),
                Mul => Scalar::F(a * b),
                Div => Scalar::F(a / b),
                Rem => Scalar::F(a % b),
                Lt => Scalar::I(i64::from(a < b)),
                Gt => Scalar::I(i64::from(a > b)),
                Le => Scalar::I(i64::from(a <= b)),
                Ge => Scalar::I(i64::from(a >= b)),
                Eq => Scalar::I(i64::from(a == b)),
                Ne => Scalar::I(i64::from(a != b)),
                Shl | Shr | BitAnd | BitXor | BitOr => {
                    return Err(RuntimeError::at("bitwise op on float", span))
                }
                And | Or => unreachable!("lowered to jumps"),
            };
            self.tally.flops += 1;
            Ok(out)
        } else {
            let a = lv.as_i64();
            let b = rv.as_i64();
            let packed = self.int_binop(op, a, b, span)?;
            Ok(self.unpack(packed))
        }
    }

    /// `++`/`--` value transition (shared by the three `IncDec*` ops).
    #[inline]
    fn incdec(&mut self, old: Packed, flags: u32) -> Packed {
        let delta: i64 = if flags & 1 != 0 { 1 } else { -1 };
        if let Some(i) = old.as_inline_int() {
            self.tally.int_ops += 1;
            return Packed::pack_i64(i + delta, &self.spill);
        }
        let s = self.unpack(old);
        let new = self.incdec_scalar(s, flags);
        self.pack(new)
    }

    #[inline]
    fn incdec_scalar(&mut self, old: Scalar, flags: u32) -> Scalar {
        let delta: i64 = if flags & 1 != 0 { 1 } else { -1 };
        match old {
            Scalar::F(f) => {
                self.tally.flops += 1;
                Scalar::F(f + delta as f64)
            }
            Scalar::P(p) => Scalar::P(p.offset(delta)),
            other => {
                self.tally.int_ops += 1;
                Scalar::I(other.as_i64() + delta)
            }
        }
    }

    // -- calls ----------------------------------------------------------------

    /// `ic` is the 1-based inline-cache slot assigned by the optimizer
    /// (0 = no cache on this call site).
    fn call_user(&mut self, fid: u32, nargs: usize, ic: usize, span: Span) -> RtResult<()> {
        self.tally.calls += 1;
        match self.s.opts.max_call_depth {
            Some(limit) if self.depth >= limit => {
                return Err(RuntimeError::trap_at(
                    Trap::DepthLimit,
                    format!("call depth limit exceeded ({limit})"),
                    span,
                ));
            }
            None if self.depth >= 512 => {
                return Err(RuntimeError::at("call stack overflow", span));
            }
            _ => {}
        }
        let prog = Arc::clone(&self.s.prog);
        let func = &prog.funcs[fid as usize];

        // Bind (coerced) arguments into a fresh arena frame.
        let fbase = self.arena.len();
        self.arena.resize(fbase + func.frame_size, Packed::UNINIT);
        let argbase = self.stack.len() - nargs;
        for (i, &(slot, co)) in func.params.iter().enumerate() {
            if i >= nargs {
                break;
            }
            let v = self.coerce_packed(co, self.stack[argbase + i]);
            self.arena[fbase + slot as usize] = v;
        }
        self.stack.truncate(argbase);

        // Pure-call memoization against this worker's shard.
        let memo_key = if func.cacheable && self.memo.is_some() {
            let nkey = func.params.len().min(func.frame_size);
            let mut scalars = Vec::with_capacity(nkey);
            for v in &self.arena[fbase..fbase + nkey] {
                scalars.push(v.unpack(&self.spill));
            }
            MemoCache::key(fid, &scalars)
        } else {
            None
        };
        // Inline cache: one key compare instead of a shard probe on
        // repeat calls (memo-gated — only live when a key exists).
        if ic != 0 {
            if let Some(key) = &memo_key {
                if self.icache.len() < self.s.prog.ic_slots {
                    self.icache.resize(self.s.prog.ic_slots, IcSlot::Cold);
                }
                if let IcSlot::Mono(k, v, misses) = &mut self.icache[ic - 1] {
                    if k == key {
                        let v = *v;
                        self.tally.memo_hits += 1;
                        self.tally.icache_hits += 1;
                        self.probe_memo_hit();
                        self.arena.truncate(fbase);
                        let v = self.pack(v);
                        self.stack.push(v);
                        return Ok(());
                    }
                    *misses += 1;
                    if *misses >= IC_POLY_LIMIT {
                        self.icache[ic - 1] = IcSlot::Poly;
                    }
                }
            }
        }
        if let (Some(shard), Some(key)) = (&mut self.memo, &memo_key) {
            if let Some(v) = shard.get(key) {
                self.tally.memo_hits += 1;
                self.probe_memo_hit();
                self.arena.truncate(fbase);
                // Fill-once: a monomorphic site caches its first key and
                // serves every repeat; a `Poly` site never refills.
                if ic != 0 && matches!(self.icache[ic - 1], IcSlot::Cold) {
                    self.icache[ic - 1] = IcSlot::Mono(key.clone(), v, 0);
                }
                let v = self.pack(v);
                self.stack.push(v);
                return Ok(());
            }
            self.tally.memo_misses += 1;
        }

        self.depth += 1;
        let result = self.exec(func, fbase, 0);
        self.depth -= 1;
        self.arena.truncate(fbase);
        let result = result?;
        if let Some(key) = memo_key {
            let v = self.unpack(result);
            if ic != 0 && matches!(self.icache[ic - 1], IcSlot::Cold) {
                self.icache[ic - 1] = IcSlot::Mono(key.clone(), v, 0);
            }
            if let Some(shard) = &mut self.memo {
                if shard.insert(key, v) {
                    self.tally.memo_evictions += 1;
                }
            }
        }
        self.stack.push(result);
        Ok(())
    }

    // -- pure-call futures ----------------------------------------------------

    #[inline]
    fn futures_on(&self) -> bool {
        self.s.opts.futures && self.s.opts.threads > 1 && self.track.is_none()
    }

    fn futures_pool(&mut self) -> Arc<ThreadPool> {
        if let Some(p) = &self.futures_pool {
            return Arc::clone(p);
        }
        let p = global_pool(self.s.opts.threads);
        self.futures_pool = Some(Arc::clone(&p));
        p
    }

    /// Fold a finished future into this VM: tally, memo inserts, then
    /// the (coerced) value into the target slot — or its error.
    fn absorb_future(&mut self, out: VmFutureOut, abs: usize, coerce: Coerce) -> RtResult<()> {
        self.tally.merge(&out.tally);
        if let (Some(local), Some(mine)) = (out.memo_local, &mut self.memo) {
            let evicted = mine.absorb(local);
            self.tally.memo_evictions += evicted;
        }
        let v = out.value?;
        let pv = self.pack(coerce.apply(v));
        self.arena[abs] = pv;
        Ok(())
    }

    /// Execute one `SpawnPure`: arguments are already on the operand
    /// stack (evaluated eagerly, original program order).
    fn exec_spawn(&mut self, sp: BSpawn, base: usize, span: Span) -> RtResult<()> {
        let nargs = sp.nargs as usize;
        let abs = base + sp.slot as usize;
        let mut throttled = false;
        if self.futures_on() {
            // The throttle is THE hot case once every worker is busy
            // (the granularity governor of the recursion), so it is
            // checked before any argument marshalling: the hardware-
            // clamped pool-wide pending cap, plus — from a pool worker
            // — its own exposed-task budget (a handful of relaxed
            // loads, see machine::spawn_capacity) — then the call runs
            // inline on this VM like a plain call statement.
            let pool = self.futures_pool();
            throttled = !machine::spawn_capacity(&pool, self.s.opts.threads, self.s.opts.steal);
        }
        if !self.futures_on() || throttled {
            // Exactly the original call statement: call, coerce, store.
            if throttled {
                self.tally.futures_inlined += 1;
                instrument::instant("future.inline", sp.fid as u64);
            }
            self.call_user(sp.fid, nargs, 0, span)?;
            let v = self.pop();
            let v = self.coerce_packed(sp.coerce, v);
            self.arena[abs] = v;
            return Ok(());
        }
        // Take the arguments off the stack as owned scalars.
        let argbase = self.stack.len() - nargs;
        let mut args = Vec::with_capacity(nargs);
        for v in &self.stack[argbase..] {
            args.push(v.unpack(&self.spill));
        }
        self.stack.truncate(argbase);
        let prog = Arc::clone(&self.s.prog);
        let func = &prog.funcs[sp.fid as usize];
        // Memo pre-check: a hit never spawns (mirrors `call_user`'s hit
        // path via the shared key builder).
        if func.cacheable && self.memo.is_some() {
            if let Some(key) = MemoCache::key_for_call(&func.params, func.frame_size, sp.fid, &args)
            {
                if let Some(v) = self.memo.as_mut().and_then(|m| m.get(&key)) {
                    self.tally.calls += 1;
                    self.tally.memo_hits += 1;
                    self.probe_memo_hit();
                    let pv = self.pack(sp.coerce.apply(v));
                    self.arena[abs] = pv;
                    return Ok(());
                }
            }
        }
        let pool = self.futures_pool();
        let frozen = self.memo.as_mut().map(|m| m.freeze());
        let shared = self.s.clone();
        let fid = sp.fid;
        let depth = self.depth;
        let args_kept = args.clone();
        let task = move || run_future_task(shared, frozen, fid, args, depth);
        let fut = PureFuture::spawn(&pool, self.s.opts.steal, task);
        self.tally.futures_spawned += 1;
        if fut.pushed_local() {
            self.tally.local_pushes += 1;
        }
        self.pending.0.push(VmPending {
            abs,
            coerce: sp.coerce,
            fid,
            args: args_kept,
            fut,
        });
        Ok(())
    }

    /// One statement/iteration tick: step accounting, spill compaction
    /// at the safe point, memory ceiling. The body of [`Op::Step`], also
    /// run once per iteration by `AffineHead`/`AffineNext`.
    #[inline]
    fn step_tick(&mut self, span: Span) -> RtResult<()> {
        self.steps += 1;
        if self.steps > self.s.opts.max_steps {
            return Err(RuntimeError::at(
                "step limit exceeded (infinite loop?)",
                span,
            ));
        }
        // Statement boundaries are compaction safe points: the pool's
        // live set is exactly the spill-tagged words in the arena and
        // operand stack.
        let live = self.arena.len() + self.stack.len();
        if self.spill.len() - self.spill_floor > 1024 + 4 * live {
            self.compact_spills();
        }
        // Memory ceiling at statement granularity: heap bytes are
        // charged exactly at `try_alloc`, while this VM's
        // arena/stack/spill growth is folded in here (at most one
        // statement of overshoot).
        if let Some(limit) = self.s.mem.limit_bytes() {
            let local = 8 * (live + self.spill.len()) as u64;
            let heap = self.s.mem.used_bytes().unwrap_or(0);
            if heap.saturating_add(local) > limit {
                return Err(RuntimeError::trap_at(
                    Trap::MemoryLimit,
                    format!(
                        "memory limit exceeded: {heap} heap + {local} \
                         interpreter bytes over the {limit}-byte cap"
                    ),
                    span,
                ));
            }
        }
        Ok(())
    }

    /// Branch-counted bound check shared by `AffineHead`/`AffineNext`:
    /// `frame[a & 0xFFFF] <lt|le> ub` with the rhs re-read every time
    /// (slot or const per `b & 2`), exactly the counter effects of the
    /// literal loop's condition evaluation.
    #[inline]
    fn affine_cond(&mut self, f: &BFunc, base: usize, insn: Insn, span: Span) -> RtResult<bool> {
        self.tally.branches += 1;
        let op = if insn.b & 1 != 0 {
            BinOp::Le
        } else {
            BinOp::Lt
        };
        let x = self.arena[base + (insn.a & 0xFFFF) as usize];
        let out = if insn.b & 2 != 0 {
            let cv = f.consts[(insn.a >> 16) as usize];
            if let (Some(a), Scalar::I(b)) = (x.as_inline_int(), cv) {
                self.int_binop(op, a, b, span)?
            } else {
                let xs = self.unpack(x);
                let s = self.apply_binop(op, xs, cv, span)?;
                self.pack(s)
            }
        } else {
            let y = self.arena[base + (insn.a >> 16) as usize];
            self.binop(op, x, y, span)?
        };
        Ok(self.truthy(out))
    }

    // -- dispatch loop --------------------------------------------------------

    /// Run `f`'s code from `pc` with the current frame at `arena[base..]`
    /// until a `Ret` (function result) or `RegionEnd` (iteration end).
    ///
    /// Dispatch uses the *prefetched-opcode* arrangement: `insn` is a
    /// loop-carried register reloaded at the bottom of the loop and at
    /// every taken branch, so the fetch of the next instruction issues
    /// before the dispatch branch of the current one retires. Measured
    /// A/B against fetching at the top of the loop: ~4-5% faster on the
    /// dispatch-bound varaccess bench, within noise on matmul64 /
    /// arraysum / heat (see README tier-3.5 notes).
    fn exec(&mut self, f: &BFunc, base: usize, mut pc: usize) -> RtResult<Packed> {
        let mut insn = f.code[pc];
        loop {
            // Fuel check: one predictable branch and a decrement per
            // dispatch; refills (and the only shared-atomic traffic)
            // happen once per FUEL_BLOCK dispatches in the cold path.
            if self.fuel_local == 0 {
                self.refill_fuel(f.spans[pc])?;
            }
            self.fuel_local -= 1;
            if let Some(pp) = &mut self.pairs {
                pp.tick(insn.op);
            }
            match insn.op {
                Op::Step => self.step_tick(f.spans[pc])?,
                Op::Const => {
                    let v = self.pack(f.consts[insn.a as usize]);
                    self.stack.push(v);
                }
                Op::StrNew => {
                    let s = Arc::clone(&f.strings[insn.a as usize]);
                    let span = f.spans[pc];
                    let n = s.chars().count();
                    let p = self
                        .s
                        .mem
                        .try_alloc(n + 1)
                        .map_err(|e| RuntimeError::from_mem(e, span))?;
                    for (i, ch) in s.chars().enumerate() {
                        let v = self.pack(Scalar::I(ch as i64));
                        self.mem_store(p.offset(i as i64), v, span)?;
                    }
                    let nul = self.pack(Scalar::I(0));
                    self.mem_store(p.offset(n as i64), nul, span)?;
                    let v = self.pack(Scalar::P(p));
                    self.stack.push(v);
                }
                Op::LoadLocal => {
                    let v = self.arena[base + insn.a as usize];
                    self.stack.push(v);
                }
                Op::LoadGlobal => {
                    let v = self.s.globals.load(insn.a as usize);
                    let v = self.pack(v);
                    self.stack.push(v);
                }
                Op::StoreLocal => {
                    let v = *self.stack.last().expect("operand stack underflow");
                    self.arena[base + insn.a as usize] = v;
                }
                Op::StoreGlobal => {
                    let v = *self.stack.last().expect("operand stack underflow");
                    let v = self.unpack(v);
                    self.s.globals.store(insn.a as usize, v);
                }
                Op::StoreLocalPop => {
                    let v = self.pop();
                    self.arena[base + insn.a as usize] = v;
                }
                Op::StoreGlobalPop => {
                    let v = self.pop();
                    let v = self.unpack(v);
                    self.s.globals.store(insn.a as usize, v);
                }
                Op::Dup => {
                    let v = *self.stack.last().expect("operand stack underflow");
                    self.stack.push(v);
                }
                Op::Pop => {
                    self.pop();
                }
                Op::PushUninit => self.stack.push(Packed::UNINIT),
                Op::UnaryNeg => {
                    let v = self.pop();
                    let out = if let Some(i) = v.as_inline_int() {
                        self.tally.int_ops += 1;
                        Packed::pack_i64(-i, &self.spill)
                    } else {
                        match self.unpack(v) {
                            Scalar::F(f) => {
                                self.tally.flops += 1;
                                self.pack(Scalar::F(-f))
                            }
                            other => {
                                self.tally.int_ops += 1;
                                Packed::pack_i64(-other.as_i64(), &self.spill)
                            }
                        }
                    };
                    self.stack.push(out);
                }
                Op::UnaryNot => {
                    let v = self.pop();
                    let out = Packed::pack_i64(i64::from(!self.truthy(v)), &self.spill);
                    self.stack.push(out);
                }
                Op::UnaryBitNot => {
                    let v = self.pop();
                    let out = Packed::pack_i64(!self.to_i64(v), &self.spill);
                    self.stack.push(out);
                }
                Op::DerefLoad => {
                    let v = self.pop();
                    let p = if let Some(p) = v.as_inline_ptr() {
                        p
                    } else {
                        match self.unpack(v) {
                            Scalar::P(p) => p,
                            other => {
                                return Err(RuntimeError::at(
                                    format!("dereference of non-pointer {other:?}"),
                                    f.spans[pc],
                                ))
                            }
                        }
                    };
                    let v = self.mem_load(p, f.spans[pc])?;
                    self.stack.push(v);
                }
                Op::Binary => {
                    let r = self.pop();
                    let l = self.pop();
                    let out = self.binop(binop_decode(insn.a), l, r, f.spans[pc])?;
                    self.stack.push(out);
                }
                Op::BinLL => {
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let y = self.arena[base + (insn.a >> 16) as usize];
                    let out = self.binop(binop_decode(insn.b), x, y, f.spans[pc])?;
                    self.stack.push(out);
                }
                Op::BinLC => {
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let cv = f.consts[(insn.a >> 16) as usize];
                    let op = binop_decode(insn.b);
                    let out = if let (Some(a), Scalar::I(b)) = (x.as_inline_int(), cv) {
                        self.int_binop(op, a, b, f.spans[pc])?
                    } else {
                        let xs = self.unpack(x);
                        let s = self.apply_binop(op, xs, cv, f.spans[pc])?;
                        self.pack(s)
                    };
                    self.stack.push(out);
                }
                Op::PtrIndex => {
                    let iv = self.pop();
                    let bv = self.pop();
                    let i = self.to_i64(iv);
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let out = Packed::pack_ptr(p.offset(i), &self.spill);
                    self.stack.push(out);
                }
                Op::PtrDeref => {
                    let v = self.pop();
                    match (v.as_inline_ptr(), self.unpack(v)) {
                        (Some(_), _) | (_, Scalar::P(_)) => self.stack.push(v),
                        _ => {
                            return Err(RuntimeError::at("dereference of non-pointer", f.spans[pc]))
                        }
                    }
                }
                Op::PtrMember => {
                    let v = self.pop();
                    let p = if let Some(p) = v.as_inline_ptr() {
                        p
                    } else {
                        match self.unpack(v) {
                            Scalar::P(p) => p,
                            _ => {
                                return Err(RuntimeError::at(
                                    "member access on non-struct",
                                    f.spans[pc],
                                ))
                            }
                        }
                    };
                    let out = Packed::pack_ptr(p.offset(insn.a as i64), &self.spill);
                    self.stack.push(out);
                }
                Op::LoadMem => {
                    let p = self.pop_ptr();
                    let v = self.mem_load(p, f.spans[pc])?;
                    self.stack.push(v);
                }
                Op::StoreMem => {
                    let p = self.pop_ptr();
                    let v = self.pop();
                    self.mem_store(p, v, f.spans[pc])?;
                    if insn.b == 0 {
                        self.stack.push(v);
                    }
                }
                Op::LoadIdxConst => {
                    let p = self.pop_ptr();
                    let v = self.mem_load(p.offset(insn.a as i64), f.spans[pc])?;
                    self.stack.push(v);
                }
                Op::SkipUnlessPtr => {
                    let top = *self.stack.last().expect("operand stack underflow");
                    let is_ptr =
                        top.as_inline_ptr().is_some() || matches!(self.unpack(top), Scalar::P(_));
                    if !is_ptr {
                        self.pop();
                        pc = insn.a as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::StoreIdxConst => {
                    let v = self.pop();
                    let p = self.pop_ptr();
                    self.mem_store(p.offset(insn.a as i64), v, f.spans[pc])?;
                }
                Op::CompoundLocal => {
                    let rv = self.pop();
                    let old = self.arena[base + insn.a as usize];
                    let res = self.binop(binop_decode(insn.b & 0xFF), old, rv, f.spans[pc])?;
                    self.arena[base + insn.a as usize] = res;
                    if insn.b & 0x100 == 0 {
                        self.stack.push(res);
                    }
                }
                Op::CompoundGlobal => {
                    let rv = self.pop();
                    let rv = self.unpack(rv);
                    let op = binop_decode(insn.b & 0xFF);
                    let span = f.spans[pc];
                    // One atomic RMW — the old read-guard/write-guard
                    // pair let a concurrent RMW slip between the two and
                    // lose an update. The CAS may retry `apply_binop`;
                    // the tally snapshot keeps it counted exactly once.
                    let globals = Arc::clone(&self.s.globals);
                    let saved_tally = self.tally;
                    let (_, res) = globals.rmw(insn.a as usize, |old| {
                        self.tally = saved_tally;
                        self.apply_binop(op, old, rv, span)
                    })?;
                    if insn.b & 0x100 == 0 {
                        let res = self.pack(res);
                        self.stack.push(res);
                    }
                }
                Op::CompoundMem => {
                    let p = self.pop_ptr();
                    let rv = self.pop();
                    let old = self.mem_load(p, f.spans[pc])?;
                    let res = self.binop(binop_decode(insn.a), old, rv, f.spans[pc])?;
                    self.mem_store(p, res, f.spans[pc])?;
                    if insn.b == 0 {
                        self.stack.push(res);
                    }
                }
                Op::IncDecLocal => {
                    let old = self.arena[base + insn.a as usize];
                    let new = self.incdec(old, insn.b);
                    self.arena[base + insn.a as usize] = new;
                    if insn.b & 4 == 0 {
                        self.stack.push(if insn.b & 2 != 0 { new } else { old });
                    }
                }
                Op::IncDecGlobal => {
                    // Atomic `++`/`--` via CAS (same torn-RMW fix as
                    // `CompoundGlobal`); tally snapshot absorbs retries.
                    let globals = Arc::clone(&self.s.globals);
                    let saved_tally = self.tally;
                    let (old, new) = globals.rmw(insn.a as usize, |old| {
                        self.tally = saved_tally;
                        Ok::<_, RuntimeError>(self.incdec_scalar(old, insn.b))
                    })?;
                    if insn.b & 4 == 0 {
                        let out = self.pack(if insn.b & 2 != 0 { new } else { old });
                        self.stack.push(out);
                    }
                }
                Op::IncDecMem => {
                    let p = self.pop_ptr();
                    let old = self.mem_load(p, f.spans[pc])?;
                    let new = self.incdec(old, insn.b);
                    self.mem_store(p, new, f.spans[pc])?;
                    if insn.b & 4 == 0 {
                        self.stack.push(if insn.b & 2 != 0 { new } else { old });
                    }
                }
                Op::Coerce => {
                    let v = self.pop();
                    let mode = if insn.a == 0 {
                        Coerce::ToFloat
                    } else {
                        Coerce::ToInt
                    };
                    let out = self.coerce_packed(mode, v);
                    self.stack.push(out);
                }
                Op::Jump => {
                    pc = insn.a as usize;
                    insn = f.code[pc];
                    continue;
                }
                Op::JumpIfFalse => {
                    let v = self.pop();
                    if !self.truthy(v) {
                        pc = insn.a as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::JumpIfTrue => {
                    let v = self.pop();
                    if self.truthy(v) {
                        pc = insn.a as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::BumpBranch => self.tally.branches += 1,
                Op::Truthy => {
                    let v = self.pop();
                    let out = Packed::pack_i64(i64::from(self.truthy(v)), &self.spill);
                    self.stack.push(out);
                }
                Op::CallUser => {
                    // `b` packs `nargs | (ic_slot + 1) << 16` — the upper
                    // half is 0 on unoptimized programs.
                    self.call_user(
                        insn.a,
                        (insn.b & 0xFFFF) as usize,
                        (insn.b >> 16) as usize,
                        f.spans[pc],
                    )?;
                }
                Op::CallBuiltin => {
                    self.tally.calls += 1;
                    let nargs = insn.b as usize;
                    let argbase = self.stack.len() - nargs;
                    let mut args = Vec::with_capacity(nargs);
                    for v in &self.stack[argbase..] {
                        args.push(v.unpack(&self.spill));
                    }
                    self.stack.truncate(argbase);
                    let name = self.s.prog.interner.resolve(Symbol(insn.a));
                    let mut out = String::new();
                    match call_builtin(name, &args, &self.s.mem, &mut out) {
                        Some(Ok(v)) => {
                            if !out.is_empty() {
                                self.s.output.lock().push_str(&out);
                            }
                            let v = self.pack(v);
                            self.stack.push(v);
                        }
                        Some(Err(e)) => return Err(RuntimeError::from_mem(e, f.spans[pc])),
                        None => {
                            return Err(RuntimeError::at(
                                format!("call to undefined function '{name}'"),
                                f.spans[pc],
                            ))
                        }
                    }
                }
                Op::Printf => {
                    let span = f.spans[pc];
                    let nargs = insn.b as usize;
                    let argbase = self.stack.len() - nargs;
                    let mut args = Vec::with_capacity(nargs);
                    for v in &self.stack[argbase..] {
                        args.push(v.unpack(&self.spill));
                    }
                    self.stack.truncate(argbase);
                    let fmt: String = if insn.a != u32::MAX {
                        f.strings[insn.a as usize].to_string()
                    } else {
                        let fv = self.pop();
                        let mut p = match self.unpack(fv) {
                            Scalar::P(p) => p,
                            _ => {
                                return Err(RuntimeError::at("printf format is not a string", span))
                            }
                        };
                        let mut s = String::new();
                        loop {
                            let ch = self.mem_load(p, span)?;
                            match self.unpack(ch) {
                                Scalar::I(0) => break,
                                Scalar::I(c) => {
                                    s.push(char::from_u32(c as u32).unwrap_or('?'));
                                    p = p.offset(1);
                                }
                                _ => break,
                            }
                        }
                        s
                    };
                    let rendered = format_printf(&fmt, &args, &self.s.mem);
                    self.s.output.lock().push_str(&rendered);
                    let out = Packed::pack_i64(rendered.len() as i64, &self.spill);
                    self.stack.push(out);
                }
                Op::AllocArray => {
                    let ndims = insn.a as usize;
                    let dimbase = self.stack.len() - ndims;
                    let mut dims = Vec::with_capacity(ndims);
                    for i in 0..ndims {
                        let v = self.stack[dimbase + i];
                        dims.push(self.to_i64(v).max(0) as usize);
                    }
                    self.stack.truncate(dimbase);
                    let p = self.alloc_array(&dims, f.spans[pc])?;
                    let out = self.pack(Scalar::P(p));
                    self.stack.push(out);
                }
                Op::AllocStruct => {
                    let p = self
                        .s
                        .mem
                        .try_alloc(insn.a as usize)
                        .map_err(|e| RuntimeError::from_mem(e, f.spans[pc]))?;
                    let out = self.pack(Scalar::P(p));
                    self.stack.push(out);
                }
                Op::LoadIdxLL => {
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let iv = self.arena[base + (insn.a >> 16) as usize];
                    let i = self.to_i64(iv);
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let v = self.mem_load(p.offset(i), f.spans[pc])?;
                    self.stack.push(v);
                }
                Op::StoreIdxLL => {
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let iv = self.arena[base + (insn.a >> 16) as usize];
                    let i = self.to_i64(iv);
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let v = if insn.b == 0 {
                        *self.stack.last().expect("operand stack underflow")
                    } else {
                        self.pop()
                    };
                    self.mem_store(p.offset(i), v, f.spans[pc])?;
                }
                Op::CompoundIdxLL => {
                    let rv = self.pop();
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let iv = self.arena[base + (insn.a >> 16) as usize];
                    let i = self.to_i64(iv);
                    let p = self.index_ptr(bv, f.spans[pc])?.offset(i);
                    let old = self.mem_load(p, f.spans[pc])?;
                    let res = self.binop(binop_decode(insn.b & 0xFF), old, rv, f.spans[pc])?;
                    self.mem_store(p, res, f.spans[pc])?;
                    if insn.b & 0x100 == 0 {
                        self.stack.push(res);
                    }
                }
                Op::SpawnPure => {
                    let sp = f.spawns[insn.a as usize];
                    self.exec_spawn(sp, base, f.spans[pc])?;
                }
                Op::AwaitSlot => {
                    let abs = base + insn.a as usize;
                    if let Some(pos) = self.pending.0.iter().rposition(|p| p.abs == abs) {
                        let p = self.pending.0.remove(pos);
                        let res = match p.fut.cancel() {
                            Ok(()) => {
                                // Nobody claimed the task between spawn
                                // and await: revoke it and run the call
                                // inline on this VM — the spawn costs
                                // one push and two CASes, nothing more.
                                // (Still counted only in futures_spawned;
                                // futures_inlined is reserved for sites
                                // the admission throttle bounced.)
                                let span = f.spans[pc];
                                let nargs = p.args.len();
                                for a in &p.args {
                                    let v = self.pack(*a);
                                    self.stack.push(v);
                                }
                                self.call_user(p.fid, nargs, 0, span).map(|()| {
                                    let v = self.pop();
                                    let v = self.coerce_packed(p.coerce, v);
                                    self.arena[p.abs] = v;
                                })
                            }
                            Err(fut) => {
                                let (out, report) = fut.wait();
                                if report.helped {
                                    self.tally.futures_helped += 1;
                                    instrument::instant("future.help", p.fid as u64);
                                }
                                if report.stolen {
                                    self.tally.tasks_stolen += 1;
                                }
                                self.absorb_future(out, p.abs, p.coerce)
                            }
                        };
                        if let Err(e) = res {
                            // Drain the batch's (and any outer frame's)
                            // remaining futures before failing, like the
                            // resolved engine's exec_await: no task may
                            // outlive the run on the shared pool.
                            self.pending.drain();
                            return Err(e);
                        }
                    }
                    // No entry: the spawn resolved inline (futures off,
                    // memo hit, or saturation) — the slot is already set.
                }
                Op::OmpRegion => {
                    let r = f.regions[insn.a as usize];
                    self.region(f, base, &r)?;
                    pc = r.end as usize + 1;
                    insn = f.code[pc];
                    continue;
                }
                Op::RegionEnd => return Ok(Packed::ZERO),
                Op::Ret => return Ok(self.pop()),
                Op::Err => {
                    return Err(RuntimeError::at(
                        f.errs[insn.a as usize].clone(),
                        f.spans[pc],
                    ))
                }
                Op::MemberUnknownErr => {
                    let v = self.pop();
                    let msg = match self.unpack(v) {
                        Scalar::P(_) => f.errs[insn.a as usize].clone(),
                        _ => "member access on non-struct".to_string(),
                    };
                    return Err(RuntimeError::at(msg, f.spans[pc]));
                }

                // ---- tier-3.5 superinstructions (emitted only by
                // `crate::opt`). Each replicates the exact counted
                // effects of the sequence it replaced; `insns_folded` /
                // `insns_fused` record the dispatches it eliminated.
                Op::ConstFold => {
                    self.tally.int_ops += (insn.b & 0xFF) as u64;
                    self.tally.flops += ((insn.b >> 8) & 0xFF) as u64;
                    self.tally.insns_folded += (insn.b >> 16) as u64;
                    let v = self.pack(f.consts[insn.a as usize]);
                    self.stack.push(v);
                }
                Op::ConstStore => {
                    self.tally.insns_fused += 1;
                    let v = self.pack(f.consts[insn.a as usize]);
                    self.arena[base + insn.b as usize] = v;
                }
                Op::BinLLStore => {
                    self.tally.insns_fused += 1;
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let y = self.arena[base + (insn.a >> 16) as usize];
                    let out = self.binop(binop_decode(insn.b & 0xFF), x, y, f.spans[pc])?;
                    self.arena[base + (insn.b >> 16) as usize] = out;
                }
                Op::BinLCStore => {
                    self.tally.insns_fused += 1;
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let cv = f.consts[(insn.a >> 16) as usize];
                    let op = binop_decode(insn.b & 0xFF);
                    let out = if let (Some(a), Scalar::I(b)) = (x.as_inline_int(), cv) {
                        self.int_binop(op, a, b, f.spans[pc])?
                    } else {
                        let xs = self.unpack(x);
                        let s = self.apply_binop(op, xs, cv, f.spans[pc])?;
                        self.pack(s)
                    };
                    self.arena[base + (insn.b >> 16) as usize] = out;
                }
                Op::LoadIdxLLStore => {
                    self.tally.insns_fused += 1;
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let iv = self.arena[base + (insn.a >> 16) as usize];
                    let i = self.to_i64(iv);
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let v = self.mem_load(p.offset(i), f.spans[pc])?;
                    self.arena[base + insn.b as usize] = v;
                }
                Op::LoadIdxLC => {
                    self.tally.insns_fused += 3;
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    // The fusion pass only forms this with an integer
                    // index constant.
                    let i = match f.consts[(insn.a >> 16) as usize] {
                        Scalar::I(x) => x,
                        other => other.as_i64(),
                    };
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let v = self.mem_load(p.offset(i), f.spans[pc])?;
                    self.stack.push(v);
                }
                Op::StoreIdxLC => {
                    self.tally.insns_fused += 3;
                    let bv = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let i = match f.consts[(insn.a >> 16) as usize] {
                        Scalar::I(x) => x,
                        other => other.as_i64(),
                    };
                    let p = self.index_ptr(bv, f.spans[pc])?;
                    let v = if insn.b == 0 {
                        *self.stack.last().expect("operand stack underflow")
                    } else {
                        self.pop()
                    };
                    self.mem_store(p.offset(i), v, f.spans[pc])?;
                }
                Op::BrCmpLL => {
                    self.tally.insns_fused += 1 + ((insn.b >> 5) & 1) as u64;
                    if insn.b & 0x20 != 0 {
                        self.tally.branches += 1;
                    }
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let y = self.arena[base + (insn.a >> 16) as usize];
                    let out = self.binop(binop_decode(insn.b & 0xF), x, y, f.spans[pc])?;
                    if self.truthy(out) == ((insn.b >> 4) & 1 == 1) {
                        pc = (insn.b >> 6) as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::BrCmpLC => {
                    self.tally.insns_fused += 1 + ((insn.b >> 5) & 1) as u64;
                    if insn.b & 0x20 != 0 {
                        self.tally.branches += 1;
                    }
                    let x = self.arena[base + (insn.a & 0xFFFF) as usize];
                    let cv = f.consts[(insn.a >> 16) as usize];
                    let op = binop_decode(insn.b & 0xF);
                    let out = if let (Some(a), Scalar::I(b)) = (x.as_inline_int(), cv) {
                        self.int_binop(op, a, b, f.spans[pc])?
                    } else {
                        let xs = self.unpack(x);
                        let s = self.apply_binop(op, xs, cv, f.spans[pc])?;
                        self.pack(s)
                    };
                    if self.truthy(out) == ((insn.b >> 4) & 1 == 1) {
                        pc = (insn.b >> 6) as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::RetLocal => {
                    self.tally.insns_fused += 1;
                    return Ok(self.arena[base + insn.a as usize]);
                }
                Op::AffineHead => {
                    // Entry check, once per loop: tick + branch + bound.
                    self.step_tick(f.spans[pc])?;
                    if !self.affine_cond(f, base, insn, f.spans[pc])? {
                        pc = (insn.b >> 2) as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::AffineNext => {
                    // Back-edge: increment, tick, branch, re-check — the
                    // exact counter order the literal `IncDecLocal; Jump;
                    // Step; BrCmp` sequence observes at any trap instant.
                    let islot = base + (insn.a & 0xFFFF) as usize;
                    let old = self.arena[islot];
                    let new = self.incdec(old, 1);
                    self.arena[islot] = new;
                    self.step_tick(f.spans[pc])?;
                    if self.affine_cond(f, base, insn, f.spans[pc])? {
                        pc = (insn.b >> 2) as usize;
                        insn = f.code[pc];
                        continue;
                    }
                }
                Op::LoadGStore => {
                    let v = self.s.globals.load(insn.a as usize);
                    let v = self.pack(v);
                    self.arena[base + insn.b as usize] = v;
                }
            }
            pc += 1;
            insn = f.code[pc];
        }
    }

    fn alloc_array(&mut self, dims: &[usize], span: Span) -> RtResult<Ptr> {
        match dims {
            [] | [_] => self
                .s
                .mem
                .try_alloc(dims.first().copied().unwrap_or(1))
                .map_err(|e| RuntimeError::from_mem(e, span)),
            [first, rest @ ..] => {
                let spine = self
                    .s
                    .mem
                    .try_alloc(*first)
                    .map_err(|e| RuntimeError::from_mem(e, span))?;
                for i in 0..*first {
                    let sub = self.alloc_array(rest, span)?;
                    self.s
                        .mem
                        .store(spine.offset(i as i64), Scalar::P(sub))
                        .expect("fresh spine in bounds");
                }
                Ok(spine)
            }
        }
    }

    // -- parallel regions -----------------------------------------------------

    fn region(&mut self, f: &BFunc, base: usize, r: &BRegion) -> RtResult<()> {
        let ubv = self.pop();
        let lbv = self.pop();
        let lb = self.to_i64(lbv);
        let ub_incl = if r.ub_inclusive {
            self.to_i64(ubv)
        } else {
            self.to_i64(ubv) - 1
        };
        if ub_incl < lb {
            return Ok(());
        }
        let n = (ub_incl - lb + 1) as u64;
        // The region span covers verdict, fork, every chunk and the join
        // (its guard closes on the trap path too); per-worker chunk
        // spans are emitted by the scheduler under it.
        let _span = instrument::span("region", n);

        // Static verdict first: Independent skips the O(n) dynamic
        // pre-pass, Racy aborts before any iteration, Unknown falls back
        // to the dynamic check.
        if self.s.opts.race_check {
            match r.verdict {
                crate::interp::RaceVerdict::Independent => {
                    Counters::bump(&self.s.counters.race_static_skips);
                }
                crate::interp::RaceVerdict::Racy => {
                    return Err(RuntimeError::at(
                        "static race analysis rejected this parallel loop (verdict: racy)",
                        r.span,
                    ));
                }
                crate::interp::RaceVerdict::Unknown => {
                    instrument::instant("region.race_check", n);
                    self.race_check(f, base, r, lb, n)?;
                }
            }
        }

        // Compact first so the children inherit only live spill entries
        // (usually none), then snapshot the frame: one flat u64 template
        // each worker memcpys per iteration.
        if self.spill.len() > self.spill_floor {
            self.compact_spills();
        }
        let frame: Vec<Packed> = self.arena[base..base + f.frame_size].to_vec();
        let spill_prefix = self.spill.entries_snapshot();
        let frozen = self.memo.as_mut().map(|m| m.freeze());
        let shared = self.s.clone();
        let err: Mutex<Option<RuntimeError>> = Mutex::new(None);
        // Trap-drains-siblings: remaining iterations bail at entry once
        // any iteration errored, so a trap unwinds the region promptly
        // instead of letting siblings burn the rest of their budgets.
        let failed = AtomicBool::new(false);
        let frame = &frame;
        let spill_prefix = &spill_prefix;
        let err_ref = &err;
        let failed_ref = &failed;
        let iter_slot = r.iter_slot as usize;
        let body_start = r.body_start as usize;

        // Each worker owns one child VM — arena, spill pool, tally and
        // memo shard — reused across every iteration that worker
        // executes; the states come back at the join for a single merge.
        // By default the region runs on the persistent process-wide
        // thread pool (the paper's pinned-worker model); `pool: false`
        // keeps the scoped spawn-per-region substrate for A/B runs.
        let init = |_tid: usize| Vm::new_child(shared.clone(), frozen.clone(), spill_prefix);
        let body = |vm: &mut Vm, k: u64| {
            if failed_ref.load(Ordering::Relaxed) {
                return;
            }
            vm.stack.clear();
            vm.arena.clear();
            vm.arena.extend_from_slice(frame);
            vm.spill.truncate(vm.spill_floor);
            vm.arena[iter_slot] = Packed::pack_i64(lb + k as i64, &vm.spill);
            vm.steps = 0;
            vm.depth = 0;
            if let Err(e) = vm.exec(f, 0, body_start) {
                failed_ref.store(true, Ordering::Relaxed);
                // An iteration that failed mid-batch leaves futures in
                // flight; this worker VM is reused for the next
                // iteration, whose frame would alias the stale slots —
                // wait them out now.
                vm.pending.drain();
                let mut g = err_ref.lock();
                if g.is_none() {
                    *g = Some(e);
                }
            }
        };
        // The parent is blocked for the whole region: hand its unused
        // local fuel back first so the workers see the entire remaining
        // budget instead of stalling one block short (the parent
        // re-acquires on its first dispatch after the join).
        self.refund_fuel();
        let workers = if self.s.opts.pool {
            parallel_for_state_pooled(n, self.s.opts.threads, r.schedule, init, body)
        } else {
            parallel_for_state(n, self.s.opts.threads, r.schedule, init, body)
        };
        for mut w in workers {
            w.refund_fuel();
            self.tally.merge(&w.tally);
            if instrument::enabled() {
                instrument::metrics()
                    .arena_bytes
                    .sample((w.arena.capacity() * std::mem::size_of::<Packed>()) as u64);
                instrument::metrics()
                    .spill_bytes
                    .sample((w.spill.len() * std::mem::size_of::<Scalar>()) as u64);
            }
            if let Some(theirs) = w.memo {
                if let Some(mine) = &mut self.memo {
                    let evicted = mine.absorb(theirs.local_entries());
                    if evicted > 0 {
                        instrument::instant("memo.evict", evicted);
                    }
                    self.tally.memo_evictions += evicted;
                }
            }
        }
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Sequentially validate iteration access-set disjointness before a
    /// parallel run — same dynamic purity check as the other engines.
    /// One child VM (frame arena, spill pool, memo shard) is reused
    /// across every validated iteration and merged back once.
    fn race_check(&mut self, f: &BFunc, base: usize, r: &BRegion, lb: i64, n: u64) -> RtResult<()> {
        let mut acc = RaceAccumulator::new();
        if self.spill.len() > self.spill_floor {
            self.compact_spills();
        }
        let frame: Vec<Packed> = self.arena[base..base + f.frame_size].to_vec();
        let spill_prefix = self.spill.entries_snapshot();
        let frozen = self.memo.as_mut().map(|m| m.freeze());
        let mut child = Vm::new_child(self.s.clone(), frozen, &spill_prefix);
        // As with the region fork below: the parent is blocked while the
        // child validates, so its unused local fuel belongs to the child.
        self.refund_fuel();
        let checked = n.min(self.s.opts.effective_race_check_cap());
        self.s
            .counters
            .race_dyn_iters
            .fetch_add(checked, Ordering::Relaxed);
        let mut result = Ok(());
        for k in 0..checked {
            child.stack.clear();
            child.arena.clear();
            child.arena.extend_from_slice(&frame);
            child.spill.truncate(child.spill_floor);
            child.arena[r.iter_slot as usize] = Packed::pack_i64(lb + k as i64, &child.spill);
            child.steps = 0;
            child.depth = 0;
            child.track = Some(TrackSets::default());
            let res = child.exec(f, 0, r.body_start as usize);
            let t = child.track.take().expect("tracking on");
            if let Err(e) = res {
                result = Err(e);
                break;
            }
            if let Err(msg) = acc.absorb(t) {
                result = Err(RuntimeError::at(msg, r.span));
                break;
            }
        }
        child.refund_fuel();
        self.tally.merge(&child.tally);
        if let Some(theirs) = child.memo.take() {
            if let Some(mine) = &mut self.memo {
                let evicted = mine.absorb(theirs.local_entries());
                self.tally.memo_evictions += evicted;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::{Engine, InterpOptions, Program};
    use cfront::parser::parse;
    use std::collections::HashSet;

    fn program(src: &str) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        Program::new(&r.unit)
    }

    fn program_with_pure(src: &str, pure_fns: &[&str]) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let set: HashSet<String> = pure_fns.iter().map(|s| s.to_string()).collect();
        Program::with_pure_set(&r.unit, &set)
    }

    /// Hammer a shared global with `+=`, `++` and a float `+=` from a
    /// `dynamic,1` region on 8 threads. Regression for the torn global
    /// RMW: each engine used to take a read guard, compute, then take a
    /// *separate* write guard, so two workers could both read `g == k`
    /// and both store `k + 1` — a lost update that made the VM diverge
    /// from the oracle engines nondeterministically. Now the VM does a
    /// CAS loop on its lock-free global words, and the resolved/legacy
    /// engines hold one write guard across the whole RMW, so the final
    /// value is exact on every engine, under both parallel substrates.
    #[test]
    fn parallel_global_rmw_never_tears() {
        let src = "\
int g;
double h;
int main() {
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < 300; i++) { g += 1; g++; h += 0.5; }
    return (g + (int) h) % 251;
}
";
        let prog = program(src);
        let expect = (300 * 2 + 150) % 251;
        let seq = prog.run(InterpOptions::default()).expect("seq");
        assert_eq!(seq.exit_code, expect, "sequential baseline");
        for rep in 0..4 {
            for pool in [true, false] {
                let opts = InterpOptions {
                    threads: 8,
                    pool,
                    ..Default::default()
                };
                let vm = prog.run(opts).expect("vm runs");
                assert_eq!(vm.exit_code, expect, "vm rep={rep} pool={pool}");
                let resolved = prog
                    .run(InterpOptions {
                        engine: Engine::Resolved,
                        ..opts
                    })
                    .expect("resolved runs");
                assert_eq!(resolved.exit_code, expect, "resolved rep={rep} pool={pool}");
                let legacy = prog.run_legacy(opts).expect("legacy runs");
                assert_eq!(legacy.exit_code, expect, "legacy rep={rep} pool={pool}");
            }
        }
    }

    /// Pool-routed regions and scoped spawn-per-region regions are
    /// observably identical on a nested-region program (exit, output,
    /// counters modulo memo), across engines.
    #[test]
    fn pooled_regions_match_scoped_regions_nested() {
        let src = "\
int main() {
    int acc = 0;
    int* a = (int*) malloc(64 * sizeof(int));
#pragma omp parallel for schedule(dynamic,2)
    for (int i = 0; i < 8; i++) {
#pragma omp parallel for schedule(static)
        for (int j = 0; j < 8; j++) {
            a[i * 8 + j] = i * 100 + j * j;
        }
    }
    for (int k = 0; k < 64; k++) acc += a[k] % 17;
    printf(\"acc=%d\\n\", acc);
    return acc % 113;
}
";
        let prog = program(src);
        for threads in [1usize, 4] {
            let pooled = prog
                .run(InterpOptions {
                    threads,
                    pool: true,
                    ..Default::default()
                })
                .expect("pooled run");
            let scoped = prog
                .run(InterpOptions {
                    threads,
                    pool: false,
                    ..Default::default()
                })
                .expect("scoped run");
            assert_eq!(pooled.exit_code, scoped.exit_code, "threads={threads}");
            assert_eq!(pooled.output, scoped.output, "threads={threads}");
            assert_eq!(
                pooled.counters.without_memo(),
                scoped.counters.without_memo(),
                "threads={threads}"
            );
        }
    }

    const FIB_LOCALS: &str = "\
pure int fib(int n) { if (n < 2) return n; int a = fib(n - 1); int b = fib(n - 2); return a + b; }
int main() { int l = fib(16); int r = fib(15); return (l + r) % 251; }
";

    /// Futures on vs off, VM vs resolved vs legacy: identical exit code
    /// and — with memo off, where op totals are deterministic — identical
    /// executed-op counters modulo the memo/futures bookkeeping.
    #[test]
    fn futures_match_sequential_on_tree_recursion() {
        let prog = program_with_pure(FIB_LOCALS, &["fib"]);
        assert_eq!(prog.resolved().spawn_sites().len(), 2);
        let opt = |threads: usize, futures: bool| InterpOptions {
            threads,
            futures,
            memo: false,
            ..Default::default()
        };
        let seq = prog.run(opt(1, false)).expect("sequential");
        let legacy = prog.run_legacy(opt(1, false)).expect("legacy");
        assert_eq!(seq.exit_code, (987 + 610) % 251);
        assert_eq!(seq.counters.without_memo(), legacy.counters.without_memo());
        for threads in [2usize, 4] {
            let fut = prog.run(opt(threads, true)).expect("futures VM");
            assert_eq!(fut.exit_code, seq.exit_code, "threads={threads}");
            assert_eq!(
                fut.counters.without_memo(),
                seq.counters.without_memo(),
                "threads={threads}"
            );
            assert!(
                fut.counters.futures_spawned + fut.counters.futures_inlined > 0,
                "futures path must engage: {:?}",
                fut.counters
            );
            let res = prog
                .run(InterpOptions {
                    engine: Engine::Resolved,
                    ..opt(threads, true)
                })
                .expect("futures resolved");
            assert_eq!(res.exit_code, seq.exit_code, "threads={threads}");
            assert_eq!(
                res.counters.without_memo(),
                seq.counters.without_memo(),
                "threads={threads}"
            );
        }
    }

    /// With memo on, a hit must never spawn: fib's memoized run sees at
    /// most one executed body per distinct argument, futures or not.
    #[test]
    fn memo_hit_never_spawns() {
        let prog = program_with_pure(FIB_LOCALS, &["fib"]);
        let r = prog
            .run(InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("memoized futures run");
        assert_eq!(r.exit_code, (987 + 610) % 251);
        // Every distinct argument misses once somewhere; futures and
        // shards may split the work, but the spawn count can never
        // exceed the distinct-argument count (0..=16 plus the two main
        // calls) — a hit resolves at the spawn site without a task.
        assert!(
            r.counters.futures_spawned <= r.counters.memo_misses,
            "{:?}",
            r.counters
        );
    }

    /// Futures spawned *inside* a pool-routed parallel region: the
    /// worker's await helps instead of deadlocking the finite pool.
    #[test]
    fn futures_inside_parallel_regions_complete_and_match() {
        let src = "\
pure int tree(int n, int s) {
    if (n < 2) return n + s % 3;
    int a = tree(n - 1, s);
    int b = tree(n - 2, s + 1);
    return a + b;
}
int main() {
    int* out = (int*) malloc(24 * sizeof(int));
#pragma omp parallel for schedule(dynamic,2)
    for (int i = 0; i < 24; i++) out[i] = tree(8 + i % 4, i);
    int acc = 0;
    for (int i = 0; i < 24; i++) acc += out[i];
    printf(\"acc=%d\\n\", acc);
    return acc % 113;
}
";
        let prog = program_with_pure(src, &["tree"]);
        assert!(!prog.resolved().spawn_sites().is_empty());
        let opt = |futures: bool| InterpOptions {
            threads: 4,
            futures,
            memo: false,
            ..Default::default()
        };
        let base = prog.run(opt(false)).expect("no-futures");
        let fut = prog.run(opt(true)).expect("futures");
        assert_eq!(fut.exit_code, base.exit_code);
        assert_eq!(fut.output, base.output);
        assert_eq!(fut.counters.without_memo(), base.counters.without_memo());
        let legacy = prog.run_legacy(opt(true)).expect("legacy");
        assert_eq!(legacy.exit_code, base.exit_code);
        assert_eq!(legacy.output, base.output);
    }

    /// A runtime error inside a spawned pure call surfaces at the join
    /// as a `RuntimeError` (not a hang, not a panic), on both engines.
    #[test]
    fn future_error_propagates_at_await() {
        let src = "\
pure int bad(int n) {
    int acc = 0;
    for (int i = 0; i < 4; i++) acc += i / (n - n);
    return acc;
}
int main() { int a = bad(7); int b = bad(9); return a + b; }
";
        let prog = program_with_pure(src, &["bad"]);
        assert_eq!(prog.resolved().spawn_sites(), vec![("main", 1)]);
        for engine in [Engine::Bytecode, Engine::Resolved] {
            for futures in [false, true] {
                let err = prog
                    .run(InterpOptions {
                        threads: 4,
                        engine,
                        futures,
                        ..Default::default()
                    })
                    .expect_err("division by zero must error");
                assert!(
                    err.message.contains("division by zero"),
                    "{engine:?} futures={futures}: {}",
                    err.message
                );
            }
        }
    }

    /// A runtime error raised inside a pool-routed region surfaces as a
    /// `RuntimeError` (not a hang, not a panic) — and the shared pool
    /// keeps working afterwards.
    #[test]
    fn pooled_region_error_propagates() {
        let src = "\
int main() {
    int* a = (int*) malloc(4 * sizeof(int));
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < 16; i++) {
        a[i] = i;
    }
    return 0;
}
";
        let prog = program(src);
        let err = prog
            .run(InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect_err("out-of-bounds store must error");
        assert!(
            err.message.contains("out of bounds"),
            "unexpected error: {}",
            err.message
        );
        // The pool survives a failed region: a healthy program still runs.
        let ok = program("int main() { return 7; }")
            .run(InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("pool still healthy");
        assert_eq!(ok.exit_code, 7);
    }
}
