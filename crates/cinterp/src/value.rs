//! Runtime values and the shared memory model of the interpreter.
//!
//! Memory is slot-based: every scalar occupies one [`Scalar`] slot and
//! `sizeof(T) == 8` for every scalar type, so `malloc(3 * sizeof(int))`
//! yields three slots and pointer arithmetic is element-wise. This keeps
//! the machine model uniform (LP64-slot) without altering any program the
//! evaluation uses.
//!
//! Allocations are append-only and individually `Sync`: verified-pure
//! parallel loops write *disjoint* slots (that is exactly what the purity
//! pass + dependence analysis guarantee), so slot accesses go through
//! `UnsafeCell` without per-access locking. A race-check mode in the
//! interpreter validates disjointness on small runs before anything is
//! executed in parallel.

use parking_lot::RwLock;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A typed pointer: allocation id + element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ptr {
    pub alloc: u32,
    pub index: i64,
}

impl Ptr {
    pub fn offset(self, delta: i64) -> Ptr {
        Ptr {
            alloc: self.alloc,
            index: self.index + delta,
        }
    }
}

/// One runtime scalar slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scalar {
    #[default]
    Uninit,
    I(i64),
    F(f64),
    P(Ptr),
    Null,
}

impl Scalar {
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I(v) => v,
            Scalar::F(v) => v as i64,
            Scalar::Null => 0,
            Scalar::Uninit => 0,
            Scalar::P(_) => 1, // pointers are truthy
        }
    }

    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I(v) => v as f64,
            Scalar::F(v) => v,
            _ => 0.0,
        }
    }

    pub fn truthy(self) -> bool {
        match self {
            Scalar::I(v) => v != 0,
            Scalar::F(v) => v != 0.0,
            Scalar::P(_) => true,
            Scalar::Null | Scalar::Uninit => false,
        }
    }

    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F(_))
    }
}

/// One allocation: a fixed-size vector of slots with interior mutability.
pub struct Allocation {
    slots: Vec<UnsafeCell<Scalar>>,
    freed: AtomicU64,
}

// SAFETY: concurrent access to *distinct* slots is sound; access to the
// same slot from multiple threads without synchronization is excluded by
// the purity/dependence verification (and validated by race-check mode).
unsafe impl Sync for Allocation {}
unsafe impl Send for Allocation {}

impl Allocation {
    fn new(len: usize) -> Self {
        Allocation {
            slots: (0..len).map(|_| UnsafeCell::new(Scalar::Uninit)).collect(),
            freed: AtomicU64::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn is_freed(&self) -> bool {
        self.freed.load(Ordering::Acquire) != 0
    }
}

/// The program heap + statics. Cloning the handle shares the memory.
#[derive(Clone)]
pub struct Memory {
    allocs: Arc<RwLock<Vec<Arc<Allocation>>>>,
}

/// Errors surfaced by memory operations (out-of-bounds, use-after-free…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError(pub String);

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory error: {}", self.0)
    }
}

impl Memory {
    pub fn new() -> Self {
        Memory {
            allocs: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Allocate `len` slots; returns a pointer to element 0.
    pub fn alloc(&self, len: usize) -> Ptr {
        let mut g = self.allocs.write();
        let id = g.len() as u32;
        g.push(Arc::new(Allocation::new(len.max(1))));
        Ptr {
            alloc: id,
            index: 0,
        }
    }

    /// Mark an allocation freed (slots become inaccessible).
    pub fn free(&self, p: Ptr) -> Result<(), MemError> {
        let g = self.allocs.read();
        let a = g
            .get(p.alloc as usize)
            .ok_or_else(|| MemError(format!("free of invalid allocation {}", p.alloc)))?;
        if p.index != 0 {
            return Err(MemError("free of interior pointer".into()));
        }
        if a.freed.swap(1, Ordering::AcqRel) != 0 {
            return Err(MemError("double free".into()));
        }
        Ok(())
    }

    fn with_alloc<R>(
        &self,
        p: Ptr,
        f: impl FnOnce(&Allocation) -> Result<R, MemError>,
    ) -> Result<R, MemError> {
        let g = self.allocs.read();
        let a = g
            .get(p.alloc as usize)
            .ok_or_else(|| MemError(format!("invalid allocation {}", p.alloc)))?;
        if a.is_freed() {
            return Err(MemError("use after free".into()));
        }
        f(a)
    }

    pub fn load(&self, p: Ptr) -> Result<Scalar, MemError> {
        self.with_alloc(p, |a| {
            let idx = usize::try_from(p.index)
                .map_err(|_| MemError(format!("negative index {}", p.index)))?;
            let cell = a.slots.get(idx).ok_or_else(|| {
                MemError(format!(
                    "load out of bounds at index {idx} (len {})",
                    a.len()
                ))
            })?;
            // SAFETY: see `Allocation`'s Sync justification.
            Ok(unsafe { *cell.get() })
        })
    }

    pub fn store(&self, p: Ptr, v: Scalar) -> Result<(), MemError> {
        self.with_alloc(p, |a| {
            let idx = usize::try_from(p.index)
                .map_err(|_| MemError(format!("negative index {}", p.index)))?;
            let cell = a.slots.get(idx).ok_or_else(|| {
                MemError(format!(
                    "store out of bounds at index {idx} (len {})",
                    a.len()
                ))
            })?;
            // SAFETY: see `Allocation`'s Sync justification.
            unsafe { *cell.get() = v };
            Ok(())
        })
    }

    pub fn alloc_len(&self, p: Ptr) -> Option<usize> {
        self.allocs.read().get(p.alloc as usize).map(|a| a.len())
    }

    pub fn allocation_count(&self) -> usize {
        self.allocs.read().len()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

/// Relaxed atomic counters for executed-operation accounting (the paper's
/// perf analysis: 47.5 G vs 87.8 G instructions, Sect. 4.3.2).
#[derive(Debug, Default)]
pub struct Counters {
    pub flops: AtomicU64,
    pub int_ops: AtomicU64,
    pub loads: AtomicU64,
    pub stores: AtomicU64,
    pub calls: AtomicU64,
    pub branches: AtomicU64,
    /// Pure-call memoization cache hits (resolved engine only).
    pub memo_hits: AtomicU64,
    /// Pure-call memoization cache misses (consults that executed).
    pub memo_misses: AtomicU64,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
            + self.int_ops.load(Ordering::Relaxed)
            + self.loads.load(Ordering::Relaxed)
            + self.stores.load(Ordering::Relaxed)
            + self.calls.load(Ordering::Relaxed)
            + self.branches.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            flops: self.flops.load(Ordering::Relaxed),
            int_ops: self.int_ops.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            branches: self.branches.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    pub flops: u64,
    pub int_ops: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
    pub branches: u64,
    /// Pure-call memo cache hits/misses (zero on the legacy engine).
    pub memo_hits: u64,
    pub memo_misses: u64,
}

impl CounterSnapshot {
    /// Executed-operation total; memo statistics are bookkeeping, not
    /// executed operations, so they are excluded.
    pub fn total(&self) -> u64 {
        self.flops + self.int_ops + self.loads + self.stores + self.calls + self.branches
    }

    /// Copy with the memo statistics zeroed — the "counters modulo cache
    /// hits" projection the differential tests compare on.
    pub fn without_memo(&self) -> CounterSnapshot {
        CounterSnapshot {
            memo_hits: 0,
            memo_misses: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_round_trip() {
        let m = Memory::new();
        let p = m.alloc(4);
        m.store(p, Scalar::I(42)).unwrap();
        m.store(p.offset(3), Scalar::F(2.5)).unwrap();
        assert_eq!(m.load(p).unwrap(), Scalar::I(42));
        assert_eq!(m.load(p.offset(3)).unwrap(), Scalar::F(2.5));
        assert_eq!(m.load(p.offset(1)).unwrap(), Scalar::Uninit);
    }

    #[test]
    fn out_of_bounds_is_error_not_ub() {
        let m = Memory::new();
        let p = m.alloc(2);
        assert!(m.load(p.offset(2)).is_err());
        assert!(m.store(p.offset(-1), Scalar::I(0)).is_err());
    }

    #[test]
    fn use_after_free_detected() {
        let m = Memory::new();
        let p = m.alloc(2);
        m.free(p).unwrap();
        assert!(m.load(p).is_err());
        assert!(m.free(p).is_err(), "double free must be detected");
    }

    #[test]
    fn interior_free_rejected() {
        let m = Memory::new();
        let p = m.alloc(4);
        assert!(m.free(p.offset(1)).is_err());
    }

    #[test]
    fn shared_across_clones() {
        let m = Memory::new();
        let m2 = m.clone();
        let p = m.alloc(1);
        m2.store(p, Scalar::I(7)).unwrap();
        assert_eq!(m.load(p).unwrap(), Scalar::I(7));
    }

    #[test]
    fn parallel_disjoint_writes() {
        let m = Memory::new();
        let p = m.alloc(1024);
        machine::parallel_for(1024, 8, machine::OmpSchedule::Dynamic(16), |i| {
            m.store(p.offset(i as i64), Scalar::I(i as i64 * 2))
                .unwrap();
        });
        for i in 0..1024 {
            assert_eq!(m.load(p.offset(i)).unwrap(), Scalar::I(i * 2));
        }
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::I(3).as_f64(), 3.0);
        assert_eq!(Scalar::F(2.9).as_i64(), 2);
        assert!(Scalar::I(1).truthy());
        assert!(!Scalar::I(0).truthy());
        assert!(!Scalar::Null.truthy());
        assert!(Scalar::P(Ptr::default()).truthy());
        assert!(!Scalar::Uninit.truthy());
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        Counters::bump(&c.flops);
        Counters::bump(&c.flops);
        Counters::bump(&c.stores);
        let s = c.snapshot();
        assert_eq!(s.flops, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.total(), 3);
    }
}
