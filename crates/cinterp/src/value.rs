//! Runtime values and the shared memory model of the interpreter.
//!
//! Memory is slot-based: every scalar occupies one [`Scalar`] slot and
//! `sizeof(T) == 8` for every scalar type, so `malloc(3 * sizeof(int))`
//! yields three slots and pointer arithmetic is element-wise. This keeps
//! the machine model uniform (LP64-slot) without altering any program the
//! evaluation uses.
//!
//! Allocations are append-only and individually `Sync`: verified-pure
//! parallel loops write *disjoint* slots (that is exactly what the purity
//! pass + dependence analysis guarantee), so slot accesses go through
//! `UnsafeCell` without per-access locking. A race-check mode in the
//! interpreter validates disjointness on small runs before anything is
//! executed in parallel.
//!
//! The allocation *table* itself is a lock-free segmented array
//! ([`AppendTable`]): `load`/`store`/`with_alloc` resolve an allocation
//! id with three `Acquire` loads and **zero** lock acquisitions, while
//! `alloc` serializes writers on a mutex that readers never touch. See
//! the `AppendTable` docs for the publication protocol and its
//! invariants.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A typed pointer: allocation id + element index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ptr {
    pub alloc: u32,
    pub index: i64,
}

impl Ptr {
    pub fn offset(self, delta: i64) -> Ptr {
        Ptr {
            alloc: self.alloc,
            index: self.index + delta,
        }
    }
}

/// One runtime scalar slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Scalar {
    #[default]
    Uninit,
    I(i64),
    F(f64),
    P(Ptr),
    Null,
}

impl Scalar {
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I(v) => v,
            Scalar::F(v) => v as i64,
            Scalar::Null => 0,
            Scalar::Uninit => 0,
            Scalar::P(_) => 1, // pointers are truthy
        }
    }

    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I(v) => v as f64,
            Scalar::F(v) => v,
            _ => 0.0,
        }
    }

    pub fn truthy(self) -> bool {
        match self {
            Scalar::I(v) => v != 0,
            Scalar::F(v) => v != 0.0,
            Scalar::P(_) => true,
            Scalar::Null | Scalar::Uninit => false,
        }
    }

    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F(_))
    }
}

/// One allocation: a fixed-size vector of slots with interior mutability.
pub struct Allocation {
    slots: Vec<UnsafeCell<Scalar>>,
    freed: AtomicU64,
}

// SAFETY: concurrent access to *distinct* slots is sound; access to the
// same slot from multiple threads without synchronization is excluded by
// the purity/dependence verification (and validated by race-check mode).
unsafe impl Sync for Allocation {}
unsafe impl Send for Allocation {}

impl Allocation {
    fn new(len: usize) -> Self {
        Allocation {
            slots: (0..len).map(|_| UnsafeCell::new(Scalar::Uninit)).collect(),
            freed: AtomicU64::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn is_freed(&self) -> bool {
        self.freed.load(Ordering::Acquire) != 0
    }
}

// ---------------------------------------------------------------------------
// Lock-free append-only table (the heap's allocation index + global spill)
// ---------------------------------------------------------------------------

/// Number of segments in an [`AppendTable`]; segment `k` holds
/// `SEG0_CAP << k` entries, so total capacity is `SEG0_CAP * (2^26 - 1)`
/// = 4 294 967 232 — every index fits a `u32` with no wraparound.
const SEG_COUNT: usize = 26;
const SEG0_CAP: usize = 64;

/// Capacity of an [`AppendTable`] (and therefore the maximum number of
/// live-or-freed allocations a [`Memory`] can index).
const TABLE_CAPACITY: usize = SEG0_CAP * ((1 << SEG_COUNT) - 1);

/// Segment index and in-segment offset of entry `i`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let bucket = i / SEG0_CAP + 1;
    let k = (usize::BITS - 1 - bucket.leading_zeros()) as usize;
    (k, i - SEG0_CAP * ((1 << k) - 1))
}

/// A concurrent append-only table with **lock-free reads**: a segmented
/// pointer array whose segments are allocated on demand and never move,
/// so an entry's address is stable for the table's lifetime and `get`
/// needs no lock, no reference-count traffic and no retry loop.
///
/// Publication protocol (the scheme's entire correctness argument):
///
/// * writers are serialized by `writer`; a push boxes the value, stores
///   the pointer into its slot (`Release`), then bumps the published
///   `len` (`Release`);
/// * readers bounds-check against `len` (`Acquire`) **first** — any
///   index below it has its segment pointer and slot pointer fully
///   published by the corresponding `Release` stores;
/// * entries are immutable and never removed (the interpreter's
///   `free` only flips a flag *inside* an [`Allocation`]), so a `&T`
///   handed out by `get` stays valid until the table is dropped.
pub(crate) struct AppendTable<T> {
    /// Pointer to the first slot of segment `k` (null until allocated).
    segs: [AtomicPtr<AtomicPtr<T>>; SEG_COUNT],
    /// Published entry count; entries `0..len` are fully visible.
    len: AtomicUsize,
    /// Serializes `push` (readers never touch it).
    writer: Mutex<()>,
}

// SAFETY: shared access is mediated by the atomics above; `T` itself is
// only shared by reference.
unsafe impl<T: Send + Sync> Send for AppendTable<T> {}
unsafe impl<T: Send + Sync> Sync for AppendTable<T> {}

impl<T> AppendTable<T> {
    pub(crate) fn new() -> Self {
        AppendTable {
            segs: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Append `value`; returns its index, or `None` when the table is
    /// full (the checked id conversion — callers turn this into an error
    /// instead of silently aliasing entry 0).
    pub(crate) fn push(&self, value: T) -> Option<usize> {
        let _g = self.writer.lock();
        let n = self.len.load(Ordering::Relaxed);
        if n >= TABLE_CAPACITY {
            return None;
        }
        let (k, off) = locate(n);
        let mut seg = self.segs[k].load(Ordering::Relaxed);
        if seg.is_null() {
            let fresh: Box<[AtomicPtr<T>]> = (0..SEG0_CAP << k)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            seg = Box::into_raw(fresh) as *mut AtomicPtr<T>;
            self.segs[k].store(seg, Ordering::Release);
        }
        let boxed = Box::into_raw(Box::new(value));
        // SAFETY: `off < SEG0_CAP << k` by construction of `locate`.
        unsafe { (*seg.add(off)).store(boxed, Ordering::Release) };
        self.len.store(n + 1, Ordering::Release);
        Some(n)
    }

    /// Lock-free entry lookup.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len.load(Ordering::Acquire) {
            return None;
        }
        let (k, off) = locate(i);
        let seg = self.segs[k].load(Ordering::Acquire);
        debug_assert!(!seg.is_null(), "published index without a segment");
        // SAFETY: `i < len` ⇒ the slot's pointer was published before
        // `len` (Release/Acquire pairing on `len`), and entries are
        // never freed before the table itself drops.
        unsafe { Some(&*(*seg.add(off)).load(Ordering::Acquire)) }
    }
}

impl<T> Drop for AppendTable<T> {
    fn drop(&mut self) {
        let n = *self.len.get_mut();
        for k in 0..SEG_COUNT {
            let seg = *self.segs[k].get_mut();
            if seg.is_null() {
                continue;
            }
            let cap = SEG0_CAP << k;
            let start = SEG0_CAP * ((1 << k) - 1);
            // SAFETY: reconstructing exactly the boxed slice `push`
            // leaked, and the boxed entries published below `len`.
            unsafe {
                let slice = std::slice::from_raw_parts_mut(seg, cap);
                for (j, slot) in slice.iter_mut().enumerate() {
                    if start + j < n {
                        drop(Box::from_raw(*slot.get_mut()));
                    }
                }
                drop(Box::from_raw(slice as *mut [AtomicPtr<T>]));
            }
        }
    }
}

/// Shared byte accounting behind a [`Memory`] cap: every allocation
/// charges its slot bytes against one atomic total shared by the whole
/// execution (parallel regions and futures included). The heap is
/// retire-don't-free (`free` flips a flag, the [`AppendTable`] reclaims
/// nothing), so the total is **cumulative**: it is exactly the physical
/// footprint an alloc bomb grows, and it is never decremented.
#[derive(Debug)]
struct MemBudget {
    used: AtomicU64,
    cap: u64,
}

/// The program heap + statics. Cloning the handle shares the memory
/// (and its byte budget, when one is configured).
#[derive(Clone)]
pub struct Memory {
    allocs: Arc<AppendTable<Allocation>>,
    budget: Option<Arc<MemBudget>>,
}

/// Errors surfaced by memory operations (out-of-bounds, use-after-free…).
/// `limit` marks the configured memory ceiling firing — a governable
/// resource trap ([`crate::Trap::MemoryLimit`]) rather than a program
/// bug — so engines can attach the trap kind when converting to a
/// runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemError {
    pub message: String,
    pub limit: bool,
}

impl MemError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        MemError {
            message: message.into(),
            limit: false,
        }
    }

    pub(crate) fn at_limit(message: String) -> Self {
        MemError {
            message,
            limit: true,
        }
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory error: {}", self.message)
    }
}

impl Memory {
    pub fn new() -> Self {
        Memory {
            allocs: Arc::new(AppendTable::new()),
            budget: None,
        }
    }

    /// A heap whose cumulative allocation footprint is capped at
    /// `max_bytes` (`None` = unlimited, identical to [`Memory::new`]).
    pub fn with_limit(max_bytes: Option<u64>) -> Self {
        Memory {
            allocs: Arc::new(AppendTable::new()),
            budget: max_bytes.map(|cap| {
                Arc::new(MemBudget {
                    used: AtomicU64::new(0),
                    cap,
                })
            }),
        }
    }

    /// Bytes charged so far, when a cap is configured.
    pub fn used_bytes(&self) -> Option<u64> {
        self.budget.as_ref().map(|b| b.used.load(Ordering::Relaxed))
    }

    /// The configured byte ceiling, if any.
    pub fn limit_bytes(&self) -> Option<u64> {
        self.budget.as_ref().map(|b| b.cap)
    }

    /// Allocate `len` slots; returns a pointer to element 0. Errors when
    /// the allocation-id space is exhausted — the id is a **checked**
    /// conversion, so a pathological program gets a diagnostic instead of
    /// a pointer silently aliasing allocation 0 — or when the configured
    /// byte ceiling would be exceeded (`MemError::limit`).
    pub fn try_alloc(&self, len: usize) -> Result<Ptr, MemError> {
        let slots = len.max(1);
        #[cfg(feature = "fault-inject")]
        if machine::fault::should_fail_alloc() {
            return Err(MemError::at_limit(format!(
                "memory limit exceeded: injected allocation failure ({} bytes requested)",
                (slots as u64).saturating_mul(8)
            )));
        }
        if let Some(b) = &self.budget {
            let bytes = (slots as u64).saturating_mul(8);
            // Optimistic charge; on overshoot the charge is rolled back
            // so concurrent allocations racing the ceiling do not eat
            // budget they never got.
            let before = b.used.fetch_add(bytes, Ordering::Relaxed);
            if before.saturating_add(bytes) > b.cap {
                b.used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(MemError::at_limit(format!(
                    "memory limit exceeded: requested {bytes} bytes with {before} of {} in use",
                    b.cap
                )));
            }
        }
        let id = self.allocs.push(Allocation::new(slots)).ok_or_else(|| {
            MemError::new(format!(
                "allocation id space exhausted ({TABLE_CAPACITY} allocations)"
            ))
        })?;
        Ok(Ptr {
            alloc: id as u32,
            index: 0,
        })
    }

    /// [`Memory::try_alloc`], panicking on id-space exhaustion. Every
    /// allocation costs at least one interpreter step, and the table
    /// holds > 4 × 10⁹ entries, so the panic is unreachable under the
    /// interpreter's step limit; it exists so the exhaustion case is loud
    /// rather than an aliased pointer.
    pub fn alloc(&self, len: usize) -> Ptr {
        self.try_alloc(len)
            .expect("allocation id space exhausted (u32 ids)")
    }

    /// Mark an allocation freed (slots become inaccessible).
    pub fn free(&self, p: Ptr) -> Result<(), MemError> {
        let a = self
            .allocs
            .get(p.alloc as usize)
            .ok_or_else(|| MemError::new(format!("free of invalid allocation {}", p.alloc)))?;
        if p.index != 0 {
            return Err(MemError::new("free of interior pointer"));
        }
        if a.freed.swap(1, Ordering::AcqRel) != 0 {
            return Err(MemError::new("double free"));
        }
        Ok(())
    }

    /// Resolve `p.alloc` and run `f` — the hot path of every heap access.
    /// Zero locks: the id resolves through [`AppendTable::get`] and the
    /// freed flag is an atomic load.
    #[inline]
    fn with_alloc<R>(
        &self,
        p: Ptr,
        f: impl FnOnce(&Allocation) -> Result<R, MemError>,
    ) -> Result<R, MemError> {
        let a = self
            .allocs
            .get(p.alloc as usize)
            .ok_or_else(|| MemError::new(format!("invalid allocation {}", p.alloc)))?;
        if a.is_freed() {
            return Err(MemError::new("use after free"));
        }
        f(a)
    }

    pub fn load(&self, p: Ptr) -> Result<Scalar, MemError> {
        self.with_alloc(p, |a| {
            let idx = usize::try_from(p.index)
                .map_err(|_| MemError::new(format!("negative index {}", p.index)))?;
            let cell = a.slots.get(idx).ok_or_else(|| {
                MemError::new(format!(
                    "load out of bounds at index {idx} (len {})",
                    a.len()
                ))
            })?;
            // SAFETY: see `Allocation`'s Sync justification.
            Ok(unsafe { *cell.get() })
        })
    }

    pub fn store(&self, p: Ptr, v: Scalar) -> Result<(), MemError> {
        self.with_alloc(p, |a| {
            let idx = usize::try_from(p.index)
                .map_err(|_| MemError::new(format!("negative index {}", p.index)))?;
            let cell = a.slots.get(idx).ok_or_else(|| {
                MemError::new(format!(
                    "store out of bounds at index {idx} (len {})",
                    a.len()
                ))
            })?;
            // SAFETY: see `Allocation`'s Sync justification.
            unsafe { *cell.get() = v };
            Ok(())
        })
    }

    pub fn alloc_len(&self, p: Ptr) -> Option<usize> {
        self.allocs.get(p.alloc as usize).map(|a| a.len())
    }

    pub fn allocation_count(&self) -> usize {
        self.allocs.len()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// NaN-boxed scalars (the bytecode VM's value representation)
// ---------------------------------------------------------------------------

/// NaN-box tag prefixes (top 16 bits of the packed word).
///
/// All tags live inside the IEEE-754 negative quiet-NaN space
/// (`0xFFF9..=0xFFFD` prefixes): every bit pattern whose top 16 bits fall
/// *outside* that window is a plain `f64`. The two NaN patterns hardware
/// actually produces — the positive and negative canonical quiet NaNs,
/// `0x7FF8…` and `0xFFF8…` — stay representable as raw floats; the tag
/// window only occupies payload-carrying negative NaNs that no float
/// operation in the interpreter can generate.
const TAG_INT: u64 = 0xFFF9;
const TAG_PTR: u64 = 0xFFFA;
const TAG_SPILL: u64 = 0xFFFB;
const TAG_NULL: u64 = 0xFFFC;
const TAG_UNINIT: u64 = 0xFFFD;

const PAYLOAD_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

/// Overflow side-pool for [`Scalar`]s that do not fit a packed word
/// inline: integers beyond 48 bits, pointers with huge alloc ids or
/// offsets, and float bit patterns that collide with the tag window.
/// A [`Packed`] spill word carries its entry's index.
///
/// The pool is **single-owner** (one per VM instance, `RefCell` inside —
/// no locking): packed words never travel between VMs, so a spill index
/// is only ever resolved against the pool that produced it. A parallel
/// region hands its frame snapshot to children by cloning the parent's
/// entries as an immutable *prefix* of each child pool (`floor` in the
/// VM), below which children never truncate or compact.
///
/// The pool's existence is what makes the `pack ∘ unpack` round trip
/// *bit-exact for every `Scalar`*, not just for the inline range; the VM
/// bounds its growth by compacting live entries (the live set is exactly
/// the spill-tagged words in its frame arena and operand stack) at
/// statement boundaries.
#[derive(Default)]
pub struct SpillPool {
    entries: std::cell::RefCell<Vec<Scalar>>,
}

impl SpillPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool whose initial entries are a snapshot of another pool
    /// (parallel-region prefix handoff).
    pub fn with_entries(entries: Vec<Scalar>) -> Self {
        SpillPool {
            entries: std::cell::RefCell::new(entries),
        }
    }

    fn spill(&self, v: Scalar) -> Packed {
        let mut g = self.entries.borrow_mut();
        let idx = g.len() as u64;
        assert!(idx <= PAYLOAD_MASK, "NaN-box spill pool exhausted");
        g.push(v);
        Packed((TAG_SPILL << 48) | idx)
    }

    fn get(&self, idx: u64) -> Scalar {
        self.entries.borrow()[idx as usize]
    }

    /// Direct entry access (compaction).
    pub(crate) fn get_entry(&self, idx: usize) -> Scalar {
        self.entries.borrow()[idx]
    }

    /// Number of spilled values (0 on non-overflowing workloads).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Drop every entry at or above `n` (per-iteration reset of a
    /// parallel child's scratch region).
    pub fn truncate(&self, n: usize) {
        self.entries.borrow_mut().truncate(n);
    }

    /// Snapshot of all entries (region prefix handoff).
    pub fn entries_snapshot(&self) -> Vec<Scalar> {
        self.entries.borrow().clone()
    }

    /// Clone of the first `n` entries only (compaction keeps the
    /// inherited prefix without copying the garbage above it).
    pub(crate) fn prefix(&self, n: usize) -> Vec<Scalar> {
        self.entries.borrow()[..n].to_vec()
    }

    /// Replace the entries wholesale (compaction).
    pub(crate) fn replace_entries(&self, entries: Vec<Scalar>) {
        *self.entries.borrow_mut() = entries;
    }
}

/// A [`Scalar`] NaN-boxed into a single `u64` word.
///
/// | pattern (top 16 bits) | meaning                                     |
/// |-----------------------|---------------------------------------------|
/// | anything ∉ `FFF9–FFFD`| `F`: the word is the raw `f64` bit pattern  |
/// | `FFF9`                | `I`: 48-bit sign-extended integer payload   |
/// | `FFFA`                | `P`: 24-bit alloc id + 24-bit signed index  |
/// | `FFFB`                | spill: payload indexes the [`SpillPool`]    |
/// | `FFFC`                | `Null`                                      |
/// | `FFFD`                | `Uninit`                                    |
///
/// Frames and operand stacks of the bytecode VM are `Vec<Packed>`: half
/// the size of a `Vec<Scalar>` frame, and a parallel region's private
/// frame setup becomes a flat `u64` memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packed(u64);

impl Packed {
    pub const UNINIT: Packed = Packed(TAG_UNINIT << 48);
    pub const NULL: Packed = Packed(TAG_NULL << 48);
    pub const ZERO: Packed = Packed(TAG_INT << 48);

    /// Raw word (tests / diagnostics).
    pub fn bits(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn pack(v: Scalar, pool: &SpillPool) -> Packed {
        match v {
            Scalar::I(i) => Self::pack_i64(i, pool),
            Scalar::F(f) => Self::pack_f64(f, pool),
            Scalar::P(p) => Self::pack_ptr(p, pool),
            Scalar::Null => Packed::NULL,
            Scalar::Uninit => Packed::UNINIT,
        }
    }

    #[inline]
    pub fn pack_i64(i: i64, pool: &SpillPool) -> Packed {
        match Self::try_inline(Scalar::I(i)) {
            Some(p) => p,
            None => pool.spill(Scalar::I(i)),
        }
    }

    #[inline]
    pub fn pack_f64(f: f64, pool: &SpillPool) -> Packed {
        match Self::try_inline(Scalar::F(f)) {
            Some(p) => p,
            // A NaN bit pattern colliding with the tag window: unreachable
            // through arithmetic, but representable via the fallback.
            None => pool.spill(Scalar::F(f)),
        }
    }

    #[inline]
    pub fn pack_ptr(p: Ptr, pool: &SpillPool) -> Packed {
        match Self::try_inline(Scalar::P(p)) {
            Some(w) => w,
            None => pool.spill(Scalar::P(p)),
        }
    }

    #[inline]
    pub fn unpack(self, pool: &SpillPool) -> Scalar {
        match self.0 >> 48 {
            TAG_INT => Scalar::I(((self.0 << 16) as i64) >> 16),
            TAG_PTR => Scalar::P(Ptr {
                alloc: ((self.0 >> 24) & 0xFF_FFFF) as u32,
                index: ((self.0 << 40) as i64) >> 40,
            }),
            TAG_SPILL => pool.get(self.0 & PAYLOAD_MASK),
            TAG_NULL => Scalar::Null,
            TAG_UNINIT => Scalar::Uninit,
            _ => Scalar::F(f64::from_bits(self.0)),
        }
    }

    /// Inline integer payload, if this word is an inline-tagged int.
    /// (Spilled big integers return `None` and take the general path.)
    #[inline]
    pub fn as_inline_int(self) -> Option<i64> {
        if self.0 >> 48 == TAG_INT {
            Some(((self.0 << 16) as i64) >> 16)
        } else {
            None
        }
    }

    /// Inline pointer payload, if this word is an inline-tagged pointer.
    #[inline]
    pub fn as_inline_ptr(self) -> Option<Ptr> {
        if self.0 >> 48 == TAG_PTR {
            Some(Ptr {
                alloc: ((self.0 >> 24) & 0xFF_FFFF) as u32,
                index: ((self.0 << 40) as i64) >> 40,
            })
        } else {
            None
        }
    }

    /// True when the word is a raw (untagged) float.
    #[inline]
    pub fn is_inline_float(self) -> bool {
        !(TAG_INT..=TAG_UNINIT).contains(&(self.0 >> 48))
    }

    /// Index into the spill pool, when this word is a spill reference
    /// (compaction support).
    #[inline]
    pub(crate) fn spill_index(self) -> Option<usize> {
        if self.0 >> 48 == TAG_SPILL {
            Some((self.0 & PAYLOAD_MASK) as usize)
        } else {
            None
        }
    }

    /// Build a spill reference to `idx` (compaction support).
    #[inline]
    pub(crate) fn from_spill_index(idx: usize) -> Packed {
        debug_assert!(idx as u64 <= PAYLOAD_MASK);
        Packed((TAG_SPILL << 48) | idx as u64)
    }

    /// Pack `v` if it fits a word without a spill pool; `None` when the
    /// value needs overflow storage. This is the **single home** of the
    /// inline-fit predicates (48-bit int range, NaN tag window, 24/24-bit
    /// pointer payload): `pack_i64`/`pack_f64`/`pack_ptr` route through
    /// it and only add the per-VM [`SpillPool`] fallback, while
    /// [`GlobalTable`] pairs it with its *shared* overflow table — so the
    /// two spill paths can never disagree on what fits inline.
    #[inline]
    fn try_inline(v: Scalar) -> Option<Packed> {
        match v {
            Scalar::I(i) if (i << 16) >> 16 == i => {
                Some(Packed((TAG_INT << 48) | (i as u64 & PAYLOAD_MASK)))
            }
            Scalar::F(f) => {
                let bits = f.to_bits();
                let tag = bits >> 48;
                if (TAG_INT..=TAG_UNINIT).contains(&tag) {
                    None
                } else {
                    Some(Packed(bits))
                }
            }
            Scalar::P(p) if p.alloc < (1 << 24) && (p.index << 40) >> 40 == p.index => Some(
                Packed((TAG_PTR << 48) | ((p.alloc as u64) << 24) | (p.index as u64 & 0xFF_FFFF)),
            ),
            Scalar::Null => Some(Packed::NULL),
            Scalar::Uninit => Some(Packed::UNINIT),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-free global-variable table (the bytecode VM's globals)
// ---------------------------------------------------------------------------

/// Program globals as NaN-boxed words in `AtomicU64` slots: `load` and
/// `store` are single atomic accesses (no lock, no tear — a torn
/// `Scalar` write under the old `RwLock<Vec<Scalar>>` scheme could
/// interleave discriminant and payload), and read-modify-writes go
/// through a CAS loop ([`GlobalTable::rmw`]) so concurrent `g += 1` from
/// a parallel region never loses an update.
///
/// Values that do not fit a packed word inline (ints beyond 48 bits,
/// huge pointers, tag-window NaN patterns) overflow into a **shared**
/// append-only [`AppendTable`] — unlike a per-VM [`SpillPool`], its
/// indices are stable and meaningful across every thread, so a spill
/// word published by one worker resolves correctly on any other.
/// Entries are immutable once published; a store that repeats the slot's
/// current overflow value reuses its entry, and only overflow stores of
/// *changing* values append (bounded in practice: only |int| ≥ 2⁴⁷,
/// alloc ids ≥ 2²⁴, |index| ≥ 2²³ or payload-NaN bit patterns spill, and
/// each append costs an interpreter step).
pub struct GlobalTable {
    words: Box<[AtomicU64]>,
    spill: AppendTable<Scalar>,
}

/// Bit-exact scalar identity (floats by bit pattern, so tag-window NaNs
/// compare equal to themselves — `PartialEq` would say `NaN != NaN`).
fn scalar_identical(a: Scalar, b: Scalar) -> bool {
    match (a, b) {
        (Scalar::F(x), Scalar::F(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

impl GlobalTable {
    pub fn new(nglobals: usize) -> Self {
        GlobalTable {
            words: (0..nglobals)
                .map(|_| AtomicU64::new(Packed::UNINIT.0))
                .collect(),
            spill: AppendTable::new(),
        }
    }

    #[inline]
    fn unpack_word(&self, bits: u64) -> Scalar {
        if bits >> 48 == TAG_SPILL {
            *self
                .spill
                .get((bits & PAYLOAD_MASK) as usize)
                .expect("published global spill index")
        } else {
            // Non-spill words carry no pool references; unpacking against
            // a fresh empty pool is exact (and allocation-free).
            Packed(bits).unpack(&SpillPool::new())
        }
    }

    #[inline]
    fn pack_word(&self, v: Scalar) -> u64 {
        match Packed::try_inline(v) {
            Some(p) => p.0,
            None => {
                let idx = self.spill.push(v).expect("global spill table exhausted");
                debug_assert!(idx as u64 <= PAYLOAD_MASK);
                (TAG_SPILL << 48) | idx as u64
            }
        }
    }

    /// Lock-free global read.
    #[inline]
    pub fn load(&self, i: usize) -> Scalar {
        self.unpack_word(self.words[i].load(Ordering::Acquire))
    }

    /// Lock-free global write. An overflow value identical to the slot's
    /// current one reuses the existing spill entry instead of appending —
    /// a loop re-storing the same spill-class value must not grow the
    /// append-only table (skipping the store of an equal value is an
    /// idempotent, valid serialization under races).
    #[inline]
    pub fn store(&self, i: usize, v: Scalar) {
        let bits = match Packed::try_inline(v) {
            Some(p) => p.0,
            None => {
                let cur = self.words[i].load(Ordering::Acquire);
                if cur >> 48 == TAG_SPILL {
                    if let Some(e) = self.spill.get((cur & PAYLOAD_MASK) as usize) {
                        if scalar_identical(*e, v) {
                            return;
                        }
                    }
                }
                let idx = self.spill.push(v).expect("global spill table exhausted");
                debug_assert!(idx as u64 <= PAYLOAD_MASK);
                (TAG_SPILL << 48) | idx as u64
            }
        };
        self.words[i].store(bits, Ordering::Release);
    }

    /// Atomic read-modify-write: compute `f(old)` and publish it with a
    /// compare-and-swap, retrying on interference. `f` may run more than
    /// once under contention (callers with side effects snapshot/restore
    /// them per attempt); bit-equality of words implies value equality —
    /// inline words encode the value itself and spill indices are
    /// append-only — so a successful CAS means no update was lost.
    /// Returns `(old, new)`.
    ///
    /// Known cost, accepted: when `new` is spill-class (|int| ≥ 2⁴⁷,
    /// oversized pointer, tag-window NaN), a *failed* CAS attempt
    /// orphans the spill entry it packed (append-only tables reclaim
    /// nothing). The leak is bounded by the number of contended RMWs on
    /// spill-class globals — each retry means another thread's update
    /// landed — and such values are unreachable for counter-style
    /// globals within the interpreter's step limit.
    #[inline]
    pub fn rmw<E>(
        &self,
        i: usize,
        mut f: impl FnMut(Scalar) -> Result<Scalar, E>,
    ) -> Result<(Scalar, Scalar), E> {
        loop {
            let bits = self.words[i].load(Ordering::Acquire);
            let old = self.unpack_word(bits);
            let new = f(old)?;
            // A value-preserving RMW reuses the current word (and its
            // spill entry, if any) instead of packing a duplicate.
            let new_bits = if scalar_identical(new, old) {
                bits
            } else {
                self.pack_word(new)
            };
            if self.words[i]
                .compare_exchange(bits, new_bits, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok((old, new));
            }
        }
    }
}

/// One iteration's tracked access sets (race-check mode). Every engine
/// fills one of these per iteration; overlap detection is shared in
/// [`RaceAccumulator`].
#[derive(Debug, Default)]
pub(crate) struct TrackSets {
    pub(crate) reads: HashSet<(u32, i64)>,
    pub(crate) writes: HashSet<(u32, i64)>,
}

/// Accumulates iteration access sets across a parallel region and
/// reports the first write/write or write/read overlap — the single
/// implementation of race-check mode's detection rule, shared by the
/// bytecode VM, the resolved engine and the legacy oracle.
#[derive(Debug, Default)]
pub(crate) struct RaceAccumulator {
    writes: HashSet<(u32, i64)>,
    reads: HashSet<(u32, i64)>,
}

impl RaceAccumulator {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Fold one iteration's sets in; `Err` carries the diagnostic.
    pub(crate) fn absorb(&mut self, t: TrackSets) -> Result<(), String> {
        for w in &t.writes {
            if self.writes.contains(w) || self.reads.contains(w) {
                return Err(format!(
                    "race detected: slot ({}, {}) accessed by multiple iterations",
                    w.0, w.1
                ));
            }
        }
        for r in &t.reads {
            if self.writes.contains(r) {
                return Err(format!(
                    "race detected: slot ({}, {}) written by one iteration and read by another",
                    r.0, r.1
                ));
            }
        }
        self.writes.extend(t.writes);
        self.reads.extend(t.reads);
        Ok(())
    }
}

/// Fuel granted to an engine thread per refill from the shared
/// [`FuelBudget`]. Large enough that the shared CAS is off the hot path
/// (one refill per 4096 dispatches), small enough that an infinite loop
/// under `--fuel N` overshoots N by at most one block per live thread.
pub const FUEL_BLOCK: u64 = 4096;

/// One instruction budget shared by every thread of a run: engines hold
/// fuel locally (a plain counter decremented per dispatch) and refill it
/// in [`FUEL_BLOCK`]-sized grants from this shared pool, so parallel
/// regions and pure-call futures all drain the same budget. A grant of 0
/// means the budget is exhausted ([`crate::Trap::FuelExhausted`]).
/// Finishing children refund unused local fuel so a fast worker's block
/// stays available to its siblings.
#[derive(Debug)]
pub struct FuelBudget {
    remaining: AtomicU64,
}

impl FuelBudget {
    pub fn new(total: u64) -> Self {
        FuelBudget {
            remaining: AtomicU64::new(total),
        }
    }

    /// Take up to [`FUEL_BLOCK`] units; returns the grant (0 = exhausted).
    pub fn take_block(&self) -> u64 {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            let grant = cur.min(FUEL_BLOCK);
            if grant == 0 {
                return 0;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return grant,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return unused local fuel to the shared pool.
    pub fn refund(&self, n: u64) {
        if n > 0 {
            self.remaining.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// Per-thread executed-operation tallies: the lock-free counterpart of
/// [`Counters`]. The VM bumps plain fields on its own thread and flushes
/// the totals into the shared atomics **once** — at parallel-region join
/// for worker tallies, and at run end for the root — instead of paying a
/// shared `fetch_add` per executed operation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    pub flops: u64,
    pub int_ops: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
    pub branches: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
    pub futures_spawned: u64,
    pub futures_inlined: u64,
    pub futures_helped: u64,
    pub tasks_stolen: u64,
    pub local_pushes: u64,
    pub memo_evictions: u64,
    /// Dispatches eliminated by constant folding that executed as part
    /// of a `ConstFold` compensation (tier-3.5 optimizer bookkeeping).
    pub insns_folded: u64,
    /// Dispatches eliminated by superinstruction fusion that executed
    /// as part of a fused instruction (tier-3.5 optimizer bookkeeping).
    pub insns_fused: u64,
    /// Monomorphic inline-cache hits at `CallUser` sites (a hit is also
    /// counted as a memo hit — the IC is a one-entry per-site memo).
    pub icache_hits: u64,
}

impl Tally {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another tally in (region join).
    pub fn merge(&mut self, other: &Tally) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.calls += other.calls;
        self.branches += other.branches;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.futures_spawned += other.futures_spawned;
        self.futures_inlined += other.futures_inlined;
        self.futures_helped += other.futures_helped;
        self.tasks_stolen += other.tasks_stolen;
        self.local_pushes += other.local_pushes;
        self.memo_evictions += other.memo_evictions;
        self.insns_folded += other.insns_folded;
        self.insns_fused += other.insns_fused;
        self.icache_hits += other.icache_hits;
    }

    /// Flush into the shared atomics (once per thread per join point).
    pub fn flush(&self, c: &Counters) {
        c.flops.fetch_add(self.flops, Ordering::Relaxed);
        c.int_ops.fetch_add(self.int_ops, Ordering::Relaxed);
        c.loads.fetch_add(self.loads, Ordering::Relaxed);
        c.stores.fetch_add(self.stores, Ordering::Relaxed);
        c.calls.fetch_add(self.calls, Ordering::Relaxed);
        c.branches.fetch_add(self.branches, Ordering::Relaxed);
        c.memo_hits.fetch_add(self.memo_hits, Ordering::Relaxed);
        c.memo_misses.fetch_add(self.memo_misses, Ordering::Relaxed);
        c.futures_spawned
            .fetch_add(self.futures_spawned, Ordering::Relaxed);
        c.futures_inlined
            .fetch_add(self.futures_inlined, Ordering::Relaxed);
        c.futures_helped
            .fetch_add(self.futures_helped, Ordering::Relaxed);
        c.tasks_stolen
            .fetch_add(self.tasks_stolen, Ordering::Relaxed);
        c.local_pushes
            .fetch_add(self.local_pushes, Ordering::Relaxed);
        c.memo_evictions
            .fetch_add(self.memo_evictions, Ordering::Relaxed);
        c.insns_folded
            .fetch_add(self.insns_folded, Ordering::Relaxed);
        c.insns_fused.fetch_add(self.insns_fused, Ordering::Relaxed);
        c.icache_hits.fetch_add(self.icache_hits, Ordering::Relaxed);
    }
}

/// `++`/`--` value transition with shared-counter accounting — the single
/// implementation behind the resolved and legacy engines' inc/dec on any
/// place (the bytecode VM's `incdec_scalar` is the [`Tally`]-accounted
/// analogue of the same transition).
pub(crate) fn incdec_with_counters(c: &Counters, old: Scalar, delta: i64) -> Scalar {
    match old {
        Scalar::F(f) => {
            Counters::bump(&c.flops);
            Scalar::F(f + delta as f64)
        }
        Scalar::P(p) => Scalar::P(p.offset(delta)),
        other => {
            Counters::bump(&c.int_ops);
            Scalar::I(other.as_i64() + delta)
        }
    }
}

/// Relaxed atomic counters for executed-operation accounting (the paper's
/// perf analysis: 47.5 G vs 87.8 G instructions, Sect. 4.3.2).
#[derive(Debug, Default)]
pub struct Counters {
    pub flops: AtomicU64,
    pub int_ops: AtomicU64,
    pub loads: AtomicU64,
    pub stores: AtomicU64,
    pub calls: AtomicU64,
    pub branches: AtomicU64,
    /// Pure-call memoization cache hits (resolved engine only).
    pub memo_hits: AtomicU64,
    /// Pure-call memoization cache misses (consults that executed).
    pub memo_misses: AtomicU64,
    /// Pure-call futures submitted to the worker pool (including
    /// futures later revoked at their await and run inline — the
    /// cancellation fast path).
    pub futures_spawned: AtomicU64,
    /// Spawn sites that executed inline because the admission throttle
    /// refused capacity (with futures disabled, spawn sites run as
    /// plain calls and are not counted here). Disjoint from
    /// `futures_spawned`: every spawn site lands in exactly one.
    pub futures_inlined: AtomicU64,
    /// Awaits issued from a pool worker that had to *help* (claim queued
    /// tasks) because the future was still in flight.
    pub futures_helped: AtomicU64,
    /// Futures executed by a *different* worker than the one that pushed
    /// them onto its local deque — the work-stealing path engaging.
    pub tasks_stolen: AtomicU64,
    /// Futures pushed onto the spawning worker's own deque (vs routed
    /// through the shared injector).
    pub local_pushes: AtomicU64,
    /// Entries displaced from the bounded memo caches (CLOCK eviction) —
    /// non-zero only once a cache ran at capacity.
    pub memo_evictions: AtomicU64,
    /// Dispatches the tier-3.5 optimizer's constant folding eliminated,
    /// counted as the folded `ConstFold` compensations execute.
    pub insns_folded: AtomicU64,
    /// Dispatches eliminated by superinstruction fusion, counted as the
    /// fused instructions execute.
    pub insns_fused: AtomicU64,
    /// Monomorphic inline-cache hits at `CallUser` sites.
    pub icache_hits: AtomicU64,
    /// Parallel regions whose dynamic race check was skipped because the
    /// static analyzer proved the iterations independent.
    pub race_static_skips: AtomicU64,
    /// Iterations executed by the dynamic race check (the O(n) pre-pass;
    /// zero when every checked region was statically proven).
    pub race_dyn_iters: AtomicU64,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
            + self.int_ops.load(Ordering::Relaxed)
            + self.loads.load(Ordering::Relaxed)
            + self.stores.load(Ordering::Relaxed)
            + self.calls.load(Ordering::Relaxed)
            + self.branches.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            flops: self.flops.load(Ordering::Relaxed),
            int_ops: self.int_ops.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            branches: self.branches.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            futures_spawned: self.futures_spawned.load(Ordering::Relaxed),
            futures_inlined: self.futures_inlined.load(Ordering::Relaxed),
            futures_helped: self.futures_helped.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            local_pushes: self.local_pushes.load(Ordering::Relaxed),
            memo_evictions: self.memo_evictions.load(Ordering::Relaxed),
            insns_folded: self.insns_folded.load(Ordering::Relaxed),
            insns_fused: self.insns_fused.load(Ordering::Relaxed),
            icache_hits: self.icache_hits.load(Ordering::Relaxed),
            race_static_skips: self.race_static_skips.load(Ordering::Relaxed),
            race_dyn_iters: self.race_dyn_iters.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    pub flops: u64,
    pub int_ops: u64,
    pub loads: u64,
    pub stores: u64,
    pub calls: u64,
    pub branches: u64,
    /// Pure-call memo cache hits/misses (zero on the legacy engine).
    pub memo_hits: u64,
    pub memo_misses: u64,
    /// Pure-call future statistics (zero on the legacy engine and on
    /// runs with futures disabled) — scheduling-dependent bookkeeping,
    /// excluded from the differential projection like the memo stats.
    pub futures_spawned: u64,
    pub futures_inlined: u64,
    pub futures_helped: u64,
    /// Work-stealing statistics of this run's futures: how many were
    /// pushed onto the spawning worker's own deque, and how many of
    /// those a *different* worker ended up executing. Scheduling-
    /// dependent like the other futures stats — excluded from the
    /// differential projection.
    pub tasks_stolen: u64,
    pub local_pushes: u64,
    /// Bounded-memo-cache evictions — cache-management bookkeeping like
    /// the hit/miss split, excluded from the differential projection.
    pub memo_evictions: u64,
    /// Tier-3.5 optimizer bookkeeping: dispatches eliminated by folding
    /// and fusion, and inline-cache hits. Nonzero only on optimized
    /// bytecode runs — excluded from the differential projection (the
    /// executed-op counters themselves stay exact under optimization).
    pub insns_folded: u64,
    pub insns_fused: u64,
    pub icache_hits: u64,
    /// Race-check bookkeeping (`--race-check` only): regions whose
    /// dynamic pre-pass was skipped on a static Independent verdict, and
    /// iterations the dynamic pre-pass did execute. Excluded from the
    /// differential projection like the other bookkeeping stats.
    pub race_static_skips: u64,
    pub race_dyn_iters: u64,
}

impl CounterSnapshot {
    /// Executed-operation total; memo statistics are bookkeeping, not
    /// executed operations, so they are excluded.
    pub fn total(&self) -> u64 {
        self.flops + self.int_ops + self.loads + self.stores + self.calls + self.branches
    }

    /// Copy with the memo *and* futures statistics zeroed — the
    /// "counters modulo cache hits and future scheduling" projection the
    /// differential tests compare on. Memo hit/miss splits depend on
    /// shard scheduling; spawn/inline/help splits depend on pool
    /// saturation at spawn time — neither is an executed operation of
    /// the program, and the executed-op counters themselves stay exact.
    pub fn without_memo(&self) -> CounterSnapshot {
        CounterSnapshot {
            memo_hits: 0,
            memo_misses: 0,
            futures_spawned: 0,
            futures_inlined: 0,
            futures_helped: 0,
            tasks_stolen: 0,
            local_pushes: 0,
            memo_evictions: 0,
            insns_folded: 0,
            insns_fused: 0,
            icache_hits: 0,
            race_static_skips: 0,
            race_dyn_iters: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_round_trip() {
        let m = Memory::new();
        let p = m.alloc(4);
        m.store(p, Scalar::I(42)).unwrap();
        m.store(p.offset(3), Scalar::F(2.5)).unwrap();
        assert_eq!(m.load(p).unwrap(), Scalar::I(42));
        assert_eq!(m.load(p.offset(3)).unwrap(), Scalar::F(2.5));
        assert_eq!(m.load(p.offset(1)).unwrap(), Scalar::Uninit);
    }

    #[test]
    fn out_of_bounds_is_error_not_ub() {
        let m = Memory::new();
        let p = m.alloc(2);
        assert!(m.load(p.offset(2)).is_err());
        assert!(m.store(p.offset(-1), Scalar::I(0)).is_err());
    }

    #[test]
    fn use_after_free_detected() {
        let m = Memory::new();
        let p = m.alloc(2);
        m.free(p).unwrap();
        assert!(m.load(p).is_err());
        assert!(m.free(p).is_err(), "double free must be detected");
    }

    #[test]
    fn interior_free_rejected() {
        let m = Memory::new();
        let p = m.alloc(4);
        assert!(m.free(p.offset(1)).is_err());
    }

    #[test]
    fn shared_across_clones() {
        let m = Memory::new();
        let m2 = m.clone();
        let p = m.alloc(1);
        m2.store(p, Scalar::I(7)).unwrap();
        assert_eq!(m.load(p).unwrap(), Scalar::I(7));
    }

    #[test]
    fn parallel_disjoint_writes() {
        let m = Memory::new();
        let p = m.alloc(1024);
        machine::parallel_for(1024, 8, machine::OmpSchedule::Dynamic(16), |i| {
            m.store(p.offset(i as i64), Scalar::I(i as i64 * 2))
                .unwrap();
        });
        for i in 0..1024 {
            assert_eq!(m.load(p.offset(i)).unwrap(), Scalar::I(i * 2));
        }
    }

    #[test]
    fn memory_cap_boundary_is_exact() {
        // Cap = 4 allocations of 2 slots (16 bytes each). The allocation
        // that lands exactly on the cap must succeed; the next one — even
        // a single slot — must trap, and must not eat budget.
        let m = Memory::with_limit(Some(64));
        for _ in 0..4 {
            m.try_alloc(2).expect("within the cap");
        }
        assert_eq!(m.used_bytes(), Some(64));
        let err = m.try_alloc(1).unwrap_err();
        assert!(err.limit, "ceiling overshoot is a limit error");
        assert!(
            err.message.contains("requested 8 bytes") && err.message.contains("64 of 64"),
            "message names requested bytes and cap: {}",
            err.message
        );
        assert_eq!(
            m.used_bytes(),
            Some(64),
            "failed alloc rolled back its charge"
        );
        assert_eq!(m.limit_bytes(), Some(64));
    }

    #[test]
    fn memory_cap_charges_slot_bytes() {
        // len is rounded up to one slot minimum and charged at 8 bytes a
        // slot — a 7-byte cap cannot satisfy even malloc(0).
        let m = Memory::with_limit(Some(7));
        assert!(m.try_alloc(0).unwrap_err().limit);
        assert_eq!(m.used_bytes(), Some(0));
        assert!(Memory::with_limit(Some(8)).try_alloc(0).is_ok());
    }

    #[test]
    fn unlimited_memory_reports_no_usage() {
        let m = Memory::new();
        m.try_alloc(1024).unwrap();
        assert_eq!(m.used_bytes(), None);
        assert_eq!(m.limit_bytes(), None);
    }

    #[test]
    fn fuel_budget_grants_blocks_and_refunds() {
        let b = FuelBudget::new(FUEL_BLOCK + 100);
        assert_eq!(b.take_block(), FUEL_BLOCK);
        assert_eq!(b.take_block(), 100, "final partial block granted");
        assert_eq!(b.take_block(), 0, "exhausted budget grants zero");
        b.refund(25);
        assert_eq!(b.take_block(), 25);
        assert_eq!(b.remaining(), 0);
        b.refund(0);
        assert_eq!(b.take_block(), 0);
    }

    #[test]
    fn append_table_spans_segments() {
        // 300 entries cross the 64-entry and 128-entry segments into the
        // third — every id must keep resolving to its own entry.
        let t: AppendTable<usize> = AppendTable::new();
        for i in 0..300 {
            assert_eq!(t.push(i * 7), Some(i));
        }
        assert_eq!(t.len(), 300);
        for i in 0..300 {
            assert_eq!(t.get(i), Some(&(i * 7)), "entry {i}");
        }
        assert_eq!(t.get(300), None);
    }

    #[test]
    fn locate_maps_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(
            locate(TABLE_CAPACITY - 1),
            (SEG_COUNT - 1, (SEG0_CAP << (SEG_COUNT - 1)) - 1)
        );
        // The id space tops out below u32::MAX: a full table can never
        // produce an id that truncates back onto allocation 0.
        assert!(TABLE_CAPACITY - 1 <= u32::MAX as usize);
    }

    #[test]
    fn concurrent_alloc_and_access_race_free() {
        // Workers allocate and immediately use their own allocations while
        // others do the same: exercises lock-free reads racing table
        // growth across segment boundaries.
        let m = Memory::new();
        machine::parallel_for(256, 8, machine::OmpSchedule::Dynamic(4), |i| {
            let p = m.alloc(4);
            m.store(p, Scalar::I(i as i64)).unwrap();
            m.store(p.offset(3), Scalar::F(i as f64)).unwrap();
            assert_eq!(m.load(p).unwrap(), Scalar::I(i as i64));
            assert_eq!(m.load(p.offset(3)).unwrap(), Scalar::F(i as f64));
        });
        assert_eq!(m.allocation_count(), 256);
    }

    #[test]
    fn global_table_round_trips_inline_and_spill() {
        let g = GlobalTable::new(4);
        assert_eq!(g.load(0), Scalar::Uninit);
        let cases = [
            Scalar::I(42),
            Scalar::I(i64::MAX),
            Scalar::I(i64::MIN),
            Scalar::F(2.5),
            Scalar::F(f64::NEG_INFINITY),
            Scalar::F(f64::from_bits(0xFFF9_0000_0000_0001)),
            Scalar::P(Ptr {
                alloc: 3,
                index: -2,
            }),
            Scalar::P(Ptr {
                alloc: 1 << 24,
                index: 1 << 23,
            }),
            Scalar::Null,
            Scalar::Uninit,
        ];
        for v in cases {
            g.store(1, v);
            match (v, g.load(1)) {
                (Scalar::F(a), Scalar::F(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn global_store_reuses_spill_entry_for_unchanged_value() {
        let g = GlobalTable::new(2);
        for _ in 0..100 {
            g.store(0, Scalar::I(1 << 50));
        }
        assert_eq!(g.load(0), Scalar::I(1 << 50));
        assert_eq!(
            g.spill.len(),
            1,
            "unchanged overflow stores must not append"
        );
        // A value-preserving RMW also reuses the word.
        for _ in 0..50 {
            g.rmw::<()>(0, Ok).unwrap();
        }
        assert_eq!(g.spill.len(), 1);
        // A *changing* overflow value appends (documented trade-off).
        g.store(0, Scalar::I((1 << 50) + 1));
        assert_eq!(g.spill.len(), 2);
    }

    #[test]
    fn global_rmw_loses_no_updates() {
        let g = Arc::new(GlobalTable::new(1));
        g.store(0, Scalar::I(0));
        machine::parallel_for(4000, 8, machine::OmpSchedule::Dynamic(1), |_| {
            g.rmw::<()>(0, |old| Ok(Scalar::I(old.as_i64() + 1)))
                .unwrap();
        });
        assert_eq!(g.load(0), Scalar::I(4000));
    }

    #[test]
    fn global_rmw_error_aborts_without_store() {
        let g = GlobalTable::new(1);
        g.store(0, Scalar::I(5));
        let r = g.rmw(0, |_| Err::<Scalar, &str>("division by zero"));
        assert_eq!(r, Err("division by zero"));
        assert_eq!(g.load(0), Scalar::I(5));
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::I(3).as_f64(), 3.0);
        assert_eq!(Scalar::F(2.9).as_i64(), 2);
        assert!(Scalar::I(1).truthy());
        assert!(!Scalar::I(0).truthy());
        assert!(!Scalar::Null.truthy());
        assert!(Scalar::P(Ptr::default()).truthy());
        assert!(!Scalar::Uninit.truthy());
    }

    #[test]
    fn packed_round_trips_inline_values() {
        let pool = SpillPool::new();
        let cases = [
            Scalar::Uninit,
            Scalar::Null,
            Scalar::I(0),
            Scalar::I(1),
            Scalar::I(-1),
            Scalar::I((1 << 47) - 1),
            Scalar::I(-(1 << 47)),
            Scalar::F(0.0),
            Scalar::F(-0.0),
            Scalar::F(3.5),
            Scalar::F(f64::INFINITY),
            Scalar::F(f64::NEG_INFINITY),
            Scalar::F(f64::MIN_POSITIVE),
            Scalar::P(Ptr { alloc: 0, index: 0 }),
            Scalar::P(Ptr {
                alloc: (1 << 24) - 1,
                index: (1 << 23) - 1,
            }),
            Scalar::P(Ptr {
                alloc: 7,
                index: -(1 << 23),
            }),
        ];
        for v in cases {
            let p = Packed::pack(v, &pool);
            match v {
                // -0.0 == 0.0 under PartialEq; compare float bits instead.
                Scalar::F(f) => assert_eq!(
                    match p.unpack(&pool) {
                        Scalar::F(g) => g.to_bits(),
                        other => panic!("float round-tripped to {other:?}"),
                    },
                    f.to_bits()
                ),
                _ => assert_eq!(p.unpack(&pool), v, "{v:?}"),
            }
        }
        assert!(pool.is_empty(), "inline cases must not spill");
    }

    #[test]
    fn packed_round_trips_via_spill_pool() {
        let pool = SpillPool::new();
        let cases = [
            Scalar::I(i64::MAX),
            Scalar::I(i64::MIN),
            Scalar::I(1 << 47),
            Scalar::I(-(1 << 47) - 1),
            Scalar::P(Ptr {
                alloc: 1 << 24,
                index: 3,
            }),
            Scalar::P(Ptr {
                alloc: 2,
                index: 1 << 23,
            }),
            // A payload NaN inside the tag window: unreachable via
            // arithmetic, still bit-exact through the pool.
            Scalar::F(f64::from_bits(0xFFF9_0000_0000_0001)),
        ];
        for v in cases {
            let p = Packed::pack(v, &pool);
            match (v, p.unpack(&pool)) {
                (Scalar::F(a), Scalar::F(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
        assert_eq!(pool.len(), cases.len());
    }

    #[test]
    fn packed_canonical_nans_stay_inline() {
        let pool = SpillPool::new();
        // The only NaNs reachable by interpreter arithmetic.
        for bits in [0x7FF8_0000_0000_0000u64, 0xFFF8_0000_0000_0000u64] {
            let p = Packed::pack(Scalar::F(f64::from_bits(bits)), &pool);
            assert_eq!(p.bits(), bits);
            match p.unpack(&pool) {
                Scalar::F(f) => assert_eq!(f.to_bits(), bits),
                other => panic!("{other:?}"),
            }
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn tally_flushes_once_into_shared_counters() {
        let c = Counters::new();
        let mut t = Tally::new();
        t.flops += 3;
        t.loads += 2;
        t.memo_hits += 1;
        let mut t2 = Tally::new();
        t2.int_ops += 5;
        t.merge(&t2);
        t.flush(&c);
        let s = c.snapshot();
        assert_eq!(s.flops, 3);
        assert_eq!(s.int_ops, 5);
        assert_eq!(s.loads, 2);
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.total(), 10);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        Counters::bump(&c.flops);
        Counters::bump(&c.flops);
        Counters::bump(&c.stores);
        let s = c.snapshot();
        assert_eq!(s.flops, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.total(), 3);
    }
}
