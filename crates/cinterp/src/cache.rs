//! Bounded memoization storage: a CLOCK (second-chance) cache shared by
//! the resolved engine's process-wide [`crate::resolve::MemoCache`] and
//! the bytecode VM's per-worker memo shards.
//!
//! The previous memo maps were grow-only-until-cap: once full they
//! silently stopped inserting, so a long-running process (the `purec
//! serve` north star) would pin whatever keys happened to arrive first
//! and memoize nothing ever after. CLOCK keeps the cache *useful* at a
//! bounded footprint: every slot carries a reference bit set on hit; the
//! eviction hand sweeps slots, clearing reference bits, and replaces the
//! first slot found unreferenced. Hot entries (recursion base cases,
//! which dominate e.g. `fib`) are re-referenced faster than the hand
//! revisits them and stay resident; one-shot keys are recycled after a
//! single sweep. Evictions are counted and surfaced as
//! `memo_evictions` in [`crate::value::CounterSnapshot`].
//!
//! The structure is deliberately not thread-safe: the resolved engine
//! wraps one instance in a mutex, the VM keeps one per worker shard.

use std::collections::HashMap;
use std::hash::Hash;

struct Slot<K, V> {
    key: K,
    val: V,
    /// CLOCK reference bit: set on every hit, cleared as the eviction
    /// hand sweeps past. A slot is only evicted with the bit clear.
    referenced: bool,
}

/// A fixed-capacity key→value cache with CLOCK (second-chance) eviction.
pub(crate) struct ClockCache<K, V> {
    cap: usize,
    index: HashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
    evictions: u64,
}

impl<K: Clone + Eq + Hash, V: Copy> ClockCache<K, V> {
    pub(crate) fn new(cap: usize) -> Self {
        ClockCache {
            cap: cap.max(1),
            index: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            evictions: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Total entries evicted to make room since creation.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        let &slot = self.index.get(key)?;
        let s = &mut self.slots[slot as usize];
        s.referenced = true;
        Some(s.val)
    }

    /// Insert (or refresh) `key → val`, evicting one unreferenced entry
    /// when at capacity. Returns `true` when an eviction happened.
    pub(crate) fn insert(&mut self, key: K, val: V) -> bool {
        if let Some(&slot) = self.index.get(&key) {
            let s = &mut self.slots[slot as usize];
            s.val = val;
            s.referenced = true;
            return false;
        }
        if self.slots.len() < self.cap {
            self.index.insert(key.clone(), self.slots.len() as u32);
            self.slots.push(Slot {
                key,
                val,
                referenced: true,
            });
            return false;
        }
        // CLOCK sweep: clear reference bits until an unreferenced slot
        // comes up (bounded: after one full revolution every bit is
        // clear, so the sweep terminates within 2·cap steps).
        loop {
            let h = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let s = &mut self.slots[h];
            if s.referenced {
                s.referenced = false;
                continue;
            }
            self.index.remove(&s.key);
            self.index.insert(key.clone(), h as u32);
            *s = Slot {
                key,
                val,
                referenced: true,
            };
            self.evictions += 1;
            return true;
        }
    }

    /// Iterate the resident entries (region-join shard absorption).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().map(|s| (&s.key, &s.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_hits_below_capacity() {
        let mut c: ClockCache<u64, u64> = ClockCache::new(8);
        for i in 0..8 {
            assert!(!c.insert(i, i * 10));
        }
        for i in 0..8 {
            assert_eq!(c.get(&i), Some(i * 10));
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn evicts_cold_entries_at_capacity() {
        let mut c: ClockCache<u64, u64> = ClockCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        // First insert at capacity completes one clearing revolution
        // (every bit was set at insertion) and recycles slot 0.
        assert!(c.insert(100, 100));
        assert_eq!(c.get(&0), None);
        // Now bits are clear: re-reference 1 and 2, leave 3 cold — the
        // next eviction must skip the hot entries and take 3.
        c.get(&1);
        c.get(&2);
        assert!(c.insert(101, 101));
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.get(&1), Some(1), "hot entry survived the sweep");
        assert_eq!(c.get(&2), Some(2), "hot entry survived the sweep");
        assert_eq!(c.get(&3), None, "cold entry was evicted");
        assert_eq!(c.get(&100), Some(100));
        assert_eq!(c.get(&101), Some(101));
        assert_eq!(c.len(), 4, "capacity is a hard bound");
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c: ClockCache<u64, u64> = ClockCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(!c.insert(1, 11), "refresh of a resident key never evicts");
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn sweep_terminates_when_everything_is_referenced() {
        let mut c: ClockCache<u64, u64> = ClockCache::new(3);
        for i in 0..3 {
            c.insert(i, i);
        }
        for i in 0..3 {
            c.get(&i);
        }
        // All bits set: the hand must complete a clearing revolution and
        // then evict — not spin.
        assert!(c.insert(99, 99));
        assert_eq!(c.len(), 3);
    }
}
