//! # cinterp — C interpreter with a parallel OpenMP-style runtime
//!
//! Executes translation units produced by the `pure-c` chain, both the
//! original sequential programs and the transformed ones with
//! `#pragma omp parallel for` annotations (run on real threads through
//! [`machine::omprt`]). Used to *prove semantic equivalence* of the
//! transformation at reduced problem sizes, to collect instruction-mix
//! counters (the paper's 47.5 G vs 87.8 G instruction comparison), and to
//! dynamically validate the purity guarantee via race-check mode.

pub mod builtins;
pub mod interp;
pub mod resolve;
pub mod value;

pub use interp::{InterpOptions, Program, RunResult, RuntimeError};
pub use resolve::ResolvedProgram;
pub use value::{CounterSnapshot, Counters, MemError, Memory, Ptr, Scalar};
