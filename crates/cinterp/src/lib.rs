//! # cinterp — C interpreter with a parallel OpenMP-style runtime
//!
//! Executes translation units produced by the `pure-c` chain, both the
//! original sequential programs and the transformed ones with
//! `#pragma omp parallel for` annotations (run on real threads through
//! [`machine::omprt`]). Used to *prove semantic equivalence* of the
//! transformation at reduced problem sizes, to collect instruction-mix
//! counters (the paper's 47.5 G vs 87.8 G instruction comparison), and to
//! dynamically validate the purity guarantee via race-check mode.
//!
//! ## Three execution tiers
//!
//! Execution is organised as a tower of engines, each the differential
//! oracle of the one above it:
//!
//! 1. **Bytecode VM** ([`vm`], default) — [`resolve`]d functions are
//!    flattened by [`bytecode`] into contiguous `Vec<Insn>` arrays (one
//!    opcode + two `u32` operands per instruction, absolute jump
//!    targets, no recursion on the hot path) and executed over NaN-boxed
//!    [`value::Packed`] `u64` scalars. Call frames come from a per-VM
//!    bump arena; parallel workers reuse one arena/tally/memo-shard
//!    across all their iterations and merge once at region join.
//! 2. **Resolved-IR engine** ([`resolve`], `Engine::Resolved` or
//!    [`Program::run_resolved`]) — slot-indexed frames, interned
//!    symbols, pure-call memoization behind one locked cache. Oracle for
//!    the VM: bit-identical exit code, output and executed-op counters
//!    (modulo memo statistics).
//! 3. **Legacy tree-walker** ([`interp`], `legacy-oracle` feature /
//!    dev+test builds only) — the original string-keyed interpreter,
//!    oracle for the resolved engine. Release builds of the library do
//!    not ship it.
//!
//! Purity verdicts from `purec_core` flow through
//! [`Program::with_pure_set`] into resolved lowering (cacheable-function
//! analysis) and onward into bytecode lowering, so all memoizing tiers
//! share one safety argument (see [`resolve`]'s module docs).
//!
//! On top of the cacheable set, the [`spawn`] pass rewrites batches of
//! *independent* verified-pure calls into pure-call **futures**
//! (`SpawnPure`/`AwaitSlots`), executed by both live tiers on the
//! persistent worker pool — the paper's automatic parallelization of
//! pure calls as task parallelism, A/B-togglable via
//! `InterpOptions::futures`.

pub mod builtins;
pub mod bytecode;
pub(crate) mod cache;
pub mod interp;
pub mod opt;
pub mod resolve;
pub mod spawn;
pub mod trace;
pub mod value;
pub mod vm;

pub use bytecode::BytecodeProgram;
pub use interp::{
    Engine, InterpOptions, Program, RaceVerdict, RunResult, RuntimeError, Trap, VerdictMap,
    DEFAULT_RACE_CHECK_CAP,
};
pub use opt::PairProfile;
pub use resolve::ResolvedProgram;
pub use trace::{
    chrome_trace_json, counters_json, metrics_json, validate_chrome_trace, TraceData, TraceSession,
    TraceStats,
};
pub use value::{
    CounterSnapshot, Counters, FuelBudget, MemError, Memory, Packed, Ptr, Scalar, SpillPool, Tally,
    FUEL_BLOCK,
};
