//! Builtin C functions known to the interpreter: the math library (seeded
//! pure in the verifier), `malloc`/`calloc`/`free`, `printf`, and the
//! `__pc_*` codegen helpers (used when the transformed program was not
//! given their C definitions).

use crate::value::{MemError, Memory, Scalar};

/// Result of a builtin call; `None` means "not a builtin".
pub fn call_builtin(
    name: &str,
    args: &[Scalar],
    mem: &Memory,
    output: &mut String,
) -> Option<Result<Scalar, MemError>> {
    let f1 = |f: fn(f64) -> f64| -> Result<Scalar, MemError> {
        Ok(Scalar::F(f(args
            .first()
            .copied()
            .unwrap_or(Scalar::F(0.0))
            .as_f64())))
    };
    let f2 = |f: fn(f64, f64) -> f64| -> Result<Scalar, MemError> {
        let a = args.first().copied().unwrap_or(Scalar::F(0.0)).as_f64();
        let b = args.get(1).copied().unwrap_or(Scalar::F(0.0)).as_f64();
        Ok(Scalar::F(f(a, b)))
    };
    Some(match name {
        // ---- math (double and float variants share f64 slots) -------------
        "sin" | "sinf" => f1(f64::sin),
        "cos" | "cosf" => f1(f64::cos),
        "tan" | "tanf" => f1(f64::tan),
        "asin" | "asinf" => f1(f64::asin),
        "acos" | "acosf" => f1(f64::acos),
        "atan" | "atanf" => f1(f64::atan),
        "atan2" | "atan2f" => f2(f64::atan2),
        "sinh" => f1(f64::sinh),
        "cosh" => f1(f64::cosh),
        "tanh" => f1(f64::tanh),
        "exp" | "expf" => f1(f64::exp),
        "log" | "logf" => f1(f64::ln),
        "log2" | "log2f" => f1(f64::log2),
        "log10" | "log10f" => f1(f64::log10),
        "sqrt" | "sqrtf" => f1(f64::sqrt),
        "cbrt" => f1(f64::cbrt),
        "pow" | "powf" => f2(f64::powf),
        "fabs" | "fabsf" => f1(f64::abs),
        "floor" | "floorf" => f1(f64::floor),
        "ceil" | "ceilf" => f1(f64::ceil),
        "round" | "roundf" => f1(f64::round),
        "trunc" => f1(f64::trunc),
        "fmod" | "fmodf" => f2(|a, b| a % b),
        "fmin" | "fminf" => f2(f64::min),
        "fmax" | "fmaxf" => f2(f64::max),
        "hypot" => f2(f64::hypot),
        "expm1" => f1(f64::exp_m1),
        "log1p" => f1(f64::ln_1p),
        "copysign" => f2(f64::copysign),
        "abs" | "labs" | "llabs" => Ok(Scalar::I(
            args.first().copied().unwrap_or(Scalar::I(0)).as_i64().abs(),
        )),

        // ---- allocation (slot model: sizeof(T) == 8 bytes ⇒ /8) -----------
        "malloc" => {
            let bytes = args
                .first()
                .copied()
                .unwrap_or(Scalar::I(0))
                .as_i64()
                .max(0);
            let slots = (bytes as usize).div_ceil(8);
            match mem.try_alloc(slots) {
                Ok(p) => Ok(Scalar::P(p)),
                Err(e) => Err(e),
            }
        }
        "calloc" => {
            let n = args
                .first()
                .copied()
                .unwrap_or(Scalar::I(0))
                .as_i64()
                .max(0);
            let sz = args.get(1).copied().unwrap_or(Scalar::I(0)).as_i64().max(0);
            let slots = ((n * sz) as usize).div_ceil(8);
            let p = match mem.try_alloc(slots) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            for i in 0..slots {
                if let Err(e) = mem.store(p.offset(i as i64), Scalar::I(0)) {
                    return Some(Err(e));
                }
            }
            Ok(Scalar::P(p))
        }
        "free" => {
            match args.first() {
                Some(Scalar::P(p)) => match mem.free(*p) {
                    Ok(()) => Ok(Scalar::I(0)),
                    Err(e) => Err(e),
                },
                Some(Scalar::Null) | None => Ok(Scalar::I(0)), // free(NULL) is a no-op
                _ => Err(MemError::new("free of non-pointer")),
            }
        }

        // ---- I/O ------------------------------------------------------------
        "printf" => {
            // The format string was evaluated to a pointer into a string
            // allocation by the caller and passed pre-rendered in `output`
            // by the interpreter; here we only see scalars. The interpreter
            // handles printf specially; this arm is a fallback.
            output.push_str("[printf]");
            Ok(Scalar::I(0))
        }

        // ---- codegen helpers (fallback when not defined in C) -------------
        "__pc_floord" => {
            let n = args[0].as_i64();
            let d = args[1].as_i64();
            Ok(Scalar::I(n.div_euclid(d)))
        }
        "__pc_ceild" => {
            let n = args[0].as_i64();
            let d = args[1].as_i64();
            Ok(Scalar::I(-((-n).div_euclid(d))))
        }
        "__pc_max" => Ok(Scalar::I(args[0].as_i64().max(args[1].as_i64()))),
        "__pc_min" => Ok(Scalar::I(args[0].as_i64().min(args[1].as_i64()))),

        _ => return None,
    })
}

/// Render a `printf` call given the format string and evaluated arguments.
/// Supports the conversions used by the evaluation programs:
/// `%d %ld %u %f %g %e %s %c %%` with optional width/precision digits.
pub fn format_printf(fmt: &str, args: &[Scalar], mem: &Memory) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    let mut take = || {
        let v = args.get(next_arg).copied().unwrap_or(Scalar::Uninit);
        next_arg += 1;
        v
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Collect flags/width/precision.
        let mut spec = String::new();
        let conv = loop {
            match chars.next() {
                Some(d @ ('0'..='9' | '.' | '-' | '+' | 'l' | 'z')) => spec.push(d),
                Some(conv) => break Some(conv),
                None => break None,
            }
        };
        let Some(conv) = conv else {
            out.push('%');
            out.push_str(&spec);
            break;
        };
        let precision = spec.split('.').nth(1).and_then(|p| p.parse::<usize>().ok());
        match conv {
            '%' => out.push('%'),
            'd' | 'i' | 'u' => out.push_str(&take().as_i64().to_string()),
            'f' | 'F' => {
                let p = precision.unwrap_or(6);
                out.push_str(&format!("{:.*}", p, take().as_f64()));
            }
            'e' | 'E' => {
                let p = precision.unwrap_or(6);
                out.push_str(&format!("{:.*e}", p, take().as_f64()));
            }
            'g' | 'G' => out.push_str(&format!("{}", take().as_f64())),
            'c' => {
                let v = take().as_i64();
                out.push(char::from_u32(v as u32).unwrap_or('?'));
            }
            's' => match take() {
                Scalar::P(mut p) => {
                    // C strings are stored one char per slot.
                    while let Ok(Scalar::I(ch)) = mem.load(p) {
                        if ch == 0 {
                            break;
                        }
                        out.push(char::from_u32(ch as u32).unwrap_or('?'));
                        p = p.offset(1);
                    }
                }
                _ => out.push_str("(null)"),
            },
            other => {
                out.push('%');
                out.push(other);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Scalar]) -> Scalar {
        let mem = Memory::new();
        let mut out = String::new();
        call_builtin(name, args, &mem, &mut out)
            .expect("is builtin")
            .expect("no error")
    }

    #[test]
    fn math_functions() {
        assert_eq!(call("sqrt", &[Scalar::F(9.0)]), Scalar::F(3.0));
        assert_eq!(call("sqrtf", &[Scalar::F(4.0)]), Scalar::F(2.0));
        assert_eq!(call("fabs", &[Scalar::F(-2.5)]), Scalar::F(2.5));
        assert_eq!(
            call("pow", &[Scalar::F(2.0), Scalar::F(10.0)]),
            Scalar::F(1024.0)
        );
        assert_eq!(
            call("fmax", &[Scalar::F(1.0), Scalar::F(3.0)]),
            Scalar::F(3.0)
        );
        assert_eq!(call("abs", &[Scalar::I(-5)]), Scalar::I(5));
        // Integer arguments are promoted.
        assert_eq!(call("sqrt", &[Scalar::I(16)]), Scalar::F(4.0));
    }

    #[test]
    fn malloc_slot_model() {
        let mem = Memory::new();
        let mut out = String::new();
        // malloc(3 * sizeof(int)) with sizeof == 8 → 24 bytes → 3 slots.
        let r = call_builtin("malloc", &[Scalar::I(24)], &mem, &mut out)
            .unwrap()
            .unwrap();
        let Scalar::P(p) = r else {
            panic!("not a pointer")
        };
        assert_eq!(mem.alloc_len(p), Some(3));
    }

    #[test]
    fn calloc_zeroes() {
        let mem = Memory::new();
        let mut out = String::new();
        let r = call_builtin("calloc", &[Scalar::I(4), Scalar::I(8)], &mem, &mut out)
            .unwrap()
            .unwrap();
        let Scalar::P(p) = r else { panic!() };
        for i in 0..4 {
            assert_eq!(mem.load(p.offset(i)).unwrap(), Scalar::I(0));
        }
    }

    #[test]
    fn free_null_is_noop() {
        let mem = Memory::new();
        let mut out = String::new();
        let r = call_builtin("free", &[Scalar::Null], &mem, &mut out).unwrap();
        assert!(r.is_ok());
    }

    #[test]
    fn pc_helpers_floor_and_ceil_division() {
        assert_eq!(
            call("__pc_floord", &[Scalar::I(7), Scalar::I(2)]),
            Scalar::I(3)
        );
        assert_eq!(
            call("__pc_floord", &[Scalar::I(-7), Scalar::I(2)]),
            Scalar::I(-4)
        );
        assert_eq!(
            call("__pc_ceild", &[Scalar::I(7), Scalar::I(2)]),
            Scalar::I(4)
        );
        assert_eq!(
            call("__pc_ceild", &[Scalar::I(-7), Scalar::I(2)]),
            Scalar::I(-3)
        );
        assert_eq!(
            call("__pc_max", &[Scalar::I(3), Scalar::I(9)]),
            Scalar::I(9)
        );
        assert_eq!(
            call("__pc_min", &[Scalar::I(3), Scalar::I(9)]),
            Scalar::I(3)
        );
    }

    #[test]
    fn unknown_function_is_not_builtin() {
        let mem = Memory::new();
        let mut out = String::new();
        assert!(call_builtin("do_stuff", &[], &mem, &mut out).is_none());
    }

    #[test]
    fn printf_formatting() {
        let mem = Memory::new();
        let s = format_printf("i=%d f=%.2f %%\n", &[Scalar::I(7), Scalar::F(1.5)], &mem);
        assert_eq!(s, "i=7 f=1.50 %\n");
        let s2 = format_printf("%e", &[Scalar::F(12345.0)], &mem);
        assert!(s2.contains('e'));
    }
}
