//! Tier-3.5: the bytecode optimizer.
//!
//! Rewrites the flat `Vec<Insn>` arrays produced by [`crate::bytecode`]
//! between lowering and [`crate::vm`] execution. Three pass families:
//!
//! * **Level ≥ 1 — fold / copy-propagate / dead-store-eliminate.**
//!   Block-local constant folding (a folded chain becomes one
//!   [`Op::ConstFold`] that *compensates* the executed-op counters the
//!   folded instructions would have bumped), forward copy/constant
//!   propagation across frame slots (block-local symbolic stack +
//!   slot facts), and a backward slot-liveness pass over the
//!   absolute-jump CFG that deletes dead `StoreLocal`s and rewrites
//!   dead `StoreLocalPop`s to `Pop` (then a cleanup peephole deletes
//!   `push; Pop` pairs). Every deleted instruction is an *uncounted*
//!   frame/stack shuffle, so the executed-op counters stay bit-identical
//!   and fuel (one burn per dispatch) can only go down.
//! * **Level ≥ 2 — loop-invariant global-load hoisting.** `LoadGlobal`
//!   inside a single-entry loop that contains no stores to globals, no
//!   calls and no parallel constructs is loaded once into a fresh frame
//!   slot in a one-dispatch [`Op::LoadGStore`] preheader and read as
//!   `LoadLocal` in the loop. Memory loads (`LoadMem` family) are
//!   *counted* operations and are never hoisted — doing so would change
//!   the load counter and error timing. The preheader costs one
//!   dispatch per loop *entry*; the fusion pass below typically wins it
//!   back in the first iteration (`LoadLocal, LoadLocal, Binary` →
//!   `BinLL` saves two per iteration).
//! * **Level ≥ 2 — profile-guided superinstruction fusion + inline
//!   caches.** Adjacent instruction windows fuse into the `*Store`,
//!   `BrCmp*`, `LoadIdxLC`/`StoreIdxLC` and `RetLocal` superinstructions
//!   (each replicating the exact counted effects of its components and
//!   bumping `insns_fused` by the dispatches it saved). The pattern set
//!   is chosen by a [`PairProfile`] of sampled hot opcode pairs when one
//!   is supplied (`purec --profile-pairs`), and defaults to the full set
//!   — the shapes below are the top measured pairs on the bench suite
//!   (varaccess / matmul64 / arraysum). Finally each `CallUser` site
//!   whose callee is cacheable gets a monomorphic inline-cache slot: one
//!   key compare replaces the memo-shard probe on repeat calls
//!   (memo-gated, so the differential "counters modulo memo" projection
//!   is unchanged).
//!
//! **Invariant:** on the same input, optimized bytecode produces the
//! same exit code, output, error message and executed-op counters
//! (`flops`/`int_ops`/`loads`/`stores`/`calls`/`branches`) as the raw
//! bytecode — only the `insns_folded`/`insns_fused`/`icache_hits`
//! bookkeeping (zeroed by `CounterSnapshot::without_memo`) differs.
//! Folding never folds an operation that could fail at runtime
//! (`Div`/`Rem` by a zero constant, bitwise on float), so error
//! behaviour survives verbatim.

use crate::bytecode::{binop_decode, binop_encode, BFunc, BytecodeProgram, Insn, Op, OP_COUNT};
use crate::value::Scalar;
use cfront::ast::BinOp;

/// Iteration bound of the level-1 fixpoint (each round strictly shrinks
/// the code or changes no instruction, so this is a safety net).
const MAX_ROUNDS: usize = 8;

// ---------------------------------------------------------------------------
// Pair profile (hot opcode-pair counters, sampled in the VM)
// ---------------------------------------------------------------------------

/// Sampled dispatch-pair counts from a profiled run: `counts[prev * N +
/// cur]` is how many sampled dispatches executed opcode `cur` directly
/// after `prev`. Recorded by the root VM only (one predictable branch
/// per dispatch when enabled, one array bump per 16 dispatches), fed
/// back into [`optimize_program`] to pick the fusion pattern set.
#[derive(Debug, Clone)]
pub struct PairProfile {
    counts: Vec<u64>,
    prev: u8,
    tick: u32,
}

impl Default for PairProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl PairProfile {
    pub fn new() -> Self {
        PairProfile {
            counts: vec![0; OP_COUNT * OP_COUNT],
            prev: 0,
            tick: 0,
        }
    }

    /// One dispatch tick: every 16th records the (previous, current)
    /// opcode pair.
    #[inline]
    pub(crate) fn tick(&mut self, cur: Op) {
        let cur = cur as u8;
        self.tick = self.tick.wrapping_add(1);
        if self.tick & 0xF == 0 {
            self.counts[self.prev as usize * OP_COUNT + cur as usize] += 1;
        }
        self.prev = cur;
    }

    pub(crate) fn count(&self, prev: Op, cur: Op) -> u64 {
        self.counts[prev as usize * OP_COUNT + cur as usize]
    }

    /// The `n` hottest sampled pairs, descending.
    pub(crate) fn top_pairs(&self, n: usize) -> Vec<(Op, Op, u64)> {
        let mut pairs: Vec<(Op, Op, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                (
                    Op::from_u8((i / OP_COUNT) as u8),
                    Op::from_u8((i % OP_COUNT) as u8),
                    c,
                )
            })
            .collect();
        pairs.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
        pairs.truncate(n);
        pairs
    }

    /// Render the hottest pairs (the `purec --profile-pairs` report).
    pub fn report(&self, n: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (a, b, c) in self.top_pairs(n) {
            let _ = writeln!(out, "{c:>10}  {a:?} -> {b:?}");
        }
        out
    }

    /// Is this pair hot enough to justify a fused opcode? "Hot" means
    /// among the 16 most-sampled pairs of the profile.
    fn is_hot(&self, prev: Op, cur: Op) -> bool {
        let c = self.count(prev, cur);
        c > 0
            && self
                .top_pairs(16)
                .iter()
                .any(|&(a, b, _)| a == prev && b == cur)
    }
}

/// Should the fusion pattern anchored on `(prev, cur)` be applied?
/// Without a profile every pattern is on (the default set *is* the
/// measured hot set of the bench suite).
fn pattern_enabled(profile: Option<&PairProfile>, prev: Op, cur: Op) -> bool {
    profile.is_none_or(|p| p.is_hot(prev, cur))
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Optimize a freshly-compiled program at `level` (0 = identity,
/// 1 = fold/copy-prop/DSE, 2 = + hoisting, fusion and inline caches).
pub(crate) fn optimize_program(
    prog: &BytecodeProgram,
    level: u8,
    profile: Option<&PairProfile>,
) -> BytecodeProgram {
    let mut out = prog.clone();
    if level == 0 {
        return out;
    }
    for f in out
        .funcs
        .iter_mut()
        .chain(std::iter::once(&mut out.global_code))
    {
        optimize_func(f, level, profile);
    }
    if level >= 2 {
        // Monomorphic inline caches: every call site whose callee is
        // cacheable gets a slot; `CallUser.b` packs `nargs | (ic+1)<<16`.
        let cacheable: Vec<bool> = out.funcs.iter().map(|f| f.cacheable).collect();
        let mut ic = 0u32;
        for f in out
            .funcs
            .iter_mut()
            .chain(std::iter::once(&mut out.global_code))
        {
            for insn in &mut f.code {
                if insn.op == Op::CallUser
                    && insn.b < 0x1_0000
                    && cacheable.get(insn.a as usize).copied().unwrap_or(false)
                    && ic < 0xFFFE
                {
                    insn.b |= (ic + 1) << 16;
                    ic += 1;
                }
            }
        }
        out.ic_slots = ic as usize;
    }
    debug_assert!(
        check_targets(&out),
        "optimizer produced an out-of-bounds target"
    );
    out
}

/// Debug-build sanity: every jump target and region bound lands inside
/// its function and regions still point at `RegionEnd`.
fn check_targets(prog: &BytecodeProgram) -> bool {
    prog.funcs
        .iter()
        .chain(std::iter::once(&prog.global_code))
        .all(|f| {
            f.code.len() == f.spans.len()
                && f.code
                    .iter()
                    .all(|i| jump_target(i).is_none_or(|t| t < f.code.len()))
                && f.regions.iter().all(|r| {
                    (r.body_start as usize) < f.code.len()
                        && f.code[r.end as usize].op == Op::RegionEnd
                })
        })
}

fn optimize_func(f: &mut BFunc, level: u8, profile: Option<&PairProfile>) {
    for _ in 0..MAX_ROUNDS {
        let mut changed = copy_propagate(f);
        changed |= fold_windows(f);
        changed |= eliminate_dead_stores(f);
        changed |= cleanup_push_pop(f);
        if !changed {
            break;
        }
    }
    if level >= 2 {
        hoist_global_loads(f);
        fuse_superinstructions(f, profile);
    }
}

// ---------------------------------------------------------------------------
// CFG helpers
// ---------------------------------------------------------------------------

/// Absolute jump target carried by an instruction, if any.
fn jump_target(insn: &Insn) -> Option<usize> {
    match insn.op {
        Op::Jump | Op::JumpIfFalse | Op::JumpIfTrue | Op::SkipUnlessPtr => Some(insn.a as usize),
        Op::BrCmpLL | Op::BrCmpLC => Some((insn.b >> 6) as usize),
        Op::AffineHead | Op::AffineNext => Some((insn.b >> 2) as usize),
        _ => None,
    }
}

fn set_jump_target(insn: &mut Insn, t: usize) {
    match insn.op {
        Op::Jump | Op::JumpIfFalse | Op::JumpIfTrue | Op::SkipUnlessPtr => insn.a = t as u32,
        Op::BrCmpLL | Op::BrCmpLC => insn.b = (insn.b & 0x3F) | ((t as u32) << 6),
        Op::AffineHead | Op::AffineNext => insn.b = (insn.b & 0x3) | ((t as u32) << 2),
        _ => unreachable!("not a jump"),
    }
}

/// Does this instruction end its basic block? (Conditional jumps end a
/// block too — they have a fall-through successor.)
fn ends_block(op: Op) -> bool {
    matches!(
        op,
        Op::Jump
            | Op::JumpIfFalse
            | Op::JumpIfTrue
            | Op::SkipUnlessPtr
            | Op::BrCmpLL
            | Op::BrCmpLC
            | Op::Ret
            | Op::RetLocal
            | Op::Err
            | Op::MemberUnknownErr
            | Op::RegionEnd
            | Op::OmpRegion
            | Op::AffineHead
            | Op::AffineNext
    )
}

/// Does control *stop* here (no fall-through successor)?
fn is_terminator(op: Op) -> bool {
    matches!(
        op,
        Op::Jump | Op::Ret | Op::RetLocal | Op::Err | Op::MemberUnknownErr | Op::RegionEnd
    )
}

/// Basic-block leaders: entry, every jump target, every instruction
/// after a block-ender, and region body entries (entered by workers,
/// not by a jump).
fn leaders(f: &BFunc) -> Vec<bool> {
    let n = f.code.len();
    let mut lead = vec![false; n];
    if n == 0 {
        return lead;
    }
    lead[0] = true;
    for (pc, insn) in f.code.iter().enumerate() {
        if let Some(t) = jump_target(insn) {
            lead[t] = true;
        }
        if ends_block(insn.op) && pc + 1 < n {
            lead[pc + 1] = true;
        }
    }
    for r in &f.regions {
        lead[r.body_start as usize] = true;
        lead[r.end as usize] = true;
        if (r.end as usize) + 1 < n {
            lead[r.end as usize + 1] = true;
        }
    }
    lead
}

/// Remove every instruction whose `keep` flag is false, remapping jump
/// targets, region descriptors and spans. A dropped index maps to the
/// next kept instruction (sound: passes only drop instructions that are
/// no-ops on every path reaching them). Returns whether anything moved.
fn compact(f: &mut BFunc, keep: &[bool]) -> bool {
    let n = f.code.len();
    if keep.iter().all(|&k| k) {
        return false;
    }
    // map[old] = new index of the first kept instruction at-or-after old.
    let mut map = vec![0u32; n + 1];
    let mut new_len = 0u32;
    for i in 0..n {
        map[i] = new_len;
        if keep[i] {
            new_len += 1;
        }
    }
    map[n] = new_len;
    let mut code = Vec::with_capacity(new_len as usize);
    let mut spans = Vec::with_capacity(new_len as usize);
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if keep[i] {
            let mut insn = f.code[i];
            if let Some(t) = jump_target(&insn) {
                set_jump_target(&mut insn, map[t] as usize);
            }
            code.push(insn);
            spans.push(f.spans[i]);
        }
    }
    for r in &mut f.regions {
        debug_assert!(keep[r.body_start as usize] && keep[r.end as usize]);
        r.body_start = map[r.body_start as usize];
        r.end = map[r.end as usize];
    }
    f.code = code;
    f.spans = spans;
    true
}

// ---------------------------------------------------------------------------
// Constant evaluation (exact VM semantics, minus runtime errors)
// ---------------------------------------------------------------------------

/// Evaluate `l <op> r` exactly as the VM's `int_binop`/`apply_binop`
/// would, returning the value and the (int_ops, flops) it would have
/// counted — or `None` when the operation must stay at runtime (error
/// paths: division by a zero constant, bitwise on float).
fn eval_binop(op: BinOp, l: Scalar, r: Scalar) -> Option<(Scalar, u8, u8)> {
    use BinOp::*;
    if !matches!(l, Scalar::I(_) | Scalar::F(_)) || !matches!(r, Scalar::I(_) | Scalar::F(_)) {
        return None;
    }
    if l.is_float() || r.is_float() {
        let a = l.as_f64();
        let b = r.as_f64();
        let out = match op {
            Add => Scalar::F(a + b),
            Sub => Scalar::F(a - b),
            Mul => Scalar::F(a * b),
            Div => Scalar::F(a / b),
            Rem => Scalar::F(a % b),
            Lt => Scalar::I(i64::from(a < b)),
            Gt => Scalar::I(i64::from(a > b)),
            Le => Scalar::I(i64::from(a <= b)),
            Ge => Scalar::I(i64::from(a >= b)),
            Eq => Scalar::I(i64::from(a == b)),
            Ne => Scalar::I(i64::from(a != b)),
            Shl | Shr | BitAnd | BitXor | BitOr | And | Or => return None,
        };
        Some((out, 0, 1))
    } else {
        let a = l.as_i64();
        let b = r.as_i64();
        let v = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            Shl => a.wrapping_shl(b as u32),
            Shr => a.wrapping_shr(b as u32),
            Lt => i64::from(a < b),
            Gt => i64::from(a > b),
            Le => i64::from(a <= b),
            Ge => i64::from(a >= b),
            Eq => i64::from(a == b),
            Ne => i64::from(a != b),
            BitAnd => a & b,
            BitXor => a ^ b,
            BitOr => a | b,
            And | Or => return None,
        };
        Some((Scalar::I(v), 1, 0))
    }
}

/// Mirror of a compare under operand swap (`c < x` ⇔ `x > c`), used to
/// turn `Const ⊕ Local` into the fused `BinLC` shape. Exact for floats
/// too (a true mirror, not a negation — NaN compares stay false).
fn mirrored(op: BinOp) -> Option<BinOp> {
    use BinOp::*;
    Some(match op {
        Add | Mul | BitAnd | BitXor | BitOr | Eq | Ne => op,
        Lt => Gt,
        Gt => Lt,
        Le => Ge,
        Ge => Le,
        _ => return None,
    })
}

/// Find-or-append a constant in the pool, comparing by tagged bit
/// pattern (distinguishes `I` from `F`, `-0.0` from `0.0`, NaN-safe).
fn intern_const(f: &mut BFunc, v: Scalar) -> Option<u32> {
    fn key(s: Scalar) -> Option<(u8, u64)> {
        match s {
            Scalar::I(i) => Some((0, i as u64)),
            Scalar::F(x) => Some((1, x.to_bits())),
            _ => None,
        }
    }
    let k = key(v)?;
    if let Some(i) = f.consts.iter().position(|&c| key(c) == Some(k)) {
        return Some(i as u32);
    }
    f.consts.push(v);
    Some((f.consts.len() - 1) as u32)
}

/// `ConstFold` compensation: counters the folded instructions would
/// have bumped, plus the dispatches eliminated.
#[derive(Clone, Copy, Default)]
struct Comp {
    int_ops: u32,
    flops: u32,
    saved: u32,
}

impl Comp {
    fn encode(self) -> Option<u32> {
        if self.int_ops > 0xFF || self.flops > 0xFF || self.saved > 0xFFFF {
            return None;
        }
        Some(self.int_ops | (self.flops << 8) | (self.saved << 16))
    }

    fn decode(b: u32) -> Comp {
        Comp {
            int_ops: b & 0xFF,
            flops: (b >> 8) & 0xFF,
            saved: b >> 16,
        }
    }

    fn add(self, o: Comp) -> Comp {
        Comp {
            int_ops: self.int_ops + o.int_ops,
            flops: self.flops + o.flops,
            saved: self.saved + o.saved,
        }
    }
}

/// A `Const` or `ConstFold` instruction viewed as "push this known
/// constant, with this counter compensation".
fn const_like(f: &BFunc, insn: &Insn) -> Option<(Scalar, Comp)> {
    match insn.op {
        Op::Const => Some((f.consts[insn.a as usize], Comp::default())),
        Op::ConstFold => Some((f.consts[insn.a as usize], Comp::decode(insn.b))),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pass: window constant folding
// ---------------------------------------------------------------------------

/// Fold constant windows inside basic blocks: `Const/ConstFold` chains
/// feeding `Binary`, unary operators and `Coerce` collapse to a single
/// `ConstFold` carrying the summed counter compensation. Window
/// followers must not be leaders (a jump could land mid-pattern and
/// observe the intermediate stack).
fn fold_windows(f: &mut BFunc) -> bool {
    let lead = leaders(f);
    let n = f.code.len();
    let mut keep = vec![true; n];
    let mut changed = false;
    let mut i = 0;
    while i < n {
        if !keep[i] {
            i += 1;
            continue;
        }
        // [const, const, Binary] -> ConstFold
        if i + 2 < n && !lead[i + 1] && !lead[i + 2] && f.code[i + 2].op == Op::Binary {
            if let (Some((lv, lc)), Some((rv, rc))) =
                (const_like(f, &f.code[i]), const_like(f, &f.code[i + 1]))
            {
                let op = binop_decode(f.code[i + 2].a);
                if let Some((out, ints, fls)) = eval_binop(op, lv, rv) {
                    let comp = lc.add(rc).add(Comp {
                        int_ops: ints as u32,
                        flops: fls as u32,
                        saved: 2,
                    });
                    if let (Some(b), Some(cidx)) = (comp.encode(), intern_const(f, out)) {
                        f.code[i] = Insn {
                            op: Op::ConstFold,
                            a: cidx,
                            b,
                        };
                        keep[i + 1] = false;
                        keep[i + 2] = false;
                        changed = true;
                        i += 3;
                        continue;
                    }
                }
            }
        }
        // [const, unary/Coerce] -> ConstFold
        if i + 1 < n && !lead[i + 1] {
            if let Some((v, c)) = const_like(f, &f.code[i]) {
                let next = f.code[i + 1];
                let folded: Option<(Scalar, Comp)> = match (next.op, v) {
                    (Op::UnaryNeg, Scalar::I(x)) => Some((
                        Scalar::I(x.wrapping_neg()),
                        Comp {
                            int_ops: 1,
                            ..Comp::default()
                        },
                    )),
                    (Op::UnaryNeg, Scalar::F(x)) => Some((
                        Scalar::F(-x),
                        Comp {
                            flops: 1,
                            ..Comp::default()
                        },
                    )),
                    (Op::UnaryNot, Scalar::I(x)) => {
                        Some((Scalar::I(i64::from(x == 0)), Comp::default()))
                    }
                    (Op::UnaryBitNot, Scalar::I(x)) => Some((Scalar::I(!x), Comp::default())),
                    (Op::Truthy, Scalar::I(x)) => {
                        Some((Scalar::I(i64::from(x != 0)), Comp::default()))
                    }
                    (Op::Truthy, Scalar::F(x)) => {
                        Some((Scalar::I(i64::from(x != 0.0)), Comp::default()))
                    }
                    (Op::Coerce, Scalar::I(x)) if next.a == 0 => {
                        Some((Scalar::F(x as f64), Comp::default()))
                    }
                    (Op::Coerce, Scalar::F(x)) if next.a == 1 => {
                        Some((Scalar::I(x as i64), Comp::default()))
                    }
                    (Op::Coerce, _) => Some((v, Comp::default())),
                    _ => None,
                };
                if let Some((out, oc)) = folded {
                    let comp = c.add(oc).add(Comp {
                        saved: 1,
                        ..Comp::default()
                    });
                    if let (Some(b), Some(cidx)) = (comp.encode(), intern_const(f, out)) {
                        f.code[i] = Insn {
                            op: Op::ConstFold,
                            a: cidx,
                            b,
                        };
                        keep[i + 1] = false;
                        changed = true;
                        i += 2;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    // A ConstFold with an all-zero compensation is just a Const.
    for insn in &mut f.code {
        if insn.op == Op::ConstFold && insn.b == 0 {
            insn.op = Op::Const;
            changed = true;
        }
    }
    compact(f, &keep);
    changed
}

// ---------------------------------------------------------------------------
// Pass: block-local copy / constant propagation
// ---------------------------------------------------------------------------

/// What a frame slot is known to hold at this point of the block.
#[derive(Clone, Copy, PartialEq)]
enum Fact {
    /// `frame[slot] == consts[idx]`.
    Const(u32),
    /// `frame[slot] == frame[src]` (value copied from `src`).
    Copy(u32),
}

/// Symbolic operand-stack entry. The symbolic stack models only the
/// values this block pushed; pops past its depth reach values pushed by
/// predecessor blocks (ternaries span blocks) and are simply unknown.
#[derive(Clone, Copy)]
enum Sym {
    Unknown,
    Const(u32),
    Slot(u32),
}

/// Forward walk per basic block rewriting instructions 1:1 (no index
/// changes): `LoadLocal` of a known-const slot becomes `Const`, loads
/// of copies are renumbered to the original slot (exposing dead
/// stores), `BinLL`/`BinLC` with known-const operands fold to
/// `ConstFold`, and `Local ⊕ Const` shapes collapse to `BinLC`.
fn copy_propagate(f: &mut BFunc) -> bool {
    let lead = leaders(f);
    let mut changed = false;
    let mut facts: Vec<Option<Fact>> = vec![None; f.frame_size.max(1)];
    let mut stack: Vec<Sym> = Vec::new();
    let spawn_slots: Vec<u32> = f.spawns.iter().map(|s| s.slot).collect();
    let spawn_nargs: Vec<u32> = f.spawns.iter().map(|s| s.nargs).collect();

    #[allow(clippy::needless_range_loop)]
    for i in 0..f.code.len() {
        if lead[i] {
            facts.iter_mut().for_each(|x| *x = None);
            stack.clear();
        }
        let insn = f.code[i];

        // -- rewrites (1:1, applied before the effect update) --------------
        let resolve = |facts: &[Option<Fact>], slot: u32| -> (u32, Option<u32>) {
            // (possibly renumbered slot, known const index)
            match facts.get(slot as usize).copied().flatten() {
                Some(Fact::Const(c)) => (slot, Some(c)),
                Some(Fact::Copy(src)) => (src, None),
                None => (slot, None),
            }
        };
        match insn.op {
            Op::LoadLocal => {
                let (slot, konst) = resolve(&facts, insn.a);
                if let Some(c) = konst {
                    f.code[i] = Insn {
                        op: Op::Const,
                        a: c,
                        b: 0,
                    };
                    changed = true;
                } else if slot != insn.a {
                    f.code[i].a = slot;
                    changed = true;
                }
            }
            Op::BinLL => {
                let (x, kx) = resolve(&facts, insn.a & 0xFFFF);
                let (y, ky) = resolve(&facts, insn.a >> 16);
                let op = binop_decode(insn.b);
                let folded = match (kx, ky) {
                    (Some(cx), Some(cy)) => {
                        eval_binop(op, f.consts[cx as usize], f.consts[cy as usize]).and_then(
                            |(out, ints, fls)| {
                                let comp = Comp {
                                    int_ops: ints as u32,
                                    flops: fls as u32,
                                    saved: 0,
                                };
                                Some((out, comp.encode()?))
                            },
                        )
                    }
                    _ => None,
                };
                if let Some((out, b)) = folded {
                    if let Some(cidx) = intern_const(f, out) {
                        f.code[i] = Insn {
                            op: Op::ConstFold,
                            a: cidx,
                            b,
                        };
                        changed = true;
                    }
                } else if let (None, Some(cy)) = (kx, ky) {
                    if cy < 0x1_0000 && x < 0x1_0000 {
                        f.code[i] = Insn {
                            op: Op::BinLC,
                            a: x | (cy << 16),
                            b: insn.b,
                        };
                        changed = true;
                    }
                } else if let (Some(cx), None) = (kx, ky) {
                    if let Some(m) = mirrored(op) {
                        if cx < 0x1_0000 && y < 0x1_0000 {
                            f.code[i] = Insn {
                                op: Op::BinLC,
                                a: y | (cx << 16),
                                b: binop_encode(m),
                            };
                            changed = true;
                        }
                    }
                } else if (x != insn.a & 0xFFFF || y != insn.a >> 16)
                    && x < 0x1_0000
                    && y < 0x1_0000
                {
                    f.code[i].a = x | (y << 16);
                    changed = true;
                }
            }
            Op::BinLC => {
                let (x, kx) = resolve(&facts, insn.a & 0xFFFF);
                let cy = insn.a >> 16;
                let op = binop_decode(insn.b);
                if let Some(cx) = kx {
                    if let Some((out, ints, fls)) =
                        eval_binop(op, f.consts[cx as usize], f.consts[cy as usize])
                    {
                        let comp = Comp {
                            int_ops: ints as u32,
                            flops: fls as u32,
                            saved: 0,
                        };
                        if let (Some(b), Some(cidx)) = (comp.encode(), intern_const(f, out)) {
                            f.code[i] = Insn {
                                op: Op::ConstFold,
                                a: cidx,
                                b,
                            };
                            changed = true;
                        }
                    }
                } else if x != insn.a & 0xFFFF && x < 0x1_0000 {
                    f.code[i].a = x | (cy << 16);
                    changed = true;
                }
            }
            Op::LoadIdxLL | Op::StoreIdxLL | Op::CompoundIdxLL => {
                let (x, kx) = resolve(&facts, insn.a & 0xFFFF);
                let (y, ky) = resolve(&facts, insn.a >> 16);
                // Only renumber copies; a const base/index stays (memory
                // ops need the slot's packed word semantics anyway).
                if kx.is_none()
                    && ky.is_none()
                    && (x != insn.a & 0xFFFF || y != insn.a >> 16)
                    && x < 0x1_0000
                    && y < 0x1_0000
                {
                    f.code[i].a = x | (y << 16);
                    changed = true;
                }
            }
            _ => {}
        }

        // -- effect update on facts and the symbolic stack -----------------
        let insn = f.code[i]; // possibly rewritten
        let kill = |facts: &mut Vec<Option<Fact>>, stack: &mut Vec<Sym>, slot: u32| {
            if let Some(x) = facts.get_mut(slot as usize) {
                *x = None;
            }
            for x in facts.iter_mut() {
                if *x == Some(Fact::Copy(slot)) {
                    *x = None;
                }
            }
            for s in stack.iter_mut() {
                if let Sym::Slot(y) = s {
                    if *y == slot {
                        *s = Sym::Unknown;
                    }
                }
            }
        };
        let fact_of = |sym: Sym, slot: u32| -> Option<Fact> {
            match sym {
                Sym::Const(c) => Some(Fact::Const(c)),
                Sym::Slot(src) if src != slot => Some(Fact::Copy(src)),
                _ => None,
            }
        };
        match insn.op {
            Op::Step | Op::BumpBranch => {}
            Op::Const | Op::ConstFold => stack.push(Sym::Const(insn.a)),
            Op::StrNew | Op::PushUninit | Op::LoadGlobal | Op::AllocStruct => {
                stack.push(Sym::Unknown)
            }
            Op::LoadLocal => stack.push(Sym::Slot(insn.a)),
            Op::StoreLocal => {
                let sym = stack.last().copied().unwrap_or(Sym::Unknown);
                kill(&mut facts, &mut stack, insn.a);
                if let Some(fact) = fact_of(sym, insn.a) {
                    facts[insn.a as usize] = Some(fact);
                }
            }
            Op::StoreLocalPop => {
                let sym = stack.pop().unwrap_or(Sym::Unknown);
                kill(&mut facts, &mut stack, insn.a);
                if let Some(fact) = fact_of(sym, insn.a) {
                    facts[insn.a as usize] = Some(fact);
                }
            }
            Op::StoreGlobal => {}
            Op::StoreGlobalPop => {
                stack.pop();
            }
            Op::Dup => {
                let top = stack.last().copied().unwrap_or(Sym::Unknown);
                stack.push(top);
            }
            Op::Pop => {
                stack.pop();
            }
            Op::UnaryNeg
            | Op::UnaryNot
            | Op::UnaryBitNot
            | Op::Truthy
            | Op::Coerce
            | Op::DerefLoad
            | Op::LoadMem
            | Op::LoadIdxConst
            | Op::PtrMember => {
                stack.pop();
                stack.push(Sym::Unknown);
            }
            Op::PtrDeref => {} // pushes the popped value back unchanged
            Op::Binary | Op::PtrIndex => {
                stack.pop();
                stack.pop();
                stack.push(Sym::Unknown);
            }
            Op::BinLL | Op::BinLC | Op::LoadIdxLL | Op::LoadIdxLC => stack.push(Sym::Unknown),
            Op::StoreIdxLL | Op::StoreIdxLC => {
                if insn.b == 1 {
                    stack.pop();
                }
            }
            Op::StoreMem => {
                // pops ptr and value; pushes the value back when b == 0
                stack.pop();
                let v = stack.pop().unwrap_or(Sym::Unknown);
                if insn.b == 0 {
                    stack.push(v);
                }
            }
            Op::StoreIdxConst => {
                stack.pop();
                stack.pop();
            }
            Op::CompoundLocal => {
                stack.pop();
                kill(&mut facts, &mut stack, insn.a);
                if insn.b & 0x100 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::CompoundGlobal => {
                stack.pop();
                if insn.b & 0x100 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::CompoundMem => {
                stack.pop();
                stack.pop();
                if insn.b == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::CompoundIdxLL => {
                stack.pop();
                if insn.b & 0x100 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::IncDecLocal => {
                kill(&mut facts, &mut stack, insn.a);
                if insn.b & 4 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::IncDecGlobal => {
                if insn.b & 4 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::IncDecMem => {
                stack.pop();
                if insn.b & 4 == 0 {
                    stack.push(Sym::Unknown);
                }
            }
            Op::CallUser => {
                for _ in 0..(insn.b & 0xFFFF) {
                    stack.pop();
                }
                stack.push(Sym::Unknown);
            }
            Op::CallBuiltin => {
                for _ in 0..insn.b {
                    stack.pop();
                }
                stack.push(Sym::Unknown);
            }
            Op::Printf => {
                for _ in 0..insn.b {
                    stack.pop();
                }
                if insn.a == u32::MAX {
                    stack.pop();
                }
                stack.push(Sym::Unknown);
            }
            Op::AllocArray => {
                for _ in 0..insn.a {
                    stack.pop();
                }
                stack.push(Sym::Unknown);
            }
            Op::SpawnPure => {
                for _ in 0..spawn_nargs[insn.a as usize] {
                    stack.pop();
                }
                kill(&mut facts, &mut stack, spawn_slots[insn.a as usize]);
            }
            Op::AwaitSlot => kill(&mut facts, &mut stack, insn.a),
            Op::ConstStore => {
                kill(&mut facts, &mut stack, insn.b);
                facts[insn.b as usize] = Some(Fact::Const(insn.a));
            }
            Op::BinLLStore | Op::BinLCStore => kill(&mut facts, &mut stack, insn.b >> 16),
            Op::LoadIdxLLStore => kill(&mut facts, &mut stack, insn.b),
            Op::LoadGStore => kill(&mut facts, &mut stack, insn.b),
            // Block enders: the next instruction is a leader and resets
            // the analysis state.
            Op::Jump
            | Op::JumpIfFalse
            | Op::JumpIfTrue
            | Op::SkipUnlessPtr
            | Op::BrCmpLL
            | Op::BrCmpLC
            | Op::Ret
            | Op::RetLocal
            | Op::Err
            | Op::MemberUnknownErr
            | Op::RegionEnd
            | Op::OmpRegion
            | Op::AffineHead
            | Op::AffineNext => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Pass: dead-store elimination (slot liveness over the CFG)
// ---------------------------------------------------------------------------

/// Backward transfer of one instruction over the slot-liveness set:
/// `live_before = (live_after − defs) ∪ uses`.
fn liveness_step(insn: &Insn, live: &mut [bool]) {
    // Kill pure definitions first.
    match insn.op {
        Op::StoreLocal | Op::StoreLocalPop => live[insn.a as usize] = false,
        Op::ConstStore | Op::LoadGStore | Op::LoadIdxLLStore => live[insn.b as usize] = false,
        Op::BinLLStore | Op::BinLCStore => live[(insn.b >> 16) as usize] = false,
        _ => {}
    }
    // Then add uses.
    match insn.op {
        Op::LoadLocal | Op::RetLocal => live[insn.a as usize] = true,
        Op::BinLL
        | Op::LoadIdxLL
        | Op::StoreIdxLL
        | Op::CompoundIdxLL
        | Op::BrCmpLL
        | Op::BinLLStore
        | Op::LoadIdxLLStore => {
            live[(insn.a & 0xFFFF) as usize] = true;
            live[(insn.a >> 16) as usize] = true;
        }
        Op::BinLC | Op::LoadIdxLC | Op::StoreIdxLC | Op::BrCmpLC | Op::BinLCStore => {
            live[(insn.a & 0xFFFF) as usize] = true;
        }
        // Counted read-modify-writes: both a use and a def (never
        // deleted — they bump executed-op counters).
        Op::CompoundLocal | Op::IncDecLocal | Op::AwaitSlot => live[insn.a as usize] = true,
        // Iterator is a read-modify-write like `IncDecLocal`; the upper
        // half is a slot only when the const bit (`b & 2`) is clear —
        // a const-pool index must never be marked in the frame set.
        Op::AffineHead | Op::AffineNext => {
            live[(insn.a & 0xFFFF) as usize] = true;
            if insn.b & 2 == 0 {
                live[(insn.a >> 16) as usize] = true;
            }
        }
        // The whole frame is snapshot into the workers.
        Op::OmpRegion => live.iter_mut().for_each(|x| *x = true),
        _ => {}
    }
}

/// Use/def slot of a `SpawnPure` (the target slot is written by the
/// spawn — possibly inline — and must stay observable at the matching
/// `AwaitSlot`); treated as a use so stores feeding the spawn's frame
/// template never look dead.
fn spawn_use(f: &BFunc, insn: &Insn, live: &mut [bool]) {
    if insn.op == Op::SpawnPure {
        live[f.spawns[insn.a as usize].slot as usize] = true;
    }
}

/// Delete `StoreLocal`s (and rewrite `StoreLocalPop`s to `Pop`) whose
/// slot is dead: not read on any path to a block exit. Liveness runs
/// over the absolute-jump CFG with region bodies as separate roots
/// (their `RegionEnd` exits with nothing live — per-iteration frames
/// are snapshot copies, so body writes never flow back to the parent).
fn eliminate_dead_stores(f: &mut BFunc) -> bool {
    let n = f.code.len();
    let fs = f.frame_size;
    if n == 0 || fs == 0 {
        return false;
    }
    let lead = leaders(f);
    let starts: Vec<usize> = (0..n).filter(|&i| lead[i]).collect();
    let nb = starts.len();
    let mut block_of = vec![0usize; n];
    {
        let mut cur = 0;
        for (i, b) in block_of.iter_mut().enumerate() {
            if cur + 1 < nb && starts[cur + 1] == i {
                cur += 1;
            }
            *b = cur;
        }
    }
    let block_end = |bi: usize| {
        if bi + 1 < nb {
            starts[bi + 1] - 1
        } else {
            n - 1
        }
    };
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nb];
    #[allow(clippy::needless_range_loop)]
    for bi in 0..nb {
        let e = block_end(bi);
        let last = f.code[e];
        if last.op == Op::OmpRegion {
            // The parent resumes after the region's RegionEnd; body
            // blocks belong to the workers (separate roots).
            let after = f.regions[last.a as usize].end as usize + 1;
            if after < n {
                succ[bi].push(block_of[after]);
            }
            continue;
        }
        if let Some(t) = jump_target(&last) {
            succ[bi].push(block_of[t]);
        }
        if !is_terminator(last.op) && e + 1 < n {
            succ[bi].push(block_of[e + 1]);
        }
    }

    // Fixpoint: block live-in sets.
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; fs]; nb];
    loop {
        let mut moved = false;
        for bi in (0..nb).rev() {
            let mut live = vec![false; fs];
            for &sb in &succ[bi] {
                for (i, v) in live_in[sb].iter().enumerate() {
                    if *v {
                        live[i] = true;
                    }
                }
            }
            for i in (starts[bi]..=block_end(bi)).rev() {
                liveness_step(&f.code[i], &mut live);
                spawn_use(f, &f.code[i], &mut live);
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Rewrite: one more backward walk per block with the solved sets.
    let mut keep = vec![true; n];
    let mut changed = false;
    for bi in 0..nb {
        let mut live = vec![false; fs];
        for &sb in &succ[bi] {
            for (i, v) in live_in[sb].iter().enumerate() {
                if *v {
                    live[i] = true;
                }
            }
        }
        for i in (starts[bi]..=block_end(bi)).rev() {
            let insn = f.code[i];
            match insn.op {
                Op::StoreLocal if !live[insn.a as usize] => {
                    // Peeks: deleting it is stack-neutral.
                    keep[i] = false;
                    changed = true;
                }
                Op::StoreLocalPop if !live[insn.a as usize] => {
                    f.code[i] = Insn {
                        op: Op::Pop,
                        a: 0,
                        b: 0,
                    };
                    changed = true;
                }
                _ => {}
            }
            liveness_step(&f.code[i], &mut live);
            spawn_use(f, &f.code[i], &mut live);
        }
    }
    compact(f, &keep);
    changed
}

// ---------------------------------------------------------------------------
// Pass: push/Pop cleanup peephole
// ---------------------------------------------------------------------------

/// Delete `[side-effect-free push, Pop]` pairs (the residue DSE leaves
/// behind when it rewrites a dead `StoreLocalPop` to `Pop`). `ConstFold`
/// is excluded — it carries counter compensation that must still
/// execute.
fn cleanup_push_pop(f: &mut BFunc) -> bool {
    let lead = leaders(f);
    let n = f.code.len();
    let mut keep = vec![true; n];
    let mut changed = false;
    let mut i = 0;
    while i + 1 < n {
        if keep[i]
            && !lead[i + 1]
            && f.code[i + 1].op == Op::Pop
            && matches!(
                f.code[i].op,
                Op::Const | Op::LoadLocal | Op::PushUninit | Op::LoadGlobal | Op::Dup
            )
        {
            keep[i] = false;
            keep[i + 1] = false;
            changed = true;
            i += 2;
            continue;
        }
        i += 1;
    }
    compact(f, &keep);
    changed
}

// ---------------------------------------------------------------------------
// Pass: loop-invariant global-load hoisting
// ---------------------------------------------------------------------------

/// Hoist `LoadGlobal`s out of single-entry loops that provably leave
/// the global table untouched (no global stores, no calls, no parallel
/// constructs — a call could store globals transitively). Each hoisted
/// global costs one fused `LoadGStore` dispatch per loop *entry* and
/// turns every in-loop read into a `LoadLocal` the fusion pass folds
/// further. Memory loads are counted and never hoisted.
fn hoist_global_loads(f: &mut BFunc) -> bool {
    let n = f.code.len();
    if n == 0 {
        return false;
    }
    // Natural-loop candidates: one per back-edge target, widest
    // back-edge span wins.
    let mut heads: Vec<(usize, usize)> = Vec::new(); // (head, max back-edge pc)
    for (pc, insn) in f.code.iter().enumerate() {
        if let Some(t) = jump_target(insn) {
            if t <= pc {
                match heads.iter_mut().find(|(h, _)| *h == t) {
                    Some((_, e)) => *e = (*e).max(pc),
                    None => heads.push((t, pc)),
                }
            }
        }
    }
    if heads.is_empty() {
        return false;
    }
    // Outermost loops first, so a nested LoadGlobal hoists all the way
    // out in one step and the inner loop then has nothing left to do.
    heads.sort_by_key(|&(h, e)| std::cmp::Reverse(e - h));
    let region_ranges: Vec<(usize, usize)> = f
        .regions
        .iter()
        .map(|r| (r.body_start as usize, r.end as usize))
        .collect();

    let mut insertions: Vec<(usize, Vec<Insn>)> = Vec::new(); // head -> preheader insns
    let mut changed = false;
    for (head, end) in heads {
        // Single entry: no jump from outside the range into its middle.
        let outside_entry = f.code.iter().enumerate().any(|(pc, insn)| {
            (pc < head || pc > end) && jump_target(insn).is_some_and(|t| t > head && t <= end)
        });
        let banned = f.code[head..=end].iter().any(|insn| {
            matches!(
                insn.op,
                Op::OmpRegion
                    | Op::RegionEnd
                    | Op::SpawnPure
                    | Op::AwaitSlot
                    | Op::CallUser
                    | Op::CallBuiltin
                    | Op::Printf
                    | Op::StoreGlobal
                    | Op::StoreGlobalPop
                    | Op::CompoundGlobal
                    | Op::IncDecGlobal
                    | Op::LoadGStore
            )
        });
        let in_region = region_ranges.iter().any(|&(s, e)| s <= end && head <= e);
        if outside_entry || banned || in_region {
            continue;
        }
        let mut slot_of: Vec<(u32, u32)> = Vec::new(); // global -> tmp slot
        let mut pre: Vec<Insn> = Vec::new();
        for i in head..=end {
            if f.code[i].op == Op::LoadGlobal {
                let g = f.code[i].a;
                let tmp = match slot_of.iter().find(|(gg, _)| *gg == g) {
                    Some(&(_, t)) => t,
                    None => {
                        let t = f.frame_size as u32;
                        f.frame_size += 1;
                        slot_of.push((g, t));
                        pre.push(Insn {
                            op: Op::LoadGStore,
                            a: g,
                            b: t,
                        });
                        t
                    }
                };
                f.code[i] = Insn {
                    op: Op::LoadLocal,
                    a: tmp,
                    b: 0,
                };
                changed = true;
            }
        }
        if !pre.is_empty() {
            insertions.push((head, pre));
        }
    }
    if insertions.is_empty() {
        return changed;
    }

    // One rebuild with dual maps: entries into a hoisted loop run its
    // preheader (`map_pre`), back edges skip it (`map_insn`).
    let mut map_pre = vec![0u32; n];
    let mut map_insn = vec![0u32; n];
    let mut code: Vec<Insn> = Vec::with_capacity(n + 4);
    let mut spans = Vec::with_capacity(n + 4);
    for i in 0..n {
        map_pre[i] = code.len() as u32;
        if let Some((_, pre)) = insertions.iter().find(|(h, _)| *h == i) {
            for &x in pre {
                code.push(x);
                spans.push(f.spans[i]);
            }
        }
        map_insn[i] = code.len() as u32;
        code.push(f.code[i]);
        spans.push(f.spans[i]);
    }
    for p in 0..n {
        let insn = &mut code[map_insn[p] as usize];
        if let Some(t) = jump_target(insn) {
            let new_t = if t <= p { map_insn[t] } else { map_pre[t] };
            set_jump_target(insn, new_t as usize);
        }
    }
    for r in &mut f.regions {
        // Loops intersecting regions are banned, so no preheader lands
        // inside one and both bounds map 1:1.
        r.body_start = map_insn[r.body_start as usize];
        r.end = map_insn[r.end as usize];
    }
    f.code = code;
    f.spans = spans;
    true
}

// ---------------------------------------------------------------------------
// Pass: superinstruction fusion (profile-guided)
// ---------------------------------------------------------------------------

/// Fuse adjacent windows into superinstructions. Runs a few rounds so a
/// first-round product (`BinLL` formed from loads) can anchor a
/// second-round pattern (`BinLL` + branch → `BrCmpLL`). Windows never
/// cross block boundaries: every follower must not be a leader.
fn fuse_superinstructions(f: &mut BFunc, profile: Option<&PairProfile>) -> bool {
    let mut any = false;
    for _ in 0..4 {
        if !fuse_round(f, profile) {
            break;
        }
        any = true;
    }
    any
}

fn fuse_round(f: &mut BFunc, profile: Option<&PairProfile>) -> bool {
    let lead = leaders(f);
    let n = f.code.len();
    let mut keep = vec![true; n];
    let mut changed = false;
    let mut i = 0;
    while i < n {
        if !keep[i] {
            i += 1;
            continue;
        }
        let cur = f.code[i];
        let follower = |k: usize| i + k < n && !lead[i + k];

        // [BumpBranch, BinLL/BinLC, JumpIf*] → BrCmp with the bump bit:
        // the for/while condition shape.
        if cur.op == Op::BumpBranch && follower(1) && follower(2) {
            let b1 = f.code[i + 1];
            let b2 = f.code[i + 2];
            if matches!(b1.op, Op::BinLL | Op::BinLC)
                && matches!(b2.op, Op::JumpIfFalse | Op::JumpIfTrue)
                && b1.b <= 0xF
                && (b2.a as usize) < (1 << 26)
                && pattern_enabled(profile, b1.op, b2.op)
            {
                let sense = (b2.op == Op::JumpIfTrue) as u32;
                let op = if b1.op == Op::BinLL {
                    Op::BrCmpLL
                } else {
                    Op::BrCmpLC
                };
                f.code[i] = Insn {
                    op,
                    a: b1.a,
                    b: (b2.a << 6) | (1 << 5) | (sense << 4) | b1.b,
                };
                keep[i + 1] = false;
                keep[i + 2] = false;
                changed = true;
                i += 3;
                continue;
            }
        }

        // [BinLL/BinLC, JumpIf*] → BrCmp; [BinLL/BinLC, StoreLocalPop] →
        // Bin*Store.
        if matches!(cur.op, Op::BinLL | Op::BinLC) && follower(1) {
            let b2 = f.code[i + 1];
            if matches!(b2.op, Op::JumpIfFalse | Op::JumpIfTrue)
                && cur.b <= 0xF
                && (b2.a as usize) < (1 << 26)
                && pattern_enabled(profile, cur.op, b2.op)
            {
                let sense = (b2.op == Op::JumpIfTrue) as u32;
                let op = if cur.op == Op::BinLL {
                    Op::BrCmpLL
                } else {
                    Op::BrCmpLC
                };
                f.code[i] = Insn {
                    op,
                    a: cur.a,
                    b: (b2.a << 6) | (sense << 4) | cur.b,
                };
                keep[i + 1] = false;
                changed = true;
                i += 2;
                continue;
            }
            if b2.op == Op::StoreLocalPop
                && b2.a < 0x1_0000
                && cur.b <= 0xFF
                && pattern_enabled(profile, cur.op, Op::StoreLocalPop)
            {
                let op = if cur.op == Op::BinLL {
                    Op::BinLLStore
                } else {
                    Op::BinLCStore
                };
                f.code[i] = Insn {
                    op,
                    a: cur.a,
                    b: cur.b | (b2.a << 16),
                };
                keep[i + 1] = false;
                changed = true;
                i += 2;
                continue;
            }
        }

        // [LoadLocal, Const, PtrIndex, LoadMem/StoreMem] → LoadIdxLC /
        // StoreIdxLC: the local-base/const-index element access.
        if cur.op == Op::LoadLocal && follower(1) && follower(2) && follower(3) {
            let c = f.code[i + 1];
            let px = f.code[i + 2];
            let m = f.code[i + 3];
            if c.op == Op::Const
                && px.op == Op::PtrIndex
                && cur.a < 0x1_0000
                && c.a < 0x1_0000
                && matches!(f.consts[c.a as usize], Scalar::I(_))
            {
                let fused = match m.op {
                    Op::LoadMem if pattern_enabled(profile, Op::PtrIndex, Op::LoadMem) => {
                        Some((Op::LoadIdxLC, 0))
                    }
                    Op::StoreMem if pattern_enabled(profile, Op::PtrIndex, Op::StoreMem) => {
                        Some((Op::StoreIdxLC, m.b))
                    }
                    _ => None,
                };
                if let Some((op, b)) = fused {
                    f.code[i] = Insn {
                        op,
                        a: cur.a | (c.a << 16),
                        b,
                    };
                    keep[i + 1] = false;
                    keep[i + 2] = false;
                    keep[i + 3] = false;
                    changed = true;
                    i += 4;
                    continue;
                }
            }
        }

        // [LoadLocal, LoadLocal/Const, Binary] → BinLL/BinLC (the shapes
        // hoisting exposes); [LoadLocal, Ret] → RetLocal.
        if cur.op == Op::LoadLocal && follower(1) {
            let b2 = f.code[i + 1];
            if b2.op == Op::LoadLocal
                && follower(2)
                && f.code[i + 2].op == Op::Binary
                && cur.a < 0x1_0000
                && b2.a < 0x1_0000
                && pattern_enabled(profile, Op::LoadLocal, Op::LoadLocal)
            {
                f.code[i] = Insn {
                    op: Op::BinLL,
                    a: cur.a | (b2.a << 16),
                    b: f.code[i + 2].a,
                };
                keep[i + 1] = false;
                keep[i + 2] = false;
                changed = true;
                i += 3;
                continue;
            }
            if b2.op == Op::Const
                && follower(2)
                && f.code[i + 2].op == Op::Binary
                && cur.a < 0x1_0000
                && b2.a < 0x1_0000
                && pattern_enabled(profile, Op::LoadLocal, Op::Const)
            {
                f.code[i] = Insn {
                    op: Op::BinLC,
                    a: cur.a | (b2.a << 16),
                    b: f.code[i + 2].a,
                };
                keep[i + 1] = false;
                keep[i + 2] = false;
                changed = true;
                i += 3;
                continue;
            }
            if b2.op == Op::Ret && pattern_enabled(profile, Op::LoadLocal, Op::Ret) {
                f.code[i] = Insn {
                    op: Op::RetLocal,
                    a: cur.a,
                    b: 0,
                };
                keep[i + 1] = false;
                changed = true;
                i += 2;
                continue;
            }
        }

        // [Const, StoreLocalPop] → ConstStore (declaration inits).
        if cur.op == Op::Const
            && follower(1)
            && f.code[i + 1].op == Op::StoreLocalPop
            && pattern_enabled(profile, Op::Const, Op::StoreLocalPop)
        {
            f.code[i] = Insn {
                op: Op::ConstStore,
                a: cur.a,
                b: f.code[i + 1].a,
            };
            keep[i + 1] = false;
            changed = true;
            i += 2;
            continue;
        }

        // [LoadIdxLL, StoreLocalPop] → LoadIdxLLStore (`x = a[i]`).
        if cur.op == Op::LoadIdxLL
            && follower(1)
            && f.code[i + 1].op == Op::StoreLocalPop
            && pattern_enabled(profile, Op::LoadIdxLL, Op::StoreLocalPop)
        {
            f.code[i] = Insn {
                op: Op::LoadIdxLLStore,
                a: cur.a,
                b: f.code[i + 1].a,
            };
            keep[i + 1] = false;
            changed = true;
            i += 2;
            continue;
        }

        i += 1;
    }
    compact(f, &keep);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{InterpOptions, Program};
    use cfront::parser::parse;
    use std::collections::HashSet;

    fn program(src: &str) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        Program::new(&r.unit)
    }

    fn opts(level: u8) -> InterpOptions {
        InterpOptions {
            opt_level: level,
            ..Default::default()
        }
    }

    fn insn_count(p: &BytecodeProgram) -> usize {
        p.funcs
            .iter()
            .chain(std::iter::once(&p.global_code))
            .map(|f| f.code.len())
            .sum()
    }

    fn count_op(p: &BytecodeProgram, op: Op) -> usize {
        p.funcs
            .iter()
            .chain(std::iter::once(&p.global_code))
            .flat_map(|f| f.code.iter())
            .filter(|i| i.op == op)
            .count()
    }

    /// Run `src` at levels 0/1/2 and assert the observables the optimizer
    /// must preserve: exit code, output and every executed-op counter.
    fn assert_equivalent(src: &str) -> Program {
        let prog = program(src);
        let raw = prog.run(opts(0)).expect("raw run");
        for level in [1u8, 2] {
            let o = prog.run(opts(level)).expect("optimized run");
            assert_eq!(o.exit_code, raw.exit_code, "exit @ level {level}");
            assert_eq!(o.output, raw.output, "output @ level {level}");
            assert_eq!(
                o.counters.without_memo(),
                raw.counters.without_memo(),
                "counters @ level {level}"
            );
        }
        prog
    }

    /// Smallest fuel budget at which the program completes (threads=1, so
    /// the trap point is exact: one unit per dispatched instruction).
    fn min_fuel(prog: &Program, level: u8) -> u64 {
        let (mut lo, mut hi) = (1u64, 1 << 22);
        assert!(
            prog.run(InterpOptions {
                fuel: Some(hi),
                ..opts(level)
            })
            .is_ok(),
            "program does not finish inside the search bound"
        );
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ok = prog
                .run(InterpOptions {
                    fuel: Some(mid),
                    ..opts(level)
                })
                .is_ok();
            if ok {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    #[test]
    fn folding_shrinks_code_and_compensates_counters() {
        let src = "\
int main() {
    int a = 2 + 3 * 4;        // folded to 14 at compile time
    int b = (a + 1) - (10 / 2); // partially foldable
    float f = 1.5 * 2.0;      // float fold must compensate flops
    return a + b + (int)f;
}
";
        let prog = assert_equivalent(src);
        let raw = prog.bytecode_at(0);
        let opt = prog.bytecode_at(1);
        assert!(
            insn_count(&opt) < insn_count(&raw),
            "level 1 must shrink: {} -> {}",
            insn_count(&raw),
            insn_count(&opt)
        );
        assert!(count_op(&opt, Op::ConstFold) > 0, "expected ConstFold");
        let r = prog.run(opts(1)).expect("runs");
        assert!(r.counters.insns_folded > 0, "{:?}", r.counters);
        assert_eq!(prog.run(opts(0)).unwrap().counters.insns_folded, 0);
    }

    #[test]
    fn dead_stores_are_eliminated() {
        let src = "\
int main() {
    int dead = 123;          // never read again after the overwrite
    dead = 456;              // also dead: overwritten before use
    dead = 7;
    int keep = dead + 1;
    return keep;
}
";
        let prog = assert_equivalent(src);
        assert!(insn_count(&prog.bytecode_at(1)) < insn_count(&prog.bytecode_at(0)));
        assert_eq!(prog.run(opts(2)).unwrap().exit_code, 8);
    }

    #[test]
    fn fusion_emits_superinstructions() {
        let src = "\
int main() {
    int arr[64];
    int acc = 0;
    for (int i = 0; i < 64; i++) arr[i] = i * 3;
    for (int i = 0; i < 64; i++) acc = acc + arr[i];
    return acc % 251;
}
";
        let prog = assert_equivalent(src);
        let opt = prog.bytecode_at(2);
        let fused = count_op(&opt, Op::BrCmpLC)
            + count_op(&opt, Op::BrCmpLL)
            + count_op(&opt, Op::BinLLStore)
            + count_op(&opt, Op::BinLCStore)
            + count_op(&opt, Op::ConstStore)
            + count_op(&opt, Op::LoadIdxLLStore)
            + count_op(&opt, Op::RetLocal);
        assert!(fused > 0, "no superinstructions in:\n{}", opt.dump());
        let r = prog.run(opts(2)).expect("runs");
        assert!(r.counters.insns_fused > 0, "{:?}", r.counters);
    }

    #[test]
    fn loop_invariant_global_loads_are_hoisted() {
        let src = "\
int scale;
int main() {
    scale = 3;
    int acc = 0;
    for (int i = 0; i < 100; i++) acc += i * scale;
    return acc % 251;
}
";
        let prog = assert_equivalent(src);
        let raw = prog.bytecode_at(0);
        let opt = prog.bytecode_at(2);
        assert!(
            count_op(&opt, Op::LoadGStore) > 0,
            "expected a hoisted preheader"
        );
        assert!(
            count_op(&opt, Op::LoadGlobal) < count_op(&raw, Op::LoadGlobal),
            "in-loop LoadGlobal should be replaced by LoadLocal"
        );
    }

    #[test]
    fn calls_and_global_stores_block_hoisting() {
        // The loop writes the global it reads — hoisting would change the
        // observed values. The differential check is the real assertion.
        assert_equivalent(
            "\
int g;
int main() {
    g = 1;
    int acc = 0;
    for (int i = 0; i < 10; i++) { acc += g; g = g + 1; }
    return acc;
}
",
        );
    }

    #[test]
    fn optimized_fuel_never_exceeds_raw() {
        let src = "\
int main() {
    int acc = 0;
    for (int i = 0; i < 200; i++) acc += i * 2 + 1;
    return acc % 251;
}
";
        let prog = program(src);
        let f0 = min_fuel(&prog, 0);
        let f1 = min_fuel(&prog, 1);
        let f2 = min_fuel(&prog, 2);
        assert!(f1 <= f0, "level 1 must not burn more fuel: {f1} vs {f0}");
        assert!(
            f2 <= f0,
            "level 2 must win back the preheader: {f2} vs {f0}"
        );
        assert!(f2 < f1, "fusion should save dispatches: {f2} vs {f1}");
    }

    #[test]
    fn runtime_errors_survive_verbatim() {
        let src = "\
int main() {
    int d = 0;
    for (int i = 0; i < 5; i++) d = i - 1;
    return 10 / (d - 2);   // d == 3 at exit -> 10 / 1
}
";
        // A genuinely trapping program: runtime divide by zero.
        let trap_src = "\
int main() {
    int z = 7;
    for (int i = 0; i < 7; i++) z = z - 1;
    return 100 / z;
}
";
        assert_equivalent(src);
        let prog = program(trap_src);
        let e0 = prog.run(opts(0)).expect_err("raw traps");
        for level in [1u8, 2] {
            let e = prog.run(opts(level)).expect_err("optimized traps");
            assert_eq!(e.message, e0.message, "level {level}");
            assert_eq!(e.span, e0.span, "level {level}");
        }
    }

    #[test]
    fn constant_division_by_zero_is_not_folded() {
        let src = "int main() { int kaboom = 1 / 0; return kaboom; }";
        let prog = program(src);
        let e0 = prog.run(opts(0)).expect_err("raw traps");
        let e2 = prog.run(opts(2)).expect_err("optimized traps");
        assert_eq!(e0.message, e2.message);
        assert_eq!(e0.span, e2.span);
    }

    #[test]
    fn empty_profile_disables_fusion_patterns() {
        let src = "\
int f(int x) { return x + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 32; i++) acc = acc + i;
    return acc % 251;
}
";
        let prog = program(src);
        let cold = PairProfile::new();
        let gated = optimize_program(&prog.bytecode_at(0), 2, Some(&cold));
        assert_eq!(count_op(&gated, Op::RetLocal), 0);
        assert_eq!(count_op(&gated, Op::ConstStore), 0);
        assert_eq!(
            count_op(&gated, Op::BrCmpLC) + count_op(&gated, Op::BrCmpLL),
            0
        );
        // The ungated default set does fuse this program.
        let full = prog.bytecode_at(2);
        assert!(
            count_op(&full, Op::BrCmpLC) + count_op(&full, Op::BrCmpLL) > 0,
            "{}",
            full.dump()
        );
    }

    #[test]
    fn hot_profile_enables_exactly_its_patterns() {
        let src = "int f(int x) { return x; }\nint main() { int a = 5; return a; }";
        let prog = program(src);
        let mut p = PairProfile::new();
        for _ in 0..512 {
            p.tick(Op::LoadLocal);
            p.tick(Op::Ret);
        }
        assert!(p.count(Op::LoadLocal, Op::Ret) > 0);
        let tuned = optimize_program(&prog.bytecode_at(0), 2, Some(&p));
        assert!(count_op(&tuned, Op::RetLocal) > 0, "{}", tuned.dump());
        // Patterns the profile never saw stay off.
        assert_eq!(count_op(&tuned, Op::ConstStore), 0);
    }

    #[test]
    fn profiled_run_reports_pairs() {
        let src = "int main() { int a = 0; for (int i = 0; i < 500; i++) a += i; return a % 7; }";
        let prog = program(src);
        let r = prog
            .run(InterpOptions {
                profile_pairs: true,
                ..Default::default()
            })
            .expect("runs");
        let pairs = r.pairs.expect("profile collected");
        assert!(!pairs.top_pairs(4).is_empty());
        assert!(!pairs.report(4).is_empty());
    }

    #[test]
    fn inline_cache_serves_repeat_pure_calls() {
        let src = "\
pure int sq(int x) { return x * x; }
int main() {
    int acc = 0;
    for (int i = 0; i < 50; i++) acc += sq(7);
    return acc % 251;
}
";
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let set: HashSet<String> = ["sq".to_string()].into_iter().collect();
        let prog = Program::with_pure_set(&r.unit, &set);
        assert!(
            prog.bytecode_at(2).ic_slots > 0,
            "call site should get an IC slot"
        );
        let raw = prog.run(opts(0)).expect("runs");
        let opt = prog.run(opts(2)).expect("runs");
        assert_eq!(opt.exit_code, raw.exit_code);
        assert!(opt.counters.icache_hits > 0, "{:?}", opt.counters);
        assert_eq!(raw.counters.icache_hits, 0);
        // Memo off => the cache must stay cold (it is memo-gated).
        let nomemo = prog
            .run(InterpOptions {
                memo: false,
                ..opts(2)
            })
            .expect("runs");
        assert_eq!(nomemo.counters.icache_hits, 0);
    }

    #[test]
    fn optimizer_preserves_parallel_regions_and_output() {
        let src = "\
int data[256];
int main() {
    #pragma omp parallel for
    for (int i = 0; i < 256; i++) data[i] = i * i % 17;
    int acc = 0;
    for (int i = 0; i < 256; i++) acc += data[i];
    printf(\"acc=%d\\n\", acc);
    return acc % 251;
}
";
        let prog = program(src);
        for threads in [1usize, 4] {
            let raw = prog
                .run(InterpOptions { threads, ..opts(0) })
                .expect("raw runs");
            for level in [1u8, 2] {
                let o = prog
                    .run(InterpOptions {
                        threads,
                        ..opts(level)
                    })
                    .expect("optimized runs");
                assert_eq!(
                    o.exit_code, raw.exit_code,
                    "threads {threads} level {level}"
                );
                assert_eq!(o.output, raw.output, "threads {threads} level {level}");
                assert_eq!(
                    o.counters.without_memo(),
                    raw.counters.without_memo(),
                    "threads {threads} level {level}"
                );
            }
        }
    }

    #[test]
    fn pointer_and_struct_programs_survive_optimization() {
        assert_equivalent(
            "\
struct P { int x; int y; };
int main() {
    struct P p;
    p.x = 3; p.y = 4;
    int *q = &p.x;
    *q = *q + 10;
    int arr[8];
    for (int i = 0; i < 8; i++) arr[i] = p.x + i;
    int s = 0;
    for (int i = 0; i < 8; i++) s += arr[i];
    return (s + p.y) % 251;
}
",
        );
    }
}
