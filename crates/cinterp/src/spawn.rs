//! Spawn-site analysis: finds independent pure calls worth running as
//! futures and rewrites them into `SpawnPure`/`AwaitSlots` batches.
//!
//! This is the compiler half of the paper's "automatic parallelization
//! of pure function calls": the loop path (`omp parallel for`) covers
//! data parallelism, and this pass covers **task** parallelism — runs of
//! consecutive statements of the shape
//!
//! ```c
//! int a = f(x);      // verified pure, const-like, spawn-worthy
//! int b = g(y);      // independent of `a`
//! use(a, b);         // join point: both results forced here
//! ```
//!
//! become *spawn `f`, run `g` inline, await `f`* — the divide-and-conquer
//! shape that lets a tree-recursive pure function occupy every worker.
//!
//! ## What qualifies
//!
//! A statement is **spawnable** when it assigns the result of a direct
//! call to a local scalar slot (`T a = f(args);` with one declarator, or
//! `a = f(args);`), and
//!
//! * the callee is **cacheable** (verified pure ∧ const-like, see
//!   [`crate::resolve`]'s safety argument) — such a function reads no
//!   globals and touches no memory, so running it on another thread at
//!   the spawn point is observationally identical to running it inline
//!   at the original call point;
//! * the callee passes the **granularity heuristic**: it contains a
//!   loop, participates in a recursion cycle, or (transitively) calls a
//!   function that does. Straight-line leaves stay inline — a future's
//!   spawn/join overhead dwarfs them;
//! * its argument expressions do not mention (read *or* write) the
//!   target slot of any earlier statement in the same batch — arguments
//!   are evaluated eagerly by the spawning thread in original program
//!   order, so only dependence on *pending* results forces a join.
//!
//! A maximal run of such statements forms a **batch**. Batches of one
//! are left untouched (spawn-then-immediately-await is pure overhead);
//! in a batch of `k ≥ 2` the first `k − 1` calls spawn and the last runs
//! inline on the spawning thread (it would otherwise idle-wait), then an
//! `AwaitSlots` join forces the spawned slots — before the next
//! dependent statement, which is what makes the rewrite safe under
//! arbitrary following control flow. Between spawn and await the target
//! slot is simply not yet written; the engines keep the in-flight handle
//! in a side list keyed by `(frame, slot)`, so no frame-word tagging is
//! needed and every other slot access stays on its fast path.
//!
//! ## Expression-level spawns: temp introduction
//!
//! Statement-shaped sites alone miss the paper's canonical
//! divide-and-conquer shape, `return f(n - 1) + f(n - 2);` — no local,
//! no statement boundary, nothing to batch. A **hoisting pre-pass**
//! therefore runs before batching: every heavy pure call that sits in
//! an *unconditionally evaluated* position of a statement's expression
//! (binary operands outside `&&`/`||` right sides and ternary branches,
//! call arguments, `return` values, `if` conditions, assignment values,
//! index expressions) and whose arguments are **transparent** (literals,
//! locals, arithmetic, casts, calls to cacheable functions — no loads,
//! globals, or side effects) is hoisted into a fresh frame slot:
//!
//! ```c
//! return f(a) + f(b);   ⇒   t1 = f(a); t2 = f(b); return t1 + t2;
//! ```
//!
//! The residual statement reads the temps; the ordinary batch pass then
//! turns the temp runs into `SpawnPure`/`AwaitSlots`. Hoisting is sound
//! because the callee is const-like (commutes with everything else in
//! the statement), the arguments are transparent (their value cannot be
//! changed by any earlier part of the statement — enforced by rejecting
//! calls whose arguments mention a slot the statement writes), and the
//! position is unconditional (the call was going to execute anyway, so
//! executed-op counters and termination behaviour are unchanged).
//! Conditional positions — `&&`/`||` right operands, ternary branches,
//! loop conditions and steps — are never hoisted from.
//!
//! One observable caveat, shared with the memo cache: *which* runtime
//! error surfaces can change when several batched calls fail (the batch
//! runs all of them; sequential execution would stop at the first), and
//! hoisting can surface a failing call's error ahead of an earlier
//! subexpression's. For programs that do not error, behaviour is
//! bit-identical — the differential suites assert exactly that.

use crate::resolve::{
    RDeclKind, RExpr, RExprKind, RPlace, RPlaceKind, RSpawn, RStmt, RStmtKind, ResolvedProgram,
    SlotRef,
};
use cfront::span::Span;

/// Run the analysis over a lowered program: compute per-function
/// spawn-worthiness, hoist expression-level heavy pure calls into
/// temps, then rewrite every function body (including parallel-region
/// bodies) into spawn batches.
pub(crate) fn analyze(prog: &mut ResolvedProgram) {
    if !prog.any_cacheable {
        return; // no verified-pure const-like functions ⇒ no sites
    }
    mark_spawn_heavy(prog);
    let heavy: Vec<bool> = prog.funcs.iter().map(|f| f.spawn_heavy).collect();
    if !heavy.iter().any(|&h| h) {
        return;
    }
    let cacheable: Vec<bool> = prog.funcs.iter().map(|f| f.cacheable).collect();
    for f in &mut prog.funcs {
        let body = std::mem::take(&mut f.body);
        let mut hoister = Hoister {
            heavy: &heavy,
            cacheable: &cacheable,
            next_slot: f.frame_size as u32,
        };
        let body = hoister.hoist_stmts(body);
        f.frame_size = hoister.next_slot as usize;
        f.body = rewrite_stmts(body, &heavy);
    }
}

// ---------------------------------------------------------------------------
// Granularity heuristic
// ---------------------------------------------------------------------------

/// Collect the user-call targets and loop presence of a statement tree.
fn scan_calls(stmts: &[RStmt], calls: &mut Vec<u32>, has_loop: &mut bool) {
    for s in stmts {
        scan_stmt(s, calls, has_loop);
    }
}

fn scan_stmt(s: &RStmt, calls: &mut Vec<u32>, has_loop: &mut bool) {
    match &s.kind {
        RStmtKind::Decl(decls) => {
            for d in decls {
                match &d.kind {
                    RDeclKind::Array { dims, init } => {
                        for e in dims {
                            scan_expr(e, calls);
                        }
                        if let Some(e) = init {
                            scan_expr(e, calls);
                        }
                    }
                    RDeclKind::Struct { .. } => {}
                    RDeclKind::Scalar { init, .. } => {
                        if let Some(e) = init {
                            scan_expr(e, calls);
                        }
                    }
                }
            }
        }
        RStmtKind::Expr(Some(e)) | RStmtKind::Return(Some(e)) => scan_expr(e, calls),
        RStmtKind::Expr(None)
        | RStmtKind::Return(None)
        | RStmtKind::Break
        | RStmtKind::Continue
        | RStmtKind::Nop => {}
        RStmtKind::Block(b) => scan_calls(b, calls, has_loop),
        RStmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            scan_expr(cond, calls);
            scan_stmt(then_branch, calls, has_loop);
            if let Some(e) = else_branch {
                scan_stmt(e, calls, has_loop);
            }
        }
        RStmtKind::While { cond, body } => {
            *has_loop = true;
            scan_expr(cond, calls);
            scan_stmt(body, calls, has_loop);
        }
        RStmtKind::DoWhile { body, cond } => {
            *has_loop = true;
            scan_stmt(body, calls, has_loop);
            scan_expr(cond, calls);
        }
        RStmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            *has_loop = true;
            if let Some(i) = init {
                scan_stmt(i, calls, has_loop);
            }
            if let Some(c) = cond {
                scan_expr(c, calls);
            }
            if let Some(st) = step {
                scan_expr(st, calls);
            }
            scan_stmt(body, calls, has_loop);
        }
        RStmtKind::OmpFor(of) => {
            *has_loop = true;
            if let Ok(h) = &of.header {
                scan_expr(&h.lb, calls);
                scan_expr(&h.ub, calls);
                scan_stmt(&h.body, calls, has_loop);
            }
        }
        RStmtKind::SpawnPure(sp) => {
            calls.push(sp.fid);
            for a in &sp.args {
                scan_expr(a, calls);
            }
        }
        RStmtKind::AwaitSlots(_) => {}
    }
}

fn scan_expr(e: &RExpr, calls: &mut Vec<u32>) {
    match &e.kind {
        RExprKind::CallUser { fid, args } => {
            calls.push(*fid);
            for a in args {
                scan_expr(a, calls);
            }
        }
        RExprKind::Int(_)
        | RExprKind::Float(_)
        | RExprKind::Str(_)
        | RExprKind::Local(_)
        | RExprKind::Global(_)
        | RExprKind::Unknown(_)
        | RExprKind::IndirectCall => {}
        RExprKind::Unary(_, inner) | RExprKind::Cast(_, inner) => scan_expr(inner, calls),
        RExprKind::Binary(_, l, r) | RExprKind::Comma(l, r) => {
            scan_expr(l, calls);
            scan_expr(r, calls);
        }
        RExprKind::Assign { place, value, .. } => {
            scan_place_exprs(place, calls);
            scan_expr(value, calls);
        }
        RExprKind::IncDec(_, place) | RExprKind::AddrOf(place) => scan_place_exprs(place, calls),
        RExprKind::Ternary(c, t, f) => {
            scan_expr(c, calls);
            scan_expr(t, calls);
            scan_expr(f, calls);
        }
        RExprKind::CallBuiltin { args, .. } | RExprKind::InitList(args) => {
            for a in args {
                scan_expr(a, calls);
            }
        }
        RExprKind::Printf { fmt_expr, args, .. } => {
            if let Some(f) = fmt_expr {
                scan_expr(f, calls);
            }
            for a in args {
                scan_expr(a, calls);
            }
        }
        RExprKind::Load(place) => scan_place_exprs(place, calls),
    }
}

fn scan_place_exprs(p: &crate::resolve::RPlace, calls: &mut Vec<u32>) {
    match &p.kind {
        RPlaceKind::Index(base, idx) => {
            scan_expr(base, calls);
            scan_expr(idx, calls);
        }
        RPlaceKind::Deref(inner) => scan_expr(inner, calls),
        RPlaceKind::Member { base, .. } | RPlaceKind::MemberUnknown { base, .. } => {
            scan_expr(base, calls)
        }
        RPlaceKind::Local(_)
        | RPlaceKind::Global(_)
        | RPlaceKind::Unknown(_)
        | RPlaceKind::NotLvalue => {}
    }
}

/// Mark each function's `spawn_heavy` flag: cacheable ∧ (has a loop ∨
/// sits on a call-graph cycle ∨ calls a heavy function), as a least
/// fixpoint so wrappers around heavy work also qualify.
fn mark_spawn_heavy(prog: &mut ResolvedProgram) {
    let n = prog.funcs.len();
    let mut calls: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut base = vec![false; n];
    for (i, f) in prog.funcs.iter().enumerate() {
        let mut cs = Vec::new();
        let mut has_loop = false;
        scan_calls(&f.body, &mut cs, &mut has_loop);
        cs.sort_unstable();
        cs.dedup();
        base[i] = f.cacheable && has_loop;
        calls.push(cs);
    }
    // Recursion: i is on a cycle iff i is reachable from one of its own
    // callees (n is small; a DFS per function is fine).
    for i in 0..n {
        if base[i] || !prog.funcs[i].cacheable {
            continue;
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<u32> = calls[i].clone();
        while let Some(j) = stack.pop() {
            let j = j as usize;
            if j == i {
                base[i] = true;
                break;
            }
            if !seen[j] {
                seen[j] = true;
                stack.extend(calls[j].iter().copied());
            }
        }
    }
    // Propagate heaviness to cacheable callers until stable.
    let mut heavy = base;
    loop {
        let mut changed = false;
        for i in 0..n {
            if !heavy[i] && prog.funcs[i].cacheable && calls[i].iter().any(|&c| heavy[c as usize]) {
                heavy[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (f, h) in prog.funcs.iter_mut().zip(heavy) {
        f.spawn_heavy = h;
    }
}

// ---------------------------------------------------------------------------
// Expression-level hoisting (temp introduction)
// ---------------------------------------------------------------------------

/// The hoisting pre-pass: pulls heavy pure calls out of expressions
/// into fresh frame slots so the batch pass below can spawn them. See
/// the module docs for the soundness argument.
struct Hoister<'a> {
    heavy: &'a [bool],
    cacheable: &'a [bool],
    /// Next free frame slot of the function being rewritten; becomes
    /// its new `frame_size`.
    next_slot: u32,
}

impl Hoister<'_> {
    fn hoist_stmts(&mut self, stmts: Vec<RStmt>) -> Vec<RStmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.hoist_stmt(s, &mut out);
        }
        out
    }

    /// Rewrite one statement, appending `[temps…, residual]` to `out`.
    fn hoist_stmt(&mut self, s: RStmt, out: &mut Vec<RStmt>) {
        let span = s.span;
        let kind = match s.kind {
            RStmtKind::Return(Some(mut e)) => {
                let written = written_slots(std::slice::from_ref(&e), &[]);
                // A lone direct `return f(x);` gains nothing from a
                // temp (a batch of one never spawns) — hoist only
                // inside its arguments, like the Expr/Decl arms.
                let direct = matches!(e.kind, RExprKind::CallUser { .. });
                self.hoist_expr(&mut e, &written, direct, out);
                RStmtKind::Return(Some(e))
            }
            RStmtKind::Expr(Some(mut e)) => {
                let written = written_slots(std::slice::from_ref(&e), &[]);
                // `slot = f(args)` as a whole is already a batch
                // candidate — leave the direct value to the batcher and
                // only hoist from inside the arguments.
                let direct = matches!(
                    &e.kind,
                    RExprKind::Assign { op: None, place, value }
                        if matches!(place.kind, RPlaceKind::Local(_))
                            && matches!(value.kind, RExprKind::CallUser { .. })
                );
                self.hoist_expr(&mut e, &written, direct, out);
                RStmtKind::Expr(Some(e))
            }
            RStmtKind::Decl(mut decls) => {
                let mut written: Vec<u32> = decls
                    .iter()
                    .filter_map(|d| match d.target {
                        SlotRef::Local(slot) => Some(slot),
                        SlotRef::Global(_) => None,
                    })
                    .collect();
                for d in &decls {
                    match &d.kind {
                        RDeclKind::Scalar { init: Some(e), .. } => collect_writes(e, &mut written),
                        RDeclKind::Array { dims, init } => {
                            // Array decls are not hoisted from, but
                            // their writes still poison later inits of
                            // the same statement.
                            for e in dims {
                                collect_writes(e, &mut written);
                            }
                            if let Some(e) = init {
                                collect_writes(e, &mut written);
                            }
                        }
                        _ => {}
                    }
                }
                // A single scalar `T slot = f(args);` is the batcher's
                // own shape — hoist only inside the arguments.
                let direct = decls.len() == 1;
                for d in &mut decls {
                    if let RDeclKind::Scalar { init: Some(e), .. } = &mut d.kind {
                        let direct = direct
                            && matches!(d.target, SlotRef::Local(_))
                            && matches!(e.kind, RExprKind::CallUser { .. });
                        self.hoist_expr(e, &written, direct, out);
                    }
                }
                RStmtKind::Decl(decls)
            }
            RStmtKind::If {
                mut cond,
                then_branch,
                else_branch,
            } => {
                // The condition evaluates unconditionally at statement
                // entry; the branches are separate statements.
                let written = written_slots(std::slice::from_ref(&cond), &[]);
                self.hoist_expr(&mut cond, &written, false, out);
                RStmtKind::If {
                    cond,
                    then_branch: Box::new(self.hoist_child(*then_branch)),
                    else_branch: else_branch.map(|e| Box::new(self.hoist_child(*e))),
                }
            }
            RStmtKind::Block(b) => RStmtKind::Block(self.hoist_stmts(b)),
            // Loop conditions and steps re-evaluate per iteration — no
            // statement boundary to hoist to; only bodies are rewritten.
            RStmtKind::While { cond, body } => RStmtKind::While {
                cond,
                body: Box::new(self.hoist_child(*body)),
            },
            RStmtKind::DoWhile { body, cond } => RStmtKind::DoWhile {
                body: Box::new(self.hoist_child(*body)),
                cond,
            },
            RStmtKind::For {
                init,
                cond,
                step,
                body,
                affine,
            } => RStmtKind::For {
                init,
                cond,
                step,
                body: Box::new(self.hoist_child(*body)),
                affine,
            },
            RStmtKind::OmpFor(mut of) => {
                if let Ok(h) = &mut of.header {
                    let body = std::mem::replace(
                        &mut h.body,
                        RStmt {
                            kind: RStmtKind::Nop,
                            span: Span::DUMMY,
                        },
                    );
                    h.body = self.hoist_child(body);
                }
                RStmtKind::OmpFor(of)
            }
            other => other,
        };
        out.push(RStmt { kind, span });
    }

    /// Rewrite a single-statement child (a branch or loop body),
    /// wrapping in a block when hoisting produced temps.
    fn hoist_child(&mut self, s: RStmt) -> RStmt {
        let span = s.span;
        let mut buf = Vec::with_capacity(1);
        self.hoist_stmt(s, &mut buf);
        if buf.len() == 1 {
            buf.pop().expect("one statement")
        } else {
            RStmt {
                kind: RStmtKind::Block(buf),
                span,
            }
        }
    }

    /// Walk the unconditionally evaluated positions of `e`, replacing
    /// each hoistable heavy pure call with a fresh temp slot read and
    /// appending `temp = call;` to `out`. `direct` marks a root the
    /// batch pass already matches whole (its *arguments* are still
    /// visited).
    fn hoist_expr(&mut self, e: &mut RExpr, written: &[u32], direct: bool, out: &mut Vec<RStmt>) {
        match &mut e.kind {
            RExprKind::CallUser { fid, args } => {
                let hoistable = !direct
                    && self.heavy.get(*fid as usize).copied().unwrap_or(false)
                    && args.iter().all(|a| self.transparent(a))
                    && !args.iter().any(|a| mentions_slot(a, written));
                if hoistable {
                    let slot = self.next_slot;
                    self.next_slot += 1;
                    let span = e.span;
                    let call = std::mem::replace(
                        e,
                        RExpr {
                            kind: RExprKind::Local(slot),
                            span,
                        },
                    );
                    out.push(RStmt {
                        kind: RStmtKind::Expr(Some(RExpr {
                            kind: RExprKind::Assign {
                                op: None,
                                place: RPlace {
                                    kind: RPlaceKind::Local(slot),
                                    span,
                                },
                                value: Box::new(call),
                            },
                            span,
                        })),
                        span,
                    });
                } else {
                    for a in args {
                        self.hoist_expr(a, written, false, out);
                    }
                }
            }
            RExprKind::Binary(op, l, r) => {
                use cfront::ast::BinOp;
                if matches!(op, BinOp::And | BinOp::Or) {
                    // Only the left side evaluates unconditionally.
                    self.hoist_expr(l, written, false, out);
                } else {
                    self.hoist_expr(l, written, false, out);
                    self.hoist_expr(r, written, false, out);
                }
            }
            RExprKind::Unary(_, inner) | RExprKind::Cast(_, inner) => {
                self.hoist_expr(inner, written, false, out)
            }
            // Branches are conditional; only the test is hoistable.
            RExprKind::Ternary(c, _, _) => self.hoist_expr(c, written, false, out),
            RExprKind::Assign { place, value, .. } => {
                self.hoist_expr(value, written, false, out);
                self.hoist_place(place, written, out);
            }
            RExprKind::Comma(l, r) => {
                self.hoist_expr(l, written, false, out);
                self.hoist_expr(r, written, false, out);
            }
            RExprKind::CallBuiltin { args, .. } => {
                for a in args {
                    self.hoist_expr(a, written, false, out);
                }
            }
            RExprKind::Printf { fmt_expr, args, .. } => {
                if let Some(f) = fmt_expr {
                    self.hoist_expr(f, written, false, out);
                }
                for a in args {
                    self.hoist_expr(a, written, false, out);
                }
            }
            RExprKind::Load(place) => self.hoist_place(place, written, out),
            RExprKind::IncDec(_, place) | RExprKind::AddrOf(place) => {
                self.hoist_place(place, written, out)
            }
            RExprKind::Int(_)
            | RExprKind::Float(_)
            | RExprKind::Str(_)
            | RExprKind::Local(_)
            | RExprKind::Global(_)
            | RExprKind::Unknown(_)
            | RExprKind::IndirectCall
            | RExprKind::InitList(_) => {}
        }
    }

    fn hoist_place(&mut self, p: &mut RPlace, written: &[u32], out: &mut Vec<RStmt>) {
        match &mut p.kind {
            RPlaceKind::Index(base, idx) => {
                self.hoist_expr(base, written, false, out);
                self.hoist_expr(idx, written, false, out);
            }
            RPlaceKind::Deref(inner) => self.hoist_expr(inner, written, false, out),
            RPlaceKind::Member { base, .. } | RPlaceKind::MemberUnknown { base, .. } => {
                self.hoist_expr(base, written, false, out)
            }
            RPlaceKind::Local(_)
            | RPlaceKind::Global(_)
            | RPlaceKind::Unknown(_)
            | RPlaceKind::NotLvalue => {}
        }
    }

    /// Whether evaluating `e` is order-independent and effect-free:
    /// literals, locals, arithmetic, casts, and calls to cacheable
    /// functions (which read neither globals nor memory) over such
    /// operands. Anything that reads mutable state (globals, memory),
    /// writes, or performs I/O disqualifies — its evaluation cannot be
    /// moved ahead of the rest of the statement.
    fn transparent(&self, e: &RExpr) -> bool {
        match &e.kind {
            RExprKind::Int(_) | RExprKind::Float(_) | RExprKind::Local(_) => true,
            RExprKind::Unary(op, inner) => {
                !matches!(op, cfront::ast::UnOp::Deref) && self.transparent(inner)
            }
            RExprKind::Binary(_, l, r) => self.transparent(l) && self.transparent(r),
            RExprKind::Ternary(c, t, f) => {
                self.transparent(c) && self.transparent(t) && self.transparent(f)
            }
            RExprKind::Cast(_, inner) => self.transparent(inner),
            RExprKind::CallUser { fid, args } => {
                self.cacheable.get(*fid as usize).copied().unwrap_or(false)
                    && args.iter().all(|a| self.transparent(a))
            }
            _ => false,
        }
    }
}

/// Local slots assigned (or inc/dec'ed) anywhere in `exprs` — plus the
/// extra `targets` — used to reject hoists whose arguments could read a
/// value the statement changes.
fn written_slots(exprs: &[RExpr], targets: &[u32]) -> Vec<u32> {
    let mut out = targets.to_vec();
    for e in exprs {
        collect_writes(e, &mut out);
    }
    out
}

fn collect_writes(e: &RExpr, out: &mut Vec<u32>) {
    match &e.kind {
        RExprKind::Assign { place, value, .. } => {
            if let RPlaceKind::Local(slot) = place.kind {
                out.push(slot);
            }
            collect_place_writes(place, out);
            collect_writes(value, out);
        }
        RExprKind::IncDec(_, place) => {
            if let RPlaceKind::Local(slot) = place.kind {
                out.push(slot);
            }
            collect_place_writes(place, out);
        }
        RExprKind::AddrOf(place) | RExprKind::Load(place) => collect_place_writes(place, out),
        RExprKind::Unary(_, inner) | RExprKind::Cast(_, inner) => collect_writes(inner, out),
        RExprKind::Binary(_, l, r) | RExprKind::Comma(l, r) => {
            collect_writes(l, out);
            collect_writes(r, out);
        }
        RExprKind::Ternary(c, t, f) => {
            collect_writes(c, out);
            collect_writes(t, out);
            collect_writes(f, out);
        }
        RExprKind::CallUser { args, .. }
        | RExprKind::CallBuiltin { args, .. }
        | RExprKind::InitList(args) => {
            for a in args {
                collect_writes(a, out);
            }
        }
        RExprKind::Printf { fmt_expr, args, .. } => {
            if let Some(f) = fmt_expr {
                collect_writes(f, out);
            }
            for a in args {
                collect_writes(a, out);
            }
        }
        RExprKind::Int(_)
        | RExprKind::Float(_)
        | RExprKind::Str(_)
        | RExprKind::Local(_)
        | RExprKind::Global(_)
        | RExprKind::Unknown(_)
        | RExprKind::IndirectCall => {}
    }
}

fn collect_place_writes(p: &RPlace, out: &mut Vec<u32>) {
    match &p.kind {
        RPlaceKind::Index(base, idx) => {
            collect_writes(base, out);
            collect_writes(idx, out);
        }
        RPlaceKind::Deref(inner) => collect_writes(inner, out),
        RPlaceKind::Member { base, .. } | RPlaceKind::MemberUnknown { base, .. } => {
            collect_writes(base, out)
        }
        RPlaceKind::Local(_)
        | RPlaceKind::Global(_)
        | RPlaceKind::Unknown(_)
        | RPlaceKind::NotLvalue => {}
    }
}

// ---------------------------------------------------------------------------
// Batch rewriting
// ---------------------------------------------------------------------------

/// A spawnable statement, decomposed.
struct Candidate {
    slot: u32,
    fid: u32,
    coerce: crate::resolve::Coerce,
    span: Span,
}

/// Match `T slot = f(args);` (single declarator) or `slot = f(args);`
/// against a spawn-heavy callee. Returns the decomposition without
/// consuming the statement.
fn spawnable(s: &RStmt, heavy: &[bool]) -> Option<Candidate> {
    let (slot, coerce, init) = match &s.kind {
        RStmtKind::Decl(decls) if decls.len() == 1 => {
            let d = &decls[0];
            let SlotRef::Local(slot) = d.target else {
                return None;
            };
            let RDeclKind::Scalar {
                init: Some(init),
                coerce,
            } = &d.kind
            else {
                return None;
            };
            (slot, *coerce, init)
        }
        RStmtKind::Expr(Some(e)) => {
            let RExprKind::Assign {
                op: None,
                place,
                value,
            } = &e.kind
            else {
                return None;
            };
            let RPlaceKind::Local(slot) = place.kind else {
                return None;
            };
            (slot, crate::resolve::Coerce::None, value.as_ref())
        }
        _ => return None,
    };
    let RExprKind::CallUser { fid, args: _ } = &init.kind else {
        return None;
    };
    if !heavy.get(*fid as usize).copied().unwrap_or(false) {
        return None;
    }
    Some(Candidate {
        slot,
        fid: *fid,
        coerce,
        span: s.span,
    })
}

/// The call's argument expressions (valid only after `spawnable`
/// matched).
fn spawn_args(s: &RStmt) -> &[RExpr] {
    let init = match &s.kind {
        RStmtKind::Decl(decls) => match &decls[0].kind {
            RDeclKind::Scalar {
                init: Some(init), ..
            } => init,
            _ => unreachable!("spawnable matched a scalar decl"),
        },
        RStmtKind::Expr(Some(e)) => match &e.kind {
            RExprKind::Assign { value, .. } => value,
            _ => unreachable!("spawnable matched an assignment"),
        },
        _ => unreachable!("spawnable matched"),
    };
    match &init.kind {
        RExprKind::CallUser { args, .. } => args,
        _ => unreachable!("spawnable matched a user call"),
    }
}

/// Whether `e` mentions any of `slots` — as a read **or** a write.
/// Arguments run eagerly on the spawning thread, so any reference to a
/// still-pending slot (whose value only lands at the await) is a
/// dependence that ends the batch.
fn mentions_slot(e: &RExpr, slots: &[u32]) -> bool {
    match &e.kind {
        RExprKind::Local(s) => slots.contains(s),
        RExprKind::Int(_)
        | RExprKind::Float(_)
        | RExprKind::Str(_)
        | RExprKind::Global(_)
        | RExprKind::Unknown(_)
        | RExprKind::IndirectCall => false,
        RExprKind::Unary(_, inner) | RExprKind::Cast(_, inner) => mentions_slot(inner, slots),
        RExprKind::Binary(_, l, r) | RExprKind::Comma(l, r) => {
            mentions_slot(l, slots) || mentions_slot(r, slots)
        }
        RExprKind::Assign { place, value, .. } => {
            place_mentions_slot(place, slots) || mentions_slot(value, slots)
        }
        RExprKind::IncDec(_, place) | RExprKind::AddrOf(place) => place_mentions_slot(place, slots),
        RExprKind::Ternary(c, t, f) => {
            mentions_slot(c, slots) || mentions_slot(t, slots) || mentions_slot(f, slots)
        }
        RExprKind::CallUser { args, .. }
        | RExprKind::CallBuiltin { args, .. }
        | RExprKind::InitList(args) => args.iter().any(|a| mentions_slot(a, slots)),
        RExprKind::Printf { fmt_expr, args, .. } => {
            fmt_expr.as_ref().is_some_and(|f| mentions_slot(f, slots))
                || args.iter().any(|a| mentions_slot(a, slots))
        }
        RExprKind::Load(place) => place_mentions_slot(place, slots),
    }
}

fn place_mentions_slot(p: &crate::resolve::RPlace, slots: &[u32]) -> bool {
    match &p.kind {
        RPlaceKind::Local(s) => slots.contains(s),
        RPlaceKind::Index(base, idx) => mentions_slot(base, slots) || mentions_slot(idx, slots),
        RPlaceKind::Deref(inner) => mentions_slot(inner, slots),
        RPlaceKind::Member { base, .. } | RPlaceKind::MemberUnknown { base, .. } => {
            mentions_slot(base, slots)
        }
        RPlaceKind::Global(_) | RPlaceKind::Unknown(_) | RPlaceKind::NotLvalue => false,
    }
}

/// Rewrite one statement list: batch maximal runs of independent
/// spawnable statements, recurse into nested statements otherwise.
fn rewrite_stmts(stmts: Vec<RStmt>, heavy: &[bool]) -> Vec<RStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    let mut stmts: Vec<Option<RStmt>> = stmts.into_iter().map(Some).collect();
    let mut i = 0;
    while i < stmts.len() {
        let s = stmts[i].as_ref().expect("unconsumed");
        let Some(first) = spawnable(s, heavy) else {
            let s = stmts[i].take().expect("unconsumed");
            out.push(rewrite_nested(s, heavy));
            i += 1;
            continue;
        };
        // Grow the batch while statements stay spawnable and independent
        // of every earlier target in it.
        let mut batch = vec![first];
        let mut used = vec![batch[0].slot];
        let mut j = i + 1;
        while j < stmts.len() {
            let sj = stmts[j].as_ref().expect("unconsumed");
            let Some(cand) = spawnable(sj, heavy) else {
                break;
            };
            if used.contains(&cand.slot) || spawn_args(sj).iter().any(|a| mentions_slot(a, &used)) {
                break;
            }
            used.push(cand.slot);
            batch.push(cand);
            j += 1;
        }
        if batch.len() < 2 {
            // A lone spawn would be awaited immediately — pure overhead.
            let s = stmts[i].take().expect("unconsumed");
            out.push(rewrite_nested(s, heavy));
            i += 1;
            continue;
        }
        // Spawn the first k−1 calls, run the last inline (the spawning
        // thread would otherwise idle at the join), then force the
        // spawned slots in order.
        let k = batch.len();
        let mut await_slots = Vec::with_capacity(k - 1);
        for (off, cand) in batch.iter().enumerate().take(k - 1) {
            let stmt = stmts[i + off].take().expect("unconsumed");
            let args = match take_call_args(stmt) {
                Some(a) => a,
                None => unreachable!("spawnable matched a user call"),
            };
            await_slots.push(cand.slot);
            out.push(RStmt {
                kind: RStmtKind::SpawnPure(Box::new(RSpawn {
                    slot: cand.slot,
                    fid: cand.fid,
                    coerce: cand.coerce,
                    args,
                })),
                span: cand.span,
            });
        }
        let tail = stmts[i + k - 1].take().expect("unconsumed");
        let tail_span = tail.span;
        out.push(tail);
        out.push(RStmt {
            kind: RStmtKind::AwaitSlots(await_slots),
            span: tail_span,
        });
        i = j;
    }
    out
}

/// Destructure a spawnable statement into its call's argument list.
fn take_call_args(s: RStmt) -> Option<Vec<RExpr>> {
    let init = match s.kind {
        RStmtKind::Decl(mut decls) => match decls.pop()?.kind {
            RDeclKind::Scalar { init, .. } => init?,
            _ => return None,
        },
        RStmtKind::Expr(Some(e)) => match e.kind {
            RExprKind::Assign { value, .. } => *value,
            _ => return None,
        },
        _ => return None,
    };
    match init.kind {
        RExprKind::CallUser { args, .. } => Some(args),
        _ => None,
    }
}

/// Recurse the rewrite into a statement's nested statement lists.
fn rewrite_nested(s: RStmt, heavy: &[bool]) -> RStmt {
    let kind = match s.kind {
        RStmtKind::Block(b) => RStmtKind::Block(rewrite_stmts(b, heavy)),
        RStmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => RStmtKind::If {
            cond,
            then_branch: Box::new(rewrite_nested(*then_branch, heavy)),
            else_branch: else_branch.map(|e| Box::new(rewrite_nested(*e, heavy))),
        },
        RStmtKind::While { cond, body } => RStmtKind::While {
            cond,
            body: Box::new(rewrite_nested(*body, heavy)),
        },
        RStmtKind::DoWhile { body, cond } => RStmtKind::DoWhile {
            body: Box::new(rewrite_nested(*body, heavy)),
            cond,
        },
        RStmtKind::For {
            init,
            cond,
            step,
            body,
            affine,
        } => RStmtKind::For {
            init,
            cond,
            step,
            body: Box::new(rewrite_nested(*body, heavy)),
            affine,
        },
        RStmtKind::OmpFor(mut of) => {
            if let Ok(h) = &mut of.header {
                let body = std::mem::replace(
                    &mut h.body,
                    RStmt {
                        kind: RStmtKind::Nop,
                        span: Span::DUMMY,
                    },
                );
                h.body = rewrite_nested(body, heavy);
            }
            RStmtKind::OmpFor(of)
        }
        other => other,
    };
    RStmt { kind, span: s.span }
}

/// Count the spawn sites in a statement tree (introspection).
pub(crate) fn count_spawns(stmts: &[RStmt]) -> usize {
    fn count_stmt(s: &RStmt) -> usize {
        match &s.kind {
            RStmtKind::SpawnPure(_) => 1,
            RStmtKind::Block(b) => count_spawns(b),
            RStmtKind::If {
                then_branch,
                else_branch,
                ..
            } => count_stmt(then_branch) + else_branch.as_ref().map_or(0, |e| count_stmt(e)),
            RStmtKind::While { body, .. } | RStmtKind::DoWhile { body, .. } => count_stmt(body),
            RStmtKind::For { body, .. } => count_stmt(body),
            RStmtKind::OmpFor(of) => match &of.header {
                Ok(h) => count_stmt(&h.body),
                Err(_) => 0,
            },
            _ => 0,
        }
    }
    stmts.iter().map(count_stmt).sum()
}

#[cfg(test)]
mod tests {
    use crate::interp::Program;
    use cfront::parser::parse;
    use std::collections::HashSet;

    fn program_with_pure(src: &str, pure_fns: &[&str]) -> Program {
        let r = parse(src);
        assert!(!r.diags.has_errors(), "{}", r.diags.render_all(src));
        let set: HashSet<String> = pure_fns.iter().map(|s| s.to_string()).collect();
        Program::with_pure_set(&r.unit, &set)
    }

    const FIB_LOCALS: &str = "\
pure int fib(int n) { if (n < 2) return n; int a = fib(n - 1); int b = fib(n - 2); return a + b; }
int main() { int l = fib(12); int r = fib(11); return (l + r) % 251; }
";

    #[test]
    fn tree_recursion_produces_spawn_sites() {
        let prog = program_with_pure(FIB_LOCALS, &["fib"]);
        let resolved = prog.resolved();
        assert_eq!(resolved.spawn_heavy_functions(), vec!["fib"]);
        let mut sites = resolved.spawn_sites();
        sites.sort_unstable();
        // One spawn in fib's body (a spawns, b inlines) and one in main.
        assert_eq!(sites, vec![("fib", 1), ("main", 1)]);
    }

    #[test]
    fn no_pure_set_means_no_spawn_sites() {
        let r = parse(FIB_LOCALS);
        let prog = Program::new(&r.unit);
        assert!(prog.resolved().spawn_sites().is_empty());
        assert!(prog.resolved().spawn_heavy_functions().is_empty());
    }

    /// A callee that failed purity verification (here: never verified)
    /// must not become a spawn site even if it is assigned to locals in
    /// a batch-shaped run.
    #[test]
    fn unverified_callee_is_not_a_spawn_site() {
        let src = "\
int g;
int shady(int n) { g = g + n; if (n < 2) return n; return shady(n - 1); }
int main() { int a = shady(9); int b = shady(8); return a + b + g; }
";
        let prog = program_with_pure(src, &[]);
        assert!(prog.resolved().spawn_sites().is_empty());
        // Even when *declared* in a pure set, a global-writing function
        // is not const-like, hence not cacheable, hence never spawned.
        let prog2 = program_with_pure(src, &["shady"]);
        assert!(prog2.resolved().cacheable_functions().is_empty());
        assert!(prog2.resolved().spawn_sites().is_empty());
    }

    /// Straight-line leaves fail the granularity heuristic.
    #[test]
    fn tiny_leaves_are_not_spawn_worthy() {
        let src = "\
pure int tiny(int x) { return x * 2 + 1; }
int main() { int a = tiny(3); int b = tiny(4); return a + b; }
";
        let prog = program_with_pure(src, &["tiny"]);
        assert_eq!(prog.resolved().cacheable_functions(), vec!["tiny"]);
        assert!(prog.resolved().spawn_heavy_functions().is_empty());
        assert!(prog.resolved().spawn_sites().is_empty());
    }

    /// A looping pure function qualifies, and a wrapper calling it
    /// inherits heaviness transitively.
    #[test]
    fn loops_and_wrappers_are_heavy() {
        let src = "\
pure int looper(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }
pure int wrap(int n) { return looper(n + 1); }
int main() { int a = wrap(10); int b = looper(20); return a + b; }
";
        let prog = program_with_pure(src, &["looper", "wrap"]);
        let mut heavy = prog.resolved().spawn_heavy_functions();
        heavy.sort_unstable();
        assert_eq!(heavy, vec!["looper", "wrap"]);
        assert_eq!(prog.resolved().spawn_sites(), vec![("main", 1)]);
    }

    /// A dependent read splits the batch: `b = f(a)` must not join the
    /// batch that spawned `a`.
    #[test]
    fn dependent_reads_end_the_batch() {
        let src = "\
pure int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }
int main() {
    int a = f(10);
    int b = f(a);
    int c = f(12);
    int d = f(13);
    return a + b + c + d;
}
";
        let prog = program_with_pure(src, &["f"]);
        // `b = f(a)` depends on `a`, so `a` ends up a lone (unspawned)
        // statement; `b`, `c`, `d` are mutually independent and form one
        // batch — two spawns plus the inline tail `d`.
        assert_eq!(prog.resolved().spawn_sites(), vec![("main", 2)]);
    }

    const FIB_EXPR: &str = "\
pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { return (fib(12) + fib(11)) % 251; }
";

    /// The paper's canonical shape, with no explicit locals: both
    /// recursive calls sit inside the `return` expression. The hoist
    /// pass introduces temps, and the batcher spawns one per site.
    #[test]
    fn expression_level_calls_become_spawn_sites() {
        let prog = program_with_pure(FIB_EXPR, &["fib"]);
        let resolved = prog.resolved();
        assert_eq!(resolved.spawn_heavy_functions(), vec!["fib"]);
        let mut sites = resolved.spawn_sites();
        sites.sort_unstable();
        // `return fib(n-1)+fib(n-2)` hoists into a batch of two (one
        // spawn + inline tail) in fib, and `fib(12)+fib(11)` likewise
        // in main.
        assert_eq!(sites, vec![("fib", 1), ("main", 1)]);
    }

    /// Expression spawns execute identically with futures on and off,
    /// across engines and against the legacy oracle (which runs the
    /// original, un-hoisted AST).
    #[test]
    fn expression_spawns_match_inline_and_oracle() {
        let prog = program_with_pure(FIB_EXPR, &["fib"]);
        let opt = |threads: usize, futures: bool| crate::interp::InterpOptions {
            threads,
            futures,
            memo: false,
            ..Default::default()
        };
        let seq = prog.run(opt(1, false)).expect("sequential");
        assert_eq!(seq.exit_code, 144 + 89);
        let legacy = prog.run_legacy(opt(1, false)).expect("legacy");
        assert_eq!(seq.counters.without_memo(), legacy.counters.without_memo());
        for threads in [2usize, 4] {
            let fut = prog.run(opt(threads, true)).expect("futures VM");
            assert_eq!(fut.exit_code, seq.exit_code, "threads={threads}");
            assert_eq!(
                fut.counters.without_memo(),
                seq.counters.without_memo(),
                "threads={threads}"
            );
            assert!(
                fut.counters.futures_spawned + fut.counters.futures_inlined > 0,
                "expression sites must engage: {:?}",
                fut.counters
            );
            let res = prog
                .run(crate::interp::InterpOptions {
                    engine: crate::interp::Engine::Resolved,
                    ..opt(threads, true)
                })
                .expect("futures resolved");
            assert_eq!(res.exit_code, seq.exit_code, "threads={threads}");
            assert_eq!(
                res.counters.without_memo(),
                seq.counters.without_memo(),
                "threads={threads}"
            );
        }
    }

    /// Conditionally evaluated positions never hoist: `&&`/`||` right
    /// operands and ternary branches must stay where they are (hoisting
    /// would execute calls the program may never reach).
    #[test]
    fn conditional_positions_are_not_hoisted() {
        let src = "\
pure int f(int n) { if (n < 2) return n; return f(n - 1) + f(n - 2); }
int main() {
    int a = 0;
    if (a > 0 && f(30) > 0) a = 1;
    int b = a ? f(31) : 0;
    int c = a > 0 || f(5) > 0;
    return a + b + c;
}
";
        let prog = program_with_pure(src, &["f"]);
        // f's own body still gets its expression batch; main must not.
        assert_eq!(prog.resolved().spawn_sites(), vec![("f", 1)]);
        let r = prog
            .run(crate::interp::InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("runs");
        // a == 0, so neither guarded call executes: b == 0, c == 1.
        assert_eq!(r.exit_code, 1);
    }

    /// Arguments that mention a slot the same statement writes cannot
    /// be hoisted ahead of it (`int a = ..., b = f(a);` — `a` is bound
    /// mid-statement).
    #[test]
    fn same_statement_writes_block_hoisting() {
        let src = "\
pure int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }
int main() {
    int a = 3, b = f(a) + f(4);
    return a + b;
}
";
        let prog = program_with_pure(src, &["f"]);
        assert!(prog.resolved().spawn_sites().is_empty());
        let r = prog
            .run(crate::interp::InterpOptions {
                threads: 4,
                ..Default::default()
            })
            .expect("runs");
        assert_eq!(r.exit_code, 3 + 3 + 6);
    }

    /// Hoisted temps from *different statements* merge into one batch:
    /// a statement-level site followed by an expression-level site.
    #[test]
    fn expression_and_statement_sites_batch_together() {
        let src = "\
pure int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }
int main() {
    int a = f(10);
    return a + f(11) + f(12);
}
";
        let prog = program_with_pure(src, &["f"]);
        // `a = f(10)` plus the two hoisted temps form one batch of
        // three: two spawns, one inline tail.
        assert_eq!(prog.resolved().spawn_sites(), vec![("main", 2)]);
        let r = prog
            .run(crate::interp::InterpOptions {
                threads: 4,
                memo: false,
                ..Default::default()
            })
            .expect("runs");
        assert_eq!(r.exit_code, 45 + 55 + 66);
    }

    /// Spawn sites inside a parallel-region body are found too.
    #[test]
    fn spawn_sites_inside_parallel_regions() {
        let src = "\
pure int f(int n) { if (n < 2) return n; int a = f(n - 1); int b = f(n - 2); return a + b; }
int main() {
    int* out = (int*) malloc(8 * sizeof(int));
#pragma omp parallel for
    for (int i = 0; i < 8; i++) {
        int l = f(i + 3);
        int r = f(i + 2);
        out[i] = l + r;
    }
    int acc = 0;
    for (int i = 0; i < 8; i++) acc += out[i];
    return acc % 251;
}
";
        let prog = program_with_pure(src, &["f"]);
        let mut sites = prog.resolved().spawn_sites();
        sites.sort_unstable();
        assert_eq!(sites, vec![("f", 1), ("main", 1)]);
    }
}
